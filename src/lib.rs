//! # orex — Explaining and Reformulating Authority Flow Queries
//!
//! A Rust implementation of the system described in *"Explaining and
//! Reformulating Authority Flow Queries"* (R. Varadarajan, V. Hristidis,
//! L. Raschid; ICDE 2008): ObjectRank2 keyword search over labeled data
//! graphs with IR-weighted base sets, *explaining subgraphs* that show a
//! user why a result scored high, and relevance-feedback *query
//! reformulation* that expands the query (content) and automatically
//! trains the authority transfer rates (structure).
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`graph`] — labeled data/schema graphs, authority transfer graphs;
//! - [`ir`] — tokenizer, Porter stemmer, inverted index, Okapi BM25;
//! - [`authority`] — power iteration, ObjectRank/ObjectRank2/PageRank;
//! - [`explain`] — explaining subgraphs (construction + flow adjustment);
//! - [`reformulate`] — content/structure reformulation, multi-feedback;
//! - [`datagen`] — synthetic DBLP and biological dataset generators;
//! - [`eval`] — metrics, residual collection, simulated-user surveys;
//! - [`core`] — the [`core::ObjectRankSystem`] facade and query sessions.
//!
//! Start with [`core::ObjectRankSystem`] and the `examples/` directory.

pub use orex_authority as authority;
pub use orex_core as core;
pub use orex_datagen as datagen;
pub use orex_eval as eval;
pub use orex_explain as explain;
pub use orex_graph as graph;
pub use orex_ir as ir;
pub use orex_reformulate as reformulate;

pub use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
