//! Explaining a query result (Section 4 of the paper).
//!
//! Mirrors the paper's running example: a keyword query whose top results
//! include objects that do *not* contain the keyword — the classic
//! "Data Cube is the best OLAP paper" situation — and an explaining
//! subgraph showing the authority paths that put each result there.
//!
//! Run with: `cargo run --release --example explain_result`

use orex::datagen::Preset;
use orex::explain::{to_dot, to_text};
use orex::ir::Query;
use orex::{ObjectRankSystem, QuerySession, SystemConfig};

fn main() {
    let dataset = Preset::DblpTop.generate(0.05);
    println!(
        "dataset {} ({} nodes, {} edges)",
        dataset.name,
        dataset.graph.node_count(),
        dataset.graph.edge_count()
    );
    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());

    let query = Query::parse("olap");
    let session = QuerySession::start(&system, &query).expect("query matched nothing");
    let top = session.top_k(5);

    println!("\nquery {query} — top 5:");
    for (i, r) in top.iter().enumerate() {
        println!("  {}. [{:.5}] {} — {}", i + 1, r.score, r.label, r.display);
    }

    // Find a top result that does NOT contain the keyword: the case
    // explanation exists for.
    let analyzer = system.index().analyzer();
    let term = analyzer.analyze_term("olap").unwrap();
    let no_keyword = top.iter().find(|r| {
        let tid = system.index().term_id(&term);
        tid.is_none_or(|t| system.index().tf(r.node.raw(), t) == 0)
    });
    let target = no_keyword.unwrap_or(&top[0]);
    println!(
        "\nexplaining \"{}\" (contains the keyword: {})",
        target.display,
        no_keyword.is_none()
    );

    let explanation = session.explain(target.node).expect("explainable result");
    println!(
        "explaining subgraph: {} nodes, {} edges, fixpoint converged after {} iterations",
        explanation.node_count(),
        explanation.edge_count(),
        explanation.iterations()
    );
    println!("\n{}", to_text(&explanation, system.graph(), 3));

    // A DOT rendering for graphviz users.
    let dot = to_dot(&explanation, system.graph());
    let lines = dot.lines().count();
    println!("(DOT rendering available: {lines} lines; pipe to `dot -Tsvg`)");
}
