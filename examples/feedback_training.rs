//! Relevance-feedback training of the authority transfer rates
//! (Sections 5–6.1 of the paper).
//!
//! A simulated expert knows the ground-truth rates (the BHP04 DBLP
//! vector); the system starts from uniform rates and learns them through
//! structure-based reformulation — the paper's headline "no more manual
//! rate tuning" capability (Figure 11's training curves).
//!
//! Run with: `cargo run --release --example feedback_training`

use orex::datagen::Preset;
use orex::eval::{run_survey, SurveyConfig};
use orex::ir::Query;
use orex::reformulate::ReformulateParams;
use orex::{ObjectRankSystem, SystemConfig};

fn main() {
    let dataset = Preset::DblpTop.generate(0.05);
    println!(
        "dataset {} ({} nodes, {} edges)",
        dataset.name,
        dataset.graph.node_count(),
        dataset.graph.edge_count()
    );
    let ground_truth = dataset.ground_truth.clone();
    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());

    let queries: Vec<Query> = ["data", "query", "mining", "index"]
        .iter()
        .map(|k| Query::parse(k))
        .collect();

    println!("\ntraining rates via structure-only feedback (C_f = 0.5):");
    let outcome = run_survey(
        &system,
        &ground_truth,
        &queries,
        &SurveyConfig {
            iterations: 5,
            reformulate: ReformulateParams::structure_only(0.5),
            ..SurveyConfig::default()
        },
    );

    println!("\niter  avg precision@10   cosine(learned rates, ground truth)");
    for (i, (p, c)) in outcome
        .avg_precision
        .iter()
        .zip(&outcome.avg_cosine)
        .enumerate()
    {
        let label = if i == 0 { "init" } else { "ref " };
        println!("{label}{i:>2}       {p:.3}                {c:.4}");
    }

    let start = outcome.avg_cosine.first().copied().unwrap_or(0.0);
    let best = outcome.avg_cosine.iter().copied().fold(0.0, f64::max);
    println!(
        "\ncosine similarity improved from {start:.4} to a peak of {best:.4} — \
         the system recovered the expert's rate structure from clicks alone."
    );
}
