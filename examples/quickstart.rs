//! Quickstart: build a small DBLP-shaped dataset, run an ObjectRank2
//! keyword query, and print the top results.
//!
//! Run with: `cargo run --release --example quickstart`

use orex::datagen::Preset;
use orex::ir::Query;
use orex::{ObjectRankSystem, QuerySession, SystemConfig};

fn main() {
    // A 2% scale DBLPtop-shaped graph (~450 nodes) keeps this instant.
    let dataset = Preset::DblpTop.generate(0.02);
    let (nodes, edges) = dataset.sizes();
    println!("dataset {} ({nodes} nodes, {edges} edges)", dataset.name);

    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());

    let query = Query::parse("data mining");
    println!("\nquery {query}");
    let session = QuerySession::start(&system, &query).expect("query matched nothing");

    println!(
        "converged in {} power iterations ({:?})",
        session.history()[0].rank_iterations,
        session.history()[0].rank_time,
    );
    println!("\ntop 10 results:");
    for (rank, r) in session.top_k(10).iter().enumerate() {
        println!(
            "  {:>2}. [{:.5}] {:<12} {}",
            rank + 1,
            r.score,
            r.label,
            truncate(&r.display, 60)
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}
