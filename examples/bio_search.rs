//! Biological-graph search: the paper's second domain (Figure 4 schema).
//!
//! Queries over a PubMed-style collection return genes/proteins that do
//! not contain the query keywords but are heavily associated with
//! publications that do — exactly the regime where explanations matter
//! most ("why is protein X an answer to my keyword query?", Section 1).
//!
//! Run with: `cargo run --release --example bio_search`

use orex::datagen::Preset;
use orex::explain::to_text;
use orex::ir::Query;
use orex::{ObjectRankSystem, QuerySession, SystemConfig};

fn main() {
    let dataset = Preset::Ds7Cancer.generate(0.05);
    println!(
        "dataset {} ({} nodes, {} edges)",
        dataset.name,
        dataset.graph.node_count(),
        dataset.graph.edge_count()
    );
    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());

    let query = Query::parse("clustering");
    let mut session = QuerySession::start(&system, &query).expect("query matched nothing");
    let top = session.top_k(10);

    println!("\nquery {query} — top 10 (all node types):");
    for (i, r) in top.iter().enumerate() {
        println!(
            "  {:>2}. [{:.5}] {:<16} {}",
            i + 1,
            r.score,
            r.label,
            r.display
        );
    }

    // Explain the best non-publication answer — a gene/protein/nucleotide
    // that cannot contain the keyword in any obvious way.
    if let Some(entity) = top.iter().find(|r| r.label != "PubMed") {
        println!(
            "\nwhy is {} \"{}\" an answer?",
            entity.label, entity.display
        );
        let explanation = session.explain(entity.node).expect("explainable");
        println!("{}", to_text(&explanation, system.graph(), 2));

        // Close the loop: mark it relevant and reformulate.
        let stats = session.feedback(&[entity.node]).expect("feedback works");
        println!(
            "after feedback: reformulated query {} / re-ranked in {} iterations",
            session.query_vector(),
            stats.rank_iterations
        );
        let new_top = session.top_k(5);
        println!("new top 5:");
        for (i, r) in new_top.iter().enumerate() {
            println!(
                "  {}. [{:.5}] {:<16} {}",
                i + 1,
                r.score,
                r.label,
                r.display
            );
        }
    } else {
        println!("\n(no non-publication entity in the top 10 for this seed)");
    }
}
