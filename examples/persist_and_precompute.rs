//! Persistence and precomputation: snapshot a dataset, train rates, save
//! them, and build the BHP04-style precomputed rank-vector cache that
//! Section 6.2 prescribes for exploratory search over large graphs.
//!
//! Run with: `cargo run --release --example persist_and_precompute`

use orex::authority::{object_rank2, TransitionMatrix};
use orex::datagen::Preset;
use orex::ir::{Okapi, Query, QueryVector};
use orex::{ObjectRankSystem, QuerySession, SystemConfig};
use orex_store::{load_graph, load_rates, save_graph, save_rates, RankCache};

fn main() {
    let dir = std::env::temp_dir().join("orex-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let graph_path = dir.join("dblp-top.graph");
    let rates_path = dir.join("trained.rates");
    let cache_path = dir.join("ranks.cache");

    // --- build, train, persist -------------------------------------
    let dataset = Preset::DblpTop.generate(0.05);
    println!(
        "generated {}: {} nodes, {} edges",
        dataset.name,
        dataset.graph.node_count(),
        dataset.graph.edge_count()
    );
    save_graph(&dataset.graph, &graph_path).expect("save graph");
    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());

    let mut session = QuerySession::start(&system, &Query::parse("data")).expect("query");
    for _ in 0..2 {
        let top = session.top_k(2);
        let nodes: Vec<_> = top.iter().map(|r| r.node).collect();
        session.feedback(&nodes).expect("feedback");
    }
    save_rates(session.rates(), &rates_path).expect("save rates");
    println!(
        "trained rates for {} rounds and saved them to {}",
        session.round(),
        rates_path.display()
    );

    // --- precompute the keyword cache -------------------------------
    let matrix = TransitionMatrix::new(system.transfer(), session.rates());
    let terms: Vec<String> = ["data", "query", "mining", "index", "graph"]
        .iter()
        .filter_map(|kw| system.index().analyzer().analyze_term(kw))
        .collect();
    let t = std::time::Instant::now();
    let cache = RankCache::precompute(
        &matrix,
        system.index(),
        &Okapi::default(),
        &terms,
        &system.config().rank,
    );
    cache.save(&cache_path).expect("save cache");
    println!(
        "precomputed {} rank vectors in {:.1?} -> {}",
        cache.len(),
        t.elapsed(),
        cache_path.display()
    );

    // --- reload everything and serve a query from the cache ---------
    let graph = load_graph(&graph_path).expect("load graph");
    let rates = load_rates(&rates_path, graph.schema()).expect("load rates");
    let system2 = ObjectRankSystem::new(
        graph,
        rates,
        SystemConfig {
            global_warm_start: false, // the cache replaces it
            ..SystemConfig::default()
        },
    );
    let cache = RankCache::load(&cache_path).expect("load cache");

    let qv = QueryVector::initial(&Query::parse("data mining"), system2.index().analyzer());
    let matrix2 = TransitionMatrix::new(system2.transfer(), system2.initial_rates());
    let seed = cache.seed_for_query(&qv);
    let cold = object_rank2(
        &matrix2,
        system2.index(),
        &qv,
        &Okapi::default(),
        &system2.config().rank,
        None,
    )
    .expect("cold run");
    let warm = object_rank2(
        &matrix2,
        system2.index(),
        &qv,
        &Okapi::default(),
        &system2.config().rank,
        seed.as_deref(),
    )
    .expect("warm run");
    println!(
        "\nmulti-keyword query after reload: {} iterations cold vs {} seeded \
         from the cache",
        cold.iterations, warm.iterations
    );
    let _ = std::fs::remove_dir_all(&dir);
}
