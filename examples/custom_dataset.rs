//! Bringing your own data: define a schema and data graph in the
//! `.orexg` text format, import it, and get ObjectRank2 ranking with
//! explanations — the adoption path for data that is not DBLP-shaped.
//!
//! The example models a tiny movie database (Movie / Person / Genre) and
//! shows that authority flow generalizes beyond bibliographies: a
//! director's acclaim flows to their films, genre hubs route authority
//! between related movies.
//!
//! Run with: `cargo run --release --example custom_dataset`

use orex::graph::TransferRates;
use orex::ir::Query;
use orex::{ObjectRankSystem, QuerySession, SystemConfig};
use orex_store::parse_text;

const MOVIES: &str = r#"
# A miniature movie database.
nodetype Movie
nodetype Person
nodetype Genre
edgetype directed_by Movie Person
edgetype acted_in    Person Movie
edgetype has_genre   Movie Genre
edgetype influenced  Movie Movie

node m1 Movie Title="Space Odyssey Returns" Year=1998
node m2 Movie Title="Deep Space Mining Colony" Year=2003
node m3 Movie Title="The Quiet Harvest" Year=2005
node m4 Movie Title="Orbital Dawn" Year=2010
node p1 Person Name="A. Kovacs"
node p2 Person Name="B. Lindgren"
node g1 Genre Name="science fiction space"
node g2 Genre Name="drama"

edge m1 directed_by p1
edge m2 directed_by p1
edge m4 directed_by p2
edge p2 acted_in m1
edge p2 acted_in m3
edge m1 has_genre g1
edge m2 has_genre g1
edge m4 has_genre g1
edge m3 has_genre g2
edge m2 influenced m4
edge m1 influenced m2
edge m1 influenced m4
"#;

fn main() {
    let graph = parse_text(MOVIES).expect("valid text format");
    println!(
        "imported {} nodes, {} edges over {} node types",
        graph.node_count(),
        graph.edge_count(),
        graph.schema().node_type_count()
    );

    // Authority semantics for this domain: influence flows strongly along
    // "influenced" edges, moderately between films and their people, and
    // weakly through genres.
    let schema = graph.schema().clone();
    let mut rates = TransferRates::zero(&schema);
    let set = |rates: &mut TransferRates, label: &str, fwd: f64, bwd: f64| {
        use orex::graph::TransferTypeId;
        let et = schema
            .edge_types()
            .find(|&et| schema.edge_type(et).label == label)
            .expect("edge type exists");
        rates.set(TransferTypeId::forward(et), fwd).unwrap();
        rates.set(TransferTypeId::backward(et), bwd).unwrap();
    };
    set(&mut rates, "influenced", 0.45, 0.05);
    set(&mut rates, "directed_by", 0.2, 0.2);
    set(&mut rates, "acted_in", 0.2, 0.2);
    set(&mut rates, "has_genre", 0.1, 0.2);
    rates.validate(&schema).expect("valid rates");

    let system = ObjectRankSystem::new(graph, rates, SystemConfig::default());
    let session = QuerySession::start(&system, &Query::parse("space")).expect("query runs");

    println!("\nquery [space] — ranking (authority crosses node types):");
    for (i, r) in session.top_k(8).iter().enumerate() {
        println!("  {}. [{:.4}] {:<8} {}", i + 1, r.score, r.label, r.display);
    }

    // "Orbital Dawn" contains no query keyword; explain why it ranks.
    let orbital = session
        .top_k(8)
        .into_iter()
        .find(|r| r.display.contains("Orbital"))
        .expect("Orbital Dawn ranks");
    let summary = session
        .explain_summary(orbital.node, 5)
        .expect("explainable");
    println!("\nwhy \"Orbital Dawn\"? authority arrives via:");
    print!("{}", orex::explain::summary_to_text(&summary));
}
