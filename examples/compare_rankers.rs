//! Side-by-side comparison of the ranking models the paper discusses:
//! PageRank (global, type-oblivious), HITS (hubs/authorities), original
//! ObjectRank (uniform base set), modified multi-keyword ObjectRank
//! (Equation 16), and ObjectRank2 (IR-weighted base set).
//!
//! This is the introduction's motivating contrast made runnable: only the
//! query-specific, type-aware models surface the "highly cited paper that
//! never contains the keyword" results.
//!
//! Run with: `cargo run --release --example compare_rankers`

use orex::authority::{
    base_subgraph, hits, modified_object_rank, object_rank, object_rank2, page_rank, top_k,
    HitsParams, RankParams, TransitionMatrix,
};
use orex::datagen::Preset;
use orex::ir::{Okapi, Query, QueryVector};
use orex::{ObjectRankSystem, SystemConfig};

fn main() {
    let dataset = Preset::DblpTop.generate(0.05);
    println!(
        "dataset {} ({} nodes, {} edges)\n",
        dataset.name,
        dataset.graph.node_count(),
        dataset.graph.edge_count()
    );
    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());
    let matrix = TransitionMatrix::new(system.transfer(), system.initial_rates());
    let params = RankParams::default();
    let query = Query::parse("data mining");
    let qv = QueryVector::initial(&query, system.index().analyzer());
    println!("query {query}\n");

    let show = |name: &str, scores: &[f64]| {
        println!("{name}:");
        for (i, r) in top_k(scores, 5, 0.0).iter().enumerate() {
            let node = orex::graph::NodeId::new(r.node);
            let display: String = system.graph().node_display(node).chars().take(52).collect();
            println!(
                "  {}. [{:.5}] {:<12} {}",
                i + 1,
                r.score,
                system.graph().node_label(node),
                display
            );
        }
        println!();
    };

    // Query-oblivious baselines.
    let pr = page_rank(system.transfer(), &params);
    show("PageRank (global, type-oblivious)", &pr.scores);

    // HITS on the query's base subgraph.
    let base_nodes: Vec<u32> = system
        .index()
        .base_set_scores(&qv, &Okapi::default())
        .iter()
        .map(|&(d, _)| d)
        .collect();
    let subgraph = base_subgraph(system.transfer(), &base_nodes);
    let h = hits(system.transfer(), Some(&subgraph), &HitsParams::default());
    show("HITS authorities (query base subgraph)", &h.authorities);

    // Authority-flow family.
    let or = object_rank(&matrix, system.index(), &qv, &params, None).unwrap();
    show("ObjectRank (uniform base set)", &or.scores);

    let mor = modified_object_rank(&matrix, system.index(), &qv, &params).unwrap();
    show("modified ObjectRank (Eq. 16 product)", &mor.scores);

    let or2 = object_rank2(
        &matrix,
        system.index(),
        &qv,
        &Okapi::default(),
        &params,
        None,
    )
    .unwrap();
    show("ObjectRank2 (IR-weighted base set)", &or2.scores);

    println!(
        "note how the authority-flow rankers promote papers that are cited by\n\
         keyword matches without containing the keywords themselves, while\n\
         PageRank ignores the query and HITS stays inside the base subgraph."
    );
}
