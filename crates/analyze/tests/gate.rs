//! End-to-end tests of the analyzer as a gate: the real workspace must
//! scan clean, and a fixture with seeded violations must fail.

use std::fs;
use std::path::{Path, PathBuf};

use orex_analyze::diag::Rule;
use orex_analyze::{analyze_workspace, load_policy, run_cli, CliOutcome};

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the root")
        .to_path_buf()
}

/// A scratch directory shaped like a tiny workspace, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str, source: &str) -> Self {
        Self::with_files(tag, &[("src/lib.rs", source)])
    }

    /// A fixture with arbitrary files (paths relative to the root), so
    /// tests can seed multi-file call graphs and policy files.
    fn with_files(tag: &str, files: &[(&str, &str)]) -> Self {
        let root =
            std::env::temp_dir().join(format!("orex-analyze-gate-{tag}-{}", std::process::id()));
        for (rel, source) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("file has a parent"))
                .expect("create fixture dir");
            fs::write(&path, source).expect("write fixture file");
        }
        Fixture { root }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Runs the CLI with captured writers, returning the outcome and both
/// streams as strings.
fn run_cli_captured(args: &[String]) -> (CliOutcome, String, String) {
    let mut out = Vec::new();
    let mut err = Vec::new();
    let outcome = run_cli(args, &mut out, &mut err);
    (
        outcome,
        String::from_utf8(out).expect("stdout is UTF-8"),
        String::from_utf8(err).expect("stderr is UTF-8"),
    )
}

#[test]
fn the_workspace_scans_clean() {
    // The same gate CI runs: zero findings on our own source tree. If
    // this fails, either pay the new debt down or waive it inline with
    // a justification — do not loosen the policy.
    let root = workspace_root();
    let policy = load_policy(&root).expect("analyze.policy parses");
    let report = analyze_workspace(&root, &policy).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must scan clean:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "sanity: the walk found the tree");
}

#[test]
fn seeded_violations_fail_the_gate() {
    let fixture = Fixture::new(
        "seeded",
        r#"
pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn quit() -> u8 {
    let v: Option<u8> = None;
    let out = v.unwrap();
    std::process::exit(out.into());
}
"#,
    );
    let policy = load_policy(&fixture.root).expect("missing policy file is empty policy");
    let report = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&Rule::Orx001),
        "unsafe without SAFETY: {rules:?}"
    );
    assert!(
        rules.contains(&Rule::Orx002),
        "unwrap in unscoped policy: {rules:?}"
    );
    assert!(
        rules.contains(&Rule::Orx005),
        "process::exit outside cli: {rules:?}"
    );

    // And the CLI entry point maps that to a non-zero outcome.
    let args = vec!["--root".to_string(), fixture.root.display().to_string()];
    let (outcome, out, _) = run_cli_captured(&args);
    assert_eq!(outcome, CliOutcome::Violations);
    assert!(out.contains("error[ORX001]"), "{out}");
}

#[test]
fn seeded_print_macros_fail_the_gate() {
    let fixture = Fixture::new(
        "prints",
        r#"
pub fn noisy(x: u32) -> u32 {
    println!("computing {x}");
    let doubled = dbg!(x * 2);
    eprintln!("done");
    doubled
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("tests own their terminal");
    }
}
"#,
    );
    let policy = load_policy(&fixture.root).expect("missing policy file is empty policy");
    let report = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    let orx007: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Orx007)
        .collect();
    assert_eq!(
        orx007.len(),
        3,
        "println!, dbg!, eprintln! each flagged once (test code exempt):\n{}",
        report.render_text()
    );

    let args = vec!["--root".to_string(), fixture.root.display().to_string()];
    let (outcome, out, _) = run_cli_captured(&args);
    assert_eq!(outcome, CliOutcome::Violations);
    assert!(out.contains("error[ORX007]"), "{out}");
}

#[test]
fn waived_fixture_passes_the_gate() {
    let fixture = Fixture::new(
        "waived",
        r#"
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller contract — p is valid for reads (test fixture).
    unsafe { *p }
}

pub fn quit() {
    // orex::allow(ORX005): fixture demonstrating an inline waiver.
    std::process::exit(0);
}
"#,
    );
    let args = vec!["--root".to_string(), fixture.root.display().to_string()];
    assert_eq!(run_cli_captured(&args).0, CliOutcome::Clean);
}

#[test]
fn cli_rejects_unknown_flags() {
    let (outcome, _, err) = run_cli_captured(&["--bogus".to_string()]);
    assert_eq!(outcome, CliOutcome::Error);
    assert!(err.contains("unknown flag"), "{err}");
}

#[test]
fn json_report_round_trips_key_fields() {
    let fixture = Fixture::new("json", "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
    let out = fixture.root.join("report.json");
    let args = vec![
        "--root".to_string(),
        fixture.root.display().to_string(),
        "--format".to_string(),
        "json".to_string(),
        "--output".to_string(),
        out.display().to_string(),
    ];
    assert_eq!(run_cli_captured(&args).0, CliOutcome::Violations);
    let json = fs::read_to_string(&out).expect("report written");
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("ORX001"));
    assert!(json.contains("\"files_scanned\": 1"));
}

#[test]
fn seeded_panic_reachability_fires_across_files() {
    // A scoped hot-path function calls, across a file boundary, a
    // helper whose panic site sits outside the ORX002 scope: only the
    // interprocedural pass can see it.
    let fixture = Fixture::with_files(
        "orx008",
        &[
            (
                "analyze.policy",
                "scope ORX002 src/hot*\nscope ORX008 src/hot*\n",
            ),
            (
                "src/hot.rs",
                "pub fn serve() -> u32 {\n    helper_value()\n}\n",
            ),
            (
                "src/util.rs",
                "pub fn helper_value() -> u32 {\n    \"7\".parse::<u32>().unwrap()\n}\n",
            ),
        ],
    );
    let policy = load_policy(&fixture.root).expect("fixture policy parses");
    let report = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    let orx008: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Orx008)
        .collect();
    assert_eq!(orx008.len(), 1, "{}", report.render_text());
    let f = &orx008[0];
    assert_eq!(f.file, "src/hot.rs", "finding attaches at the call site");
    assert!(
        f.message.contains("helper_value") && f.message.contains("src/util.rs:2"),
        "diagnostic carries the call chain: {}",
        f.message
    );

    // Waiving at the panic site clears the whole chain.
    let waived = Fixture::with_files(
        "orx008w",
        &[
            (
                "analyze.policy",
                "scope ORX002 src/hot*\nscope ORX008 src/hot*\n",
            ),
            ("src/hot.rs", "pub fn serve() -> u32 {\n    helper_value()\n}\n"),
            (
                "src/util.rs",
                "pub fn helper_value() -> u32 {\n    // orex::allow(ORX008): fixture waiver.\n    \"7\".parse::<u32>().unwrap()\n}\n",
            ),
        ],
    );
    let policy = load_policy(&waived.root).expect("fixture policy parses");
    let report = analyze_workspace(&waived.root, &policy).expect("fixture scan succeeds");
    assert!(
        report.findings.iter().all(|f| f.rule != Rule::Orx008),
        "{}",
        report.render_text()
    );
}

#[test]
fn seeded_lock_across_blocking_fires_directly_and_through_calls() {
    let fixture = Fixture::new(
        "orx009",
        r#"
fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn holds_across_sleep(m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(1));
    drop(g);
}

pub fn holds_across_call(m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap();
    nap();
    drop(g);
}
"#,
    );
    let policy = load_policy(&fixture.root).expect("missing policy file is empty policy");
    let report = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    let orx009: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Orx009)
        .collect();
    assert_eq!(
        orx009.len(),
        2,
        "one direct, one through the call graph:\n{}",
        report.render_text()
    );
    assert!(
        orx009.iter().any(|f| f.message.contains("nap")),
        "the interprocedural finding names the blocking callee:\n{}",
        report.render_text()
    );
}

#[test]
fn seeded_tainted_allocation_fires_and_clamping_clears_it() {
    let fixture = Fixture::new(
        "orx010",
        r#"
pub fn alloc_from_request(line: &str) -> Vec<u8> {
    let n: usize = line.parse().unwrap_or(0);
    Vec::with_capacity(n)
}

pub fn alloc_clamped(line: &str) -> Vec<u8> {
    let n: usize = line.parse().unwrap_or(0);
    let n = n.min(4096);
    Vec::with_capacity(n)
}
"#,
    );
    let policy = load_policy(&fixture.root).expect("missing policy file is empty policy");
    let report = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    let orx010: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Orx010)
        .collect();
    assert_eq!(
        orx010.len(),
        1,
        "unclamped length flagged, clamped one clean:\n{}",
        report.render_text()
    );
    assert_eq!(orx010[0].line, 4, "{}", report.render_text());
}

#[test]
fn sarif_output_flag_writes_a_sarif_log() {
    let fixture = Fixture::new("sarif", "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
    let out = fixture.root.join("analyze.sarif");
    let args = vec![
        "--root".to_string(),
        fixture.root.display().to_string(),
        "--format".to_string(),
        "sarif".to_string(),
        "--output".to_string(),
        out.display().to_string(),
    ];
    assert_eq!(run_cli_captured(&args).0, CliOutcome::Violations);
    let sarif = fs::read_to_string(&out).expect("sarif written");
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"ORX001\""), "{sarif}");
    assert!(sarif.contains("sarif-2.1.0"), "schema uri present: {sarif}");
}

#[test]
fn warm_cache_reproduces_cold_findings_byte_for_byte() {
    let fixture = Fixture::new(
        "cache",
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\npub fn g() { let v: Option<u8> = None; v.unwrap(); }\n",
    );
    let cache = fixture.root.join("analyze.cache");
    let args = |out: &Path| {
        vec![
            "--root".to_string(),
            fixture.root.display().to_string(),
            "--cache".to_string(),
            cache.display().to_string(),
            "--format".to_string(),
            "json".to_string(),
            "--output".to_string(),
            out.display().to_string(),
        ]
    };

    let cold_out = fixture.root.join("cold.json");
    let (outcome, _, cold_err) = run_cli_captured(&args(&cold_out));
    assert_eq!(outcome, CliOutcome::Violations);
    assert!(
        cold_err.contains("cache: reused 0/1"),
        "cold run starts empty: {cold_err}"
    );
    assert!(cache.exists(), "cache file persisted");

    let warm_out = fixture.root.join("warm.json");
    let (outcome, _, warm_err) = run_cli_captured(&args(&warm_out));
    assert_eq!(outcome, CliOutcome::Violations);
    assert!(
        warm_err.contains("cache: reused 1/1"),
        "warm run skips re-summarizing unchanged files: {warm_err}"
    );

    let cold = fs::read_to_string(&cold_out).expect("cold report");
    let warm = fs::read_to_string(&warm_out).expect("warm report");
    assert_eq!(cold, warm, "warm report must be byte-identical");

    // Editing the file invalidates only its entry: the next run
    // re-analyzes it and picks up the new content.
    fs::write(fixture.root.join("src/lib.rs"), "pub fn f() -> u8 { 0 }\n")
        .expect("rewrite fixture");
    let fixed_out = fixture.root.join("fixed.json");
    let (outcome, _, fixed_err) = run_cli_captured(&args(&fixed_out));
    assert_eq!(outcome, CliOutcome::Clean);
    assert!(
        fixed_err.contains("cache: reused 0/1"),
        "changed content misses the cache: {fixed_err}"
    );
}

#[test]
fn explain_flag_prints_rule_card_without_scanning() {
    let (outcome, out, _) = run_cli_captured(&["--explain".to_string(), "ORX008".to_string()]);
    assert_eq!(outcome, CliOutcome::Clean);
    assert!(out.contains("ORX008"), "{out}");
    assert!(
        out.contains("call graph") && out.contains("example that fires:"),
        "rationale and example sections present: {out}"
    );
    assert!(out.contains("orex::allow(ORX008)"), "waiver help: {out}");

    let (outcome, _, err) = run_cli_captured(&["--explain".to_string(), "ORX999".to_string()]);
    assert_eq!(outcome, CliOutcome::Error);
    assert!(err.contains("needs a rule ID"), "{err}");
}

#[test]
fn property_every_waived_finding_leaves_the_report() {
    // Property-style check of the waiver pipeline: scan a fixture,
    // then mechanically append an inline waiver to every flagged line
    // and rescan. Every finding must disappear, and the waived count
    // must account for each of them — a waiver that is honoured but
    // still reported (or silently dropped) fails this.
    let source = "\
pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn quit() {
    let v: Option<u8> = None;
    let x = v.unwrap();
    println!(\"{x}\");
    std::process::exit(0);
}
";
    let fixture = Fixture::new("property", source);
    let policy = load_policy(&fixture.root).expect("missing policy file is empty policy");
    let before = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    assert!(
        before.findings.len() >= 4,
        "fixture seeds several rules:\n{}",
        before.render_text()
    );
    assert!(before.findings.iter().all(|f| f.line > 0));

    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    for f in &before.findings {
        // One finding per line in this fixture, so a trailing comment
        // waives exactly that rule without shifting line numbers.
        lines[f.line as usize - 1]
            .push_str(&format!(" // orex::allow({}): property test", f.rule.id()));
    }
    fs::write(fixture.root.join("src/lib.rs"), lines.join("\n")).expect("rewrite fixture");

    let after = analyze_workspace(&fixture.root, &policy).expect("fixture rescan succeeds");
    assert!(
        after.findings.is_empty(),
        "waived findings must never reach the report:\n{}",
        after.render_text()
    );
    assert_eq!(
        after.waived,
        before.findings.len(),
        "every waiver is accounted for"
    );
}
