//! End-to-end tests of the analyzer as a gate: the real workspace must
//! scan clean, and a fixture with seeded violations must fail.

use std::fs;
use std::path::{Path, PathBuf};

use orex_analyze::diag::Rule;
use orex_analyze::{analyze_workspace, load_policy, run_cli, CliOutcome};

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the root")
        .to_path_buf()
}

/// A scratch directory shaped like a tiny workspace, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str, source: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("orex-analyze-gate-{tag}-{}", std::process::id()));
        let src = root.join("src");
        fs::create_dir_all(&src).expect("create fixture src dir");
        fs::write(src.join("lib.rs"), source).expect("write fixture source");
        Fixture { root }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Runs the CLI with captured writers, returning the outcome and both
/// streams as strings.
fn run_cli_captured(args: &[String]) -> (CliOutcome, String, String) {
    let mut out = Vec::new();
    let mut err = Vec::new();
    let outcome = run_cli(args, &mut out, &mut err);
    (
        outcome,
        String::from_utf8(out).expect("stdout is UTF-8"),
        String::from_utf8(err).expect("stderr is UTF-8"),
    )
}

#[test]
fn the_workspace_scans_clean() {
    // The same gate CI runs: zero findings on our own source tree. If
    // this fails, either pay the new debt down or waive it inline with
    // a justification — do not loosen the policy.
    let root = workspace_root();
    let policy = load_policy(&root).expect("analyze.policy parses");
    let report = analyze_workspace(&root, &policy).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must scan clean:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 50, "sanity: the walk found the tree");
}

#[test]
fn seeded_violations_fail_the_gate() {
    let fixture = Fixture::new(
        "seeded",
        r#"
pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn quit() -> u8 {
    let v: Option<u8> = None;
    let out = v.unwrap();
    std::process::exit(out.into());
}
"#,
    );
    let policy = load_policy(&fixture.root).expect("missing policy file is empty policy");
    let report = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&Rule::Orx001),
        "unsafe without SAFETY: {rules:?}"
    );
    assert!(
        rules.contains(&Rule::Orx002),
        "unwrap in unscoped policy: {rules:?}"
    );
    assert!(
        rules.contains(&Rule::Orx005),
        "process::exit outside cli: {rules:?}"
    );

    // And the CLI entry point maps that to a non-zero outcome.
    let args = vec!["--root".to_string(), fixture.root.display().to_string()];
    let (outcome, out, _) = run_cli_captured(&args);
    assert_eq!(outcome, CliOutcome::Violations);
    assert!(out.contains("error[ORX001]"), "{out}");
}

#[test]
fn seeded_print_macros_fail_the_gate() {
    let fixture = Fixture::new(
        "prints",
        r#"
pub fn noisy(x: u32) -> u32 {
    println!("computing {x}");
    let doubled = dbg!(x * 2);
    eprintln!("done");
    doubled
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("tests own their terminal");
    }
}
"#,
    );
    let policy = load_policy(&fixture.root).expect("missing policy file is empty policy");
    let report = analyze_workspace(&fixture.root, &policy).expect("fixture scan succeeds");
    let orx007: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Orx007)
        .collect();
    assert_eq!(
        orx007.len(),
        3,
        "println!, dbg!, eprintln! each flagged once (test code exempt):\n{}",
        report.render_text()
    );

    let args = vec!["--root".to_string(), fixture.root.display().to_string()];
    let (outcome, out, _) = run_cli_captured(&args);
    assert_eq!(outcome, CliOutcome::Violations);
    assert!(out.contains("error[ORX007]"), "{out}");
}

#[test]
fn waived_fixture_passes_the_gate() {
    let fixture = Fixture::new(
        "waived",
        r#"
pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller contract — p is valid for reads (test fixture).
    unsafe { *p }
}

pub fn quit() {
    // orex::allow(ORX005): fixture demonstrating an inline waiver.
    std::process::exit(0);
}
"#,
    );
    let args = vec!["--root".to_string(), fixture.root.display().to_string()];
    assert_eq!(run_cli_captured(&args).0, CliOutcome::Clean);
}

#[test]
fn cli_rejects_unknown_flags() {
    let (outcome, _, err) = run_cli_captured(&["--bogus".to_string()]);
    assert_eq!(outcome, CliOutcome::Error);
    assert!(err.contains("unknown flag"), "{err}");
}

#[test]
fn json_report_round_trips_key_fields() {
    let fixture = Fixture::new("json", "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
    let out = fixture.root.join("report.json");
    let args = vec![
        "--root".to_string(),
        fixture.root.display().to_string(),
        "--format".to_string(),
        "json".to_string(),
        "--output".to_string(),
        out.display().to_string(),
    ];
    assert_eq!(run_cli_captured(&args).0, CliOutcome::Violations);
    let json = fs::read_to_string(&out).expect("report written");
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("ORX001"));
    assert!(json.contains("\"files_scanned\": 1"));
}
