//! Model checks of the telemetry trace ring's push/drain/evict protocol
//! under every bounded two-thread interleaving.
//!
//! The model mirrors `orex_telemetry::trace::Ring` at atomic-step
//! granularity: a *push* is ticket allocation (the `fetch_add`) followed
//! by a slot `swap`; a *drain* is one `swap(null)` per slot followed by
//! a sort-and-commit. Each of those is one [`Step`]; `explore_two` runs
//! every interleaving of the two lanes and checks **conservation**:
//! every record whose ticket was allocated ends up in exactly one of
//! {still in a slot, freed by eviction, drained} — never lost, never
//! duplicated. The real ring also runs under Miri and TSan in CI; this
//! harness exhaustively checks the protocol, which sampling-based tools
//! cannot.

use orex_analyze::interleave::{explore_two, steps, Step};

/// Step-granular model of the trace ring shared by both lanes.
struct Ring {
    cap: u64,
    /// Ticket counter (`head.fetch_add` in the real ring).
    head: u64,
    /// `slot -> ticket` of the record currently stored there.
    slots: Vec<Option<u64>>,
    /// Tickets freed by eviction (`Box::from_raw(old)` in `push`).
    freed: Vec<u64>,
    /// Completed drains, in order.
    drains: Vec<Vec<u64>>,
    /// Lane-local scratch: the ticket each lane's in-flight push holds
    /// between its two steps.
    ticket_a: u64,
    ticket_b: u64,
    /// Records the in-flight drain has swapped out so far.
    drain_buf: Vec<u64>,
}

impl Ring {
    fn new(cap: u64) -> Self {
        Ring {
            cap,
            head: 0,
            slots: vec![None; cap as usize],
            freed: Vec::new(),
            drains: Vec::new(),
            ticket_a: 0,
            ticket_b: 0,
            drain_buf: Vec::new(),
        }
    }

    fn take_ticket_a(&mut self) {
        self.ticket_a = self.head;
        self.head += 1;
    }

    fn take_ticket_b(&mut self) {
        self.ticket_b = self.head;
        self.head += 1;
    }

    fn swap_in(&mut self, ticket: u64) {
        let slot = (ticket % self.cap) as usize;
        if let Some(old) = self.slots[slot].replace(ticket) {
            self.freed.push(old);
        }
    }

    fn drain_slot(&mut self, slot: usize) {
        if let Some(t) = self.slots[slot].take() {
            self.drain_buf.push(t);
        }
    }

    fn commit_drain(&mut self) {
        let mut batch = std::mem::take(&mut self.drain_buf);
        batch.sort_unstable();
        self.drains.push(batch);
    }

    /// Conservation: every allocated ticket whose swap has executed is
    /// in exactly one place. `in_flight` lists tickets allocated but
    /// (possibly) never swapped in — irrelevant here since checks run
    /// on completed schedules, kept for clarity.
    fn check_conservation(&self) -> Result<(), String> {
        for ticket in 0..self.head {
            let in_slot = self
                .slots
                .iter()
                .flatten()
                .filter(|t| **t == ticket)
                .count();
            let in_freed = self.freed.iter().filter(|t| **t == ticket).count();
            let in_drained = self
                .drains
                .iter()
                .flatten()
                .filter(|t| **t == ticket)
                .count();
            let total = in_slot + in_freed + in_drained;
            if total != 1 {
                return Err(format!(
                    "ticket {ticket} accounted {total} times \
                     (slot {in_slot}, freed {in_freed}, drained {in_drained})"
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn push_push_eviction_conserves_records() {
    // Two concurrent pushes into a 1-slot ring: one record must survive
    // in the slot and the other must be freed by eviction — in every
    // interleaving, including the inverted one where the later ticket
    // swaps in first and is then evicted by the earlier ticket.
    let a: Vec<Step<Ring>> = steps([Ring::take_ticket_a, |s: &mut Ring| s.swap_in(s.ticket_a)]);
    let b: Vec<Step<Ring>> = steps([Ring::take_ticket_b, |s: &mut Ring| s.swap_in(s.ticket_b)]);
    let ex = explore_two(
        || Ring::new(1),
        &a,
        &b,
        |s| {
            s.check_conservation()?;
            if s.head != 2 {
                return Err(format!("expected 2 tickets allocated, got {}", s.head));
            }
            if s.slots[0].is_none() {
                return Err("slot empty after two pushes".into());
            }
            if s.freed.len() != 1 {
                return Err(format!(
                    "expected exactly 1 eviction, got {}",
                    s.freed.len()
                ));
            }
            Ok(())
        },
    );
    assert_eq!(ex.schedules, 6, "C(4,2) interleavings");
    ex.assert_ok();
}

#[test]
fn push_drain_tear_never_loses_or_duplicates() {
    // One lane pushes two records into a 2-slot ring while the other
    // drains slot-by-slot. A drain can tear — taking slot 0 before a
    // push lands there and slot 1 after — but conservation must hold:
    // whatever the drain misses stays in the ring for the next drain.
    let a: Vec<Step<Ring>> = steps([
        Ring::take_ticket_a,
        |s: &mut Ring| s.swap_in(s.ticket_a),
        Ring::take_ticket_a,
        |s: &mut Ring| s.swap_in(s.ticket_a),
    ]);
    let b: Vec<Step<Ring>> = steps([
        |s: &mut Ring| s.drain_slot(0),
        |s: &mut Ring| s.drain_slot(1),
        Ring::commit_drain,
    ]);
    let ex = explore_two(
        || Ring::new(2),
        &a,
        &b,
        |s| {
            s.check_conservation()?;
            // The committed drain batch is sorted by ticket, mirroring
            // the real drain's sort, so exporters see completion order.
            for batch in &s.drains {
                if batch.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!("drain batch not ticket-ordered: {batch:?}"));
                }
            }
            Ok(())
        },
    );
    assert_eq!(ex.schedules, 35, "C(7,4) interleavings");
    ex.assert_ok();
}

#[test]
fn drain_after_reset_keeps_stale_generation_pushes_safe() {
    // Generation safety: a push that allocated its ticket before a drain
    // (the "old generation") but swaps in after it must surface in a
    // *later* drain exactly once — never vanish, never double-count —
    // even across two back-to-back drains (drain = the ring's reset).
    let a: Vec<Step<Ring>> = steps([Ring::take_ticket_a, |s: &mut Ring| s.swap_in(s.ticket_a)]);
    let b: Vec<Step<Ring>> = steps([
        |s: &mut Ring| s.drain_slot(0),
        Ring::commit_drain,
        |s: &mut Ring| s.drain_slot(0),
        Ring::commit_drain,
    ]);
    let ex = explore_two(
        || Ring::new(1),
        &a,
        &b,
        |s| {
            s.check_conservation()?;
            let drained_total: usize = s.drains.iter().map(Vec::len).sum();
            if drained_total > 1 {
                return Err(format!(
                    "record drained {drained_total} times across generations"
                ));
            }
            Ok(())
        },
    );
    assert_eq!(ex.schedules, 15, "C(6,2) interleavings");
    ex.assert_ok();
}

#[test]
fn harness_catches_a_broken_drain_protocol() {
    // Sanity-check the checker itself: a drain that *reads* a slot
    // without swapping it out (a classic "peek" bug) double-counts any
    // record that survives to the next drain. The explorer must find a
    // counterexample schedule.
    fn leaky_drain_slot(s: &mut Ring) {
        if let Some(t) = s.slots[0] {
            s.drain_buf.push(t); // bug: slot not cleared
        }
    }
    let a: Vec<Step<Ring>> = steps([Ring::take_ticket_a, |s: &mut Ring| s.swap_in(s.ticket_a)]);
    let b: Vec<Step<Ring>> = steps([
        leaky_drain_slot,
        Ring::commit_drain,
        leaky_drain_slot,
        Ring::commit_drain,
    ]);
    let ex = explore_two(|| Ring::new(1), &a, &b, |s| s.check_conservation());
    let (schedule, msg) = ex.failure.expect("peek bug must be caught");
    assert!(msg.contains("accounted"), "conservation violated: {msg}");
    assert_eq!(schedule.len(), 6);
}
