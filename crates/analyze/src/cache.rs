//! Content-hash incremental cache for per-file analysis.
//!
//! `orex analyze --cache FILE` memoizes [`FileAnalysis`] — the pure
//! per-file half of the pipeline (lex, file-local rules, fn summaries)
//! — keyed by an FNV-1a hash of the file's bytes. The interprocedural
//! pass always re-runs over the assembled facts, so a warm run's
//! report is byte-identical to a cold run's; the cache only skips
//! re-lexing and re-summarizing unchanged files.
//!
//! The on-disk format is a versioned, line-oriented text file written
//! by hand (this crate is dependency-free). Robustness rule: any
//! parse problem, version mismatch, or policy-hash mismatch silently
//! degrades to an empty cache — a stale or corrupt cache must never
//! change findings, only cost.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use crate::diag::{Census, Finding, Rule};
use crate::rules::LockEdge;
use crate::summary::{CallSite, FnSummary, LockRegion, ParamSink, Site, TaintSink};
use crate::FileAnalysis;

/// Format version: bump on any change to [`FileAnalysis`] or its
/// serialization, which atomically invalidates old caches.
const VERSION: &str = "orex-analyze-cache v1";

/// FNV-1a 64-bit over arbitrary bytes — tiny and good enough for
/// change detection (this is not a security boundary; the cache file
/// is as trusted as the sources themselves).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The in-memory cache: path → (content hash, analysis).
#[derive(Default)]
pub struct Cache {
    policy_hash: u64,
    entries: HashMap<String, (u64, FileAnalysis)>,
}

impl Cache {
    /// Fresh cache bound to a policy fingerprint. Per-file findings
    /// depend on the policy, so a policy edit invalidates everything.
    pub fn new(policy_hash: u64) -> Cache {
        Cache {
            policy_hash,
            entries: HashMap::new(),
        }
    }

    /// True when `rel`'s entry matches `source`'s current hash.
    pub fn contains(&self, rel: &str, source: &str) -> bool {
        self.entries
            .get(rel)
            .is_some_and(|(h, _)| *h == fnv1a64(source.as_bytes()))
    }

    /// The cached analysis for `rel`, if any (caller checks freshness
    /// with [`Cache::contains`] first).
    pub fn get(&self, rel: &str) -> Option<&FileAnalysis> {
        self.entries.get(rel).map(|(_, fa)| fa)
    }

    /// Inserts/overwrites the entry for `rel`.
    pub fn insert(&mut self, rel: &str, source: &str, fa: FileAnalysis) {
        self.entries
            .insert(rel.to_string(), (fnv1a64(source.as_bytes()), fa));
    }

    /// Loads a cache from `path`. Missing, corrupt, wrong-version or
    /// wrong-policy files all yield an empty cache.
    pub fn load(path: &Path, policy_hash: u64) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::new(policy_hash);
        };
        parse(&text, policy_hash).unwrap_or_else(|| Cache::new(policy_hash))
    }

    /// Serializes the cache to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.render())
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(VERSION);
        out.push('\n');
        out.push_str(&format!("policy {:016x}\n", self.policy_hash));
        let mut paths: Vec<&String> = self.entries.keys().collect();
        paths.sort();
        for p in paths {
            let (hash, fa) = &self.entries[p];
            out.push_str(&format!("file {hash:016x} {}\n", esc(p)));
            for f in &fa.findings {
                out.push_str(&format!(
                    "finding {} {} {} {}\n",
                    f.rule.id(),
                    f.line,
                    f.col,
                    esc(&f.message)
                ));
            }
            out.push_str(&format!("waived {}\n", fa.waived));
            out.push_str(&format!(
                "census {} {} {}\n",
                fa.census.todo, fa.census.fixme, fa.census.allow_attr
            ));
            for e in &fa.lock_edges {
                out.push_str(&format!(
                    "edge {} {} {} {} {}\n",
                    esc(&e.func),
                    esc(&e.first),
                    esc(&e.second),
                    e.line,
                    e.col
                ));
            }
            for s in &fa.facts.fns {
                out.push_str(&format!(
                    "fn {} {} {} {} {} {}\n",
                    esc(&s.name),
                    opt(&s.qualifier),
                    s.has_self as u8,
                    s.param_count,
                    s.line,
                    s.col
                ));
                for p in &s.panics {
                    out.push_str(&format!(
                        "panic {} {} {} {}\n",
                        p.line,
                        p.col,
                        rules_csv(&p.waived),
                        esc(&p.what)
                    ));
                }
                for b in &s.blocking {
                    out.push_str(&format!(
                        "block {} {} {} {}\n",
                        b.line,
                        b.col,
                        rules_csv(&b.waived),
                        esc(&b.what)
                    ));
                }
                for c in &s.calls {
                    out.push_str(&format!(
                        "call {} {} {} {} {} {} {} {} {}\n",
                        esc(&c.name),
                        opt(&c.qualifier),
                        c.is_method as u8,
                        c.line,
                        c.col,
                        rules_csv(&c.waived),
                        list_csv(&c.held_locks),
                        pairs_csv(
                            &c.tainted_args
                                .iter()
                                .map(|&(a, l)| (a, l as usize))
                                .collect::<Vec<_>>()
                        ),
                        pairs_csv(&c.param_args),
                    ));
                }
                for l in &s.locks {
                    out.push_str(&format!(
                        "lock {} {} {} {} {} {}\n",
                        esc(&l.lock),
                        l.line,
                        l.col,
                        idx_csv(&l.blocking),
                        idx_csv(&l.calls),
                        list_csv(&l.later_locks),
                    ));
                }
                for ts in &s.tainted_sinks {
                    out.push_str(&format!(
                        "tsink {} {} {} {} {}\n",
                        ts.line,
                        ts.col,
                        ts.source_line,
                        rules_csv(&ts.waived),
                        esc(&ts.sink)
                    ));
                }
                for ps in &s.param_sinks {
                    out.push_str(&format!(
                        "psink {} {} {} {} {}\n",
                        ps.param,
                        ps.line,
                        ps.col,
                        rules_csv(&ps.waived),
                        esc(&ps.sink)
                    ));
                }
            }
            out.push_str("end\n");
        }
        out
    }
}

/// Field escaping: cache fields are space-separated, so spaces,
/// newlines and backslashes in strings are escaped.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("\\e");
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    if s == "\\e" {
        return Some(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next()? {
                '\\' => out.push('\\'),
                's' => out.push(' '),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn opt(o: &Option<String>) -> String {
    match o {
        Some(s) => esc(s),
        None => "-".to_string(),
    }
}

fn unopt(s: &str) -> Option<Option<String>> {
    if s == "-" {
        Some(None)
    } else {
        unesc(s).map(Some)
    }
}

fn rules_csv(rules: &[Rule]) -> String {
    if rules.is_empty() {
        "-".to_string()
    } else {
        rules.iter().map(|r| r.id()).collect::<Vec<_>>().join(",")
    }
}

fn unrules_csv(s: &str) -> Option<Vec<Rule>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(Rule::parse).collect()
}

fn list_csv(items: &[String]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
    }
}

fn unlist_csv(s: &str) -> Option<Vec<String>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(unesc).collect()
}

fn idx_csv(items: &[usize]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn unidx_csv(s: &str) -> Option<Vec<usize>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(|x| x.parse().ok()).collect()
}

fn pairs_csv(items: &[(usize, usize)]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items
            .iter()
            .map(|(a, b)| format!("{a}:{b}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn unpairs_csv(s: &str) -> Option<Vec<(usize, usize)>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|x| {
            let (a, b) = x.split_once(':')?;
            Some((a.parse().ok()?, b.parse().ok()?))
        })
        .collect()
}

/// Parses cache text; `None` on any structural problem.
fn parse(text: &str, policy_hash: u64) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != VERSION {
        return None;
    }
    let policy_line = lines.next()?;
    let stored = u64::from_str_radix(policy_line.strip_prefix("policy ")?, 16).ok()?;
    if stored != policy_hash {
        return None;
    }
    let mut cache = Cache::new(policy_hash);
    let mut cur: Option<(String, u64, FileAnalysis)> = None;
    for line in lines {
        let mut f = line.split(' ');
        let kind = f.next()?;
        match kind {
            "file" => {
                if cur.is_some() {
                    return None; // missing `end`
                }
                let hash = u64::from_str_radix(f.next()?, 16).ok()?;
                let path = unesc(f.next()?)?;
                cur = Some((path, hash, FileAnalysis::default()));
            }
            "end" => {
                let (path, hash, mut fa) = cur.take()?;
                fa.facts.path = path.clone();
                for e in &mut fa.lock_edges {
                    e.file = path.clone();
                }
                for fd in &mut fa.findings {
                    fd.file = path.clone();
                }
                cache.entries.insert(path, (hash, fa));
            }
            "finding" => {
                let fa = &mut cur.as_mut()?.2;
                fa.findings.push(Finding {
                    rule: Rule::parse(f.next()?)?,
                    file: String::new(),
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                    message: unesc(f.next()?)?,
                });
            }
            "waived" => {
                cur.as_mut()?.2.waived = f.next()?.parse().ok()?;
            }
            "census" => {
                let fa = &mut cur.as_mut()?.2;
                fa.census = Census {
                    todo: f.next()?.parse().ok()?,
                    fixme: f.next()?.parse().ok()?,
                    allow_attr: f.next()?.parse().ok()?,
                };
            }
            "edge" => {
                let fa = &mut cur.as_mut()?.2;
                fa.lock_edges.push(LockEdge {
                    func: unesc(f.next()?)?,
                    first: unesc(f.next()?)?,
                    second: unesc(f.next()?)?,
                    file: String::new(),
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                });
            }
            "fn" => {
                let fa = &mut cur.as_mut()?.2;
                fa.facts.fns.push(FnSummary {
                    name: unesc(f.next()?)?,
                    qualifier: unopt(f.next()?)?,
                    has_self: f.next()? == "1",
                    param_count: f.next()?.parse().ok()?,
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                    panics: Vec::new(),
                    blocking: Vec::new(),
                    calls: Vec::new(),
                    locks: Vec::new(),
                    tainted_sinks: Vec::new(),
                    param_sinks: Vec::new(),
                });
            }
            "panic" | "block" => {
                let s = cur.as_mut()?.2.facts.fns.last_mut()?;
                let site = Site {
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                    waived: unrules_csv(f.next()?)?,
                    what: unesc(f.next()?)?,
                };
                if kind == "panic" {
                    s.panics.push(site);
                } else {
                    s.blocking.push(site);
                }
            }
            "call" => {
                let s = cur.as_mut()?.2.facts.fns.last_mut()?;
                s.calls.push(CallSite {
                    name: unesc(f.next()?)?,
                    qualifier: unopt(f.next()?)?,
                    is_method: f.next()? == "1",
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                    waived: unrules_csv(f.next()?)?,
                    held_locks: unlist_csv(f.next()?)?,
                    tainted_args: unpairs_csv(f.next()?)?
                        .into_iter()
                        .map(|(a, l)| (a, l as u32))
                        .collect(),
                    param_args: unpairs_csv(f.next()?)?,
                });
            }
            "lock" => {
                let s = cur.as_mut()?.2.facts.fns.last_mut()?;
                s.locks.push(LockRegion {
                    lock: unesc(f.next()?)?,
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                    blocking: unidx_csv(f.next()?)?,
                    calls: unidx_csv(f.next()?)?,
                    later_locks: unlist_csv(f.next()?)?,
                });
            }
            "tsink" => {
                let s = cur.as_mut()?.2.facts.fns.last_mut()?;
                s.tainted_sinks.push(TaintSink {
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                    source_line: f.next()?.parse().ok()?,
                    waived: unrules_csv(f.next()?)?,
                    sink: unesc(f.next()?)?,
                });
            }
            "psink" => {
                let s = cur.as_mut()?.2.facts.fns.last_mut()?;
                s.param_sinks.push(ParamSink {
                    param: f.next()?.parse().ok()?,
                    line: f.next()?.parse().ok()?,
                    col: f.next()?.parse().ok()?,
                    waived: unrules_csv(f.next()?)?,
                    sink: unesc(f.next()?)?,
                });
            }
            _ => return None,
        }
    }
    if cur.is_some() {
        return None; // truncated file
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    const SRC: &str = "fn handler(h: &str) {\n    let n = h.parse::<usize>().unwrap_or(0);\n    let g = state.lock();\n    helper(n);\n}\n";

    fn analysis() -> FileAnalysis {
        crate::analyze_file("crates/s/src/lib.rs", SRC, &Policy::default())
    }

    #[test]
    fn round_trips_a_full_analysis() {
        let mut c = Cache::new(7);
        c.insert("crates/s/src/lib.rs", SRC, analysis());
        let text = c.render();
        let back = parse(&text, 7).expect("parses");
        assert!(back.contains("crates/s/src/lib.rs", SRC));
        let fa = back.get("crates/s/src/lib.rs").unwrap();
        let orig = analysis();
        // The round-tripped facts must serialize identically — the
        // property the byte-identical-report guarantee rests on.
        let mut c2 = Cache::new(7);
        c2.insert("crates/s/src/lib.rs", SRC, analysis());
        assert_eq!(text, c2.render());
        assert_eq!(fa.facts.fns.len(), orig.facts.fns.len());
        let (f0, o0) = (&fa.facts.fns[0], &orig.facts.fns[0]);
        assert_eq!(f0.name, o0.name);
        assert_eq!(f0.calls.len(), o0.calls.len());
        assert_eq!(f0.locks.len(), o0.locks.len());
        assert_eq!(f0.panics.len(), o0.panics.len());
    }

    #[test]
    fn changed_content_misses() {
        let mut c = Cache::new(7);
        c.insert("a/src/x.rs", SRC, analysis());
        assert!(c.contains("a/src/x.rs", SRC));
        assert!(!c.contains("a/src/x.rs", "fn other() {}\n"));
        assert!(!c.contains("a/src/y.rs", SRC));
    }

    #[test]
    fn wrong_version_or_policy_degrades_to_empty() {
        let mut c = Cache::new(7);
        c.insert("a/src/x.rs", SRC, analysis());
        let text = c.render();
        assert!(parse(&text, 8).is_none(), "policy hash mismatch");
        let bad = text.replace("v1", "v0");
        assert!(parse(&bad, 7).is_none(), "version mismatch");
        let truncated = &text[..text.len() - 5];
        assert!(parse(truncated, 7).is_none(), "truncation detected");
    }

    #[test]
    fn escaping_survives_spaces_and_newlines() {
        assert_eq!(unesc(&esc("a b\nc\\d\te")).unwrap(), "a b\nc\\d\te");
        assert_eq!(unesc(&esc("")).unwrap(), "");
        assert_eq!(esc(""), "\\e");
    }
}
