//! The `analyze.policy` file: the single source of scanning policy.
//!
//! Rather than hard-coding exemptions in the scanner (which would turn
//! every policy change into a code change), crates opt in and out of
//! rules through a committed policy file at the workspace root:
//!
//! ```text
//! # comments and blank lines are ignored
//! exclude vendor/**                 # never scan these paths
//! scope ORX002 crates/server/src/** # rule fires only inside these globs
//! allow ORX005 crates/cli/**        # rule is waived for these globs
//! budget todo 0                     # debt census budgets (ORX006)
//! budget fixme 0
//! budget allow-attr 0
//! ```
//!
//! Glob syntax is the minimal `*` (one path segment) / `**` (any number
//! of segments) dialect — hand-rolled because the crate is
//! dependency-free.

use crate::diag::Rule;

/// Parsed policy file.
#[derive(Debug, Default)]
pub struct Policy {
    /// Paths never scanned at all.
    pub excludes: Vec<String>,
    /// Per-rule scope restriction: when present, the rule only fires on
    /// matching paths.
    pub scopes: Vec<(Rule, Vec<String>)>,
    /// Per-rule allowlist: matching paths never produce findings for
    /// that rule.
    pub allows: Vec<(Rule, String)>,
    /// Debt budgets; `None` means unbounded (rule ORX006 silent).
    pub budget_todo: Option<usize>,
    /// FIXME budget.
    pub budget_fixme: Option<usize>,
    /// `#[allow]` attribute budget.
    pub budget_allow_attr: Option<usize>,
}

/// A policy parse problem with its 1-based line number.
#[derive(Debug, PartialEq, Eq)]
pub struct PolicyError {
    /// 1-based line in the policy file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analyze.policy:{}: {}", self.line, self.message)
    }
}

impl Policy {
    /// Parses policy text. Unknown directives are errors: a typo that
    /// silently disables a gate is worse than a failed run.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut p = Policy::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap_or_default();
            let err = |message: String| PolicyError {
                line: lineno,
                message,
            };
            match directive {
                "exclude" => {
                    let glob = parts
                        .next()
                        .ok_or_else(|| err("exclude needs a glob".into()))?;
                    p.excludes.push(glob.to_string());
                }
                "scope" => {
                    let rule = parse_rule(parts.next(), lineno)?;
                    let globs = parts
                        .next()
                        .ok_or_else(|| err("scope needs comma-separated globs".into()))?;
                    let globs: Vec<String> = globs.split(',').map(str::to_string).collect();
                    if globs.iter().any(String::is_empty) {
                        // An empty glob matches nothing; a stray comma
                        // silently narrowing a gate is a typo, not policy.
                        return Err(err("empty glob in scope list".into()));
                    }
                    p.scopes.push((rule, globs));
                }
                "allow" => {
                    let rule = parse_rule(parts.next(), lineno)?;
                    let glob = parts
                        .next()
                        .ok_or_else(|| err("allow needs a glob".into()))?;
                    p.allows.push((rule, glob.to_string()));
                }
                "budget" => {
                    let what = parts
                        .next()
                        .ok_or_else(|| err("budget needs a kind".into()))?;
                    let n: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("budget needs a non-negative count".into()))?;
                    match what {
                        "todo" => p.budget_todo = Some(n),
                        "fixme" => p.budget_fixme = Some(n),
                        "allow-attr" => p.budget_allow_attr = Some(n),
                        other => {
                            return Err(err(format!(
                                "unknown budget kind `{other}` (todo|fixme|allow-attr)"
                            )))
                        }
                    }
                }
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
            if let Some(extra) = parts.next() {
                return Err(PolicyError {
                    line: lineno,
                    message: format!("unexpected trailing `{extra}`"),
                });
            }
        }
        Ok(p)
    }

    /// True when `path` must not be scanned at all.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.excludes.iter().any(|g| glob_match(g, path))
    }

    /// True when `rule` applies at `path` under scope + allow policy.
    pub fn rule_applies(&self, rule: Rule, path: &str) -> bool {
        if let Some((_, globs)) = self.scopes.iter().find(|(r, _)| *r == rule) {
            if !globs.iter().any(|g| glob_match(g, path)) {
                return false;
            }
        }
        !self
            .allows
            .iter()
            .any(|(r, g)| *r == rule && glob_match(g, path))
    }
}

fn parse_rule(tok: Option<&str>, line: u32) -> Result<Rule, PolicyError> {
    let tok = tok.ok_or(PolicyError {
        line,
        message: "missing rule ID".into(),
    })?;
    Rule::parse(tok).ok_or(PolicyError {
        line,
        message: format!("unknown rule `{tok}`"),
    })
}

/// Matches `path` against `glob`, where `*` spans within one path
/// segment and `**` spans any number of segments. Both use `/`
/// separators.
pub fn glob_match(glob: &str, path: &str) -> bool {
    let gsegs: Vec<&str> = glob.split('/').collect();
    let psegs: Vec<&str> = path.split('/').collect();
    seg_match(&gsegs, &psegs)
}

fn seg_match(glob: &[&str], path: &[&str]) -> bool {
    match glob.split_first() {
        None => path.is_empty(),
        Some((&"**", rest)) => {
            // `**` may swallow zero or more whole segments.
            (0..=path.len()).any(|k| seg_match(rest, &path[k..]))
        }
        Some((g, rest)) => match path.split_first() {
            Some((p, prest)) => one_seg(g, p) && seg_match(rest, prest),
            None => false,
        },
    }
}

/// Matches one glob segment (with `*` wildcards) against one path
/// segment.
fn one_seg(glob: &str, seg: &str) -> bool {
    let g: Vec<char> = glob.chars().collect();
    let s: Vec<char> = seg.chars().collect();
    // Classic iterative wildcard match with backtracking.
    let (mut gi, mut si) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while si < s.len() {
        if gi < g.len() && (g[gi] == s[si]) {
            gi += 1;
            si += 1;
        } else if gi < g.len() && g[gi] == '*' {
            star = gi;
            mark = si;
            gi += 1;
        } else if star != usize::MAX {
            gi = star + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while gi < g.len() && g[gi] == '*' {
        gi += 1;
    }
    gi == g.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_star_and_doublestar() {
        assert!(glob_match("vendor/**", "vendor/rand/src/lib.rs"));
        assert!(glob_match("vendor/**", "vendor"));
        assert!(glob_match("crates/*/src/**", "crates/server/src/http.rs"));
        assert!(!glob_match("crates/*/src/**", "crates/server/tests/t.rs"));
        assert!(glob_match("**/*.rs", "a/b/c.rs"));
        assert!(!glob_match("**/*.rs", "a/b/c.txt"));
        assert!(glob_match("crates/cli/**", "crates/cli/src/main.rs"));
    }

    #[test]
    fn parse_full_policy() {
        let p = Policy::parse(
            "# header\n\
             exclude vendor/**\n\
             scope ORX002 crates/server/src/**,crates/telemetry/src/**\n\
             allow ORX005 crates/cli/**  # tools may exit\n\
             budget todo 3\n",
        )
        .unwrap();
        assert!(p.is_excluded("vendor/rand/src/lib.rs"));
        assert!(!p.is_excluded("crates/server/src/server.rs"));
        assert!(p.rule_applies(Rule::Orx002, "crates/server/src/server.rs"));
        assert!(!p.rule_applies(Rule::Orx002, "crates/cli/src/main.rs"));
        assert!(!p.rule_applies(Rule::Orx005, "crates/cli/src/main.rs"));
        assert!(p.rule_applies(Rule::Orx005, "crates/server/src/server.rs"));
        assert_eq!(p.budget_todo, Some(3));
        assert_eq!(p.budget_fixme, None);
    }

    #[test]
    fn empty_globs_are_rejected_not_silently_dead() {
        // "a/**,,b/**" has an empty middle glob — almost certainly a
        // typo that would narrow the gate without anyone noticing.
        let e = Policy::parse("scope ORX002 a/**,,b/**\n").unwrap_err();
        assert!(e.message.contains("empty glob"), "{}", e.message);
        assert!(Policy::parse("scope ORX002 ,a/**\n").is_err());
        assert!(Policy::parse("scope ORX002 a/**,\n").is_err());
        // And the raw matcher treats "" as matching nothing real.
        assert!(!glob_match("", "crates/server/src/http.rs"));
    }

    #[test]
    fn overlapping_scope_and_allow_allow_wins() {
        // A path inside the scope but also inside an allow is waived:
        // allow is the finer-grained override.
        let p = Policy::parse(
            "scope ORX002 crates/**\n\
             allow ORX002 crates/cli/**\n",
        )
        .unwrap();
        assert!(p.rule_applies(Rule::Orx002, "crates/server/src/http.rs"));
        assert!(!p.rule_applies(Rule::Orx002, "crates/cli/src/main.rs"));
        // The allow does not leak onto other rules at the same path.
        assert!(p.rule_applies(Rule::Orx001, "crates/cli/src/main.rs"));
    }

    #[test]
    fn star_stays_within_a_segment_doublestar_crosses() {
        // `*` must not cross `/`: "src/pre*" matches a file prefix in
        // that directory, never a nested path.
        assert!(glob_match(
            "crates/store/src/precompute*",
            "crates/store/src/precompute.rs"
        ));
        assert!(glob_match(
            "crates/store/src/precompute*",
            "crates/store/src/precompute_batch.rs"
        ));
        assert!(!glob_match(
            "crates/store/src/precompute*",
            "crates/store/src/precompute/mod.rs"
        ));
        assert!(!glob_match("crates/*", "crates/server/src/http.rs"));
        assert!(glob_match("crates/**", "crates/server/src/http.rs"));
        // `**` may also match zero segments.
        assert!(glob_match("crates/**/http.rs", "crates/http.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        // A bare `*` is one segment only.
        assert!(glob_match("*", "lib.rs"));
        assert!(!glob_match("*", "src/lib.rs"));
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let e = Policy::parse("exclud vendor/**\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown directive"));
        assert!(Policy::parse("scope ORX999 x/**\n").is_err());
        assert!(Policy::parse("budget nonsense 2\n").is_err());
        assert!(Policy::parse("exclude a/** trailing\n").is_err());
    }
}
