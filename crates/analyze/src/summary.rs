//! Per-function fact extraction: the local half of the interprocedural
//! rules.
//!
//! For every [`FnItem`](crate::syntax::FnItem) this pass records what
//! ORX008–ORX010 need to reason across calls: direct panic sites
//! (ORX002's token set), blocking operations (socket I/O, `accept`,
//! `Condvar::wait`, sleeps), lock-guard regions and which calls/blocks
//! happen inside them, call sites with argument-level taint, and
//! request-tainted allocation sinks. Facts are strictly file-local —
//! the whole-workspace joins (reachability, lock-set propagation,
//! parameter-taint fixpoints) happen in [`crate::callgraph`] — which is
//! what makes per-file facts cacheable by content hash.
//!
//! Inline waivers are resolved *here*, where the lexed comments are
//! still in hand: every recorded site carries the set of rules an
//! attached `// orex::allow(ORXnnn)` suppresses, so the cross-file pass
//! never needs to re-read sources.

use crate::diag::Rule;
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::rules::is_waived;
use crate::syntax::{parse_fns, FnItem};

/// Facts for one source file: everything the interprocedural pass needs.
#[derive(Clone, Debug, Default)]
pub struct FileFacts {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// One summary per production `fn` item, in source order.
    pub fns: Vec<FnSummary>,
}

/// The interprocedural summary of one function.
#[derive(Clone, Debug)]
pub struct FnSummary {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` qualifier when the fn is a method.
    pub qualifier: Option<String>,
    /// Whether the first parameter is `self`.
    pub has_self: bool,
    /// Number of non-`self` parameters.
    pub param_count: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Direct panic sites (ORX002's token set) in this body.
    pub panics: Vec<Site>,
    /// Direct blocking operations in this body.
    pub blocking: Vec<Site>,
    /// Outgoing calls, in source order.
    pub calls: Vec<CallSite>,
    /// Lock-guard regions opened in this body.
    pub locks: Vec<LockRegion>,
    /// Request-tainted allocation sinks fed by a *local* taint source.
    pub tainted_sinks: Vec<TaintSink>,
    /// Allocation sinks fed *directly* by a parameter with no clamp —
    /// the raw material for the cross-call parameter-taint fixpoint.
    pub param_sinks: Vec<ParamSink>,
}

impl FnSummary {
    /// `Type::name` for methods, bare name otherwise.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One interesting source position with a description and the inline
/// waivers attached to its line.
#[derive(Clone, Debug)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What the site is (`\`.unwrap()\``, `TcpListener::accept`, ...).
    pub what: String,
    /// Rules suppressed by an attached `// orex::allow(...)`.
    pub waived: Vec<Rule>,
}

/// One outgoing call.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// `A::name(...)` path qualifier, when present.
    pub qualifier: Option<String>,
    /// True for `.name(...)` method-call syntax.
    pub is_method: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lock names held (per lock-region tracking) at this call.
    pub held_locks: Vec<String>,
    /// Arguments carrying *locally tainted* values: `(arg index,
    /// taint-source line)`. Indices count call-syntax arguments.
    pub tainted_args: Vec<(usize, u32)>,
    /// Arguments that pass one of the caller's own parameters through
    /// unclamped: `(arg index, caller param index)`.
    pub param_args: Vec<(usize, usize)>,
    /// Rules suppressed by an attached `// orex::allow(...)`.
    pub waived: Vec<Rule>,
}

/// One lock acquisition and the region its guard plausibly covers.
#[derive(Clone, Debug)]
pub struct LockRegion {
    /// Lock name (field/variable receiver of `.lock()`/`.read()`/`.write()`).
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Indices into [`FnSummary::blocking`] that fall inside the region.
    pub blocking: Vec<usize>,
    /// Indices into [`FnSummary::calls`] that fall inside the region.
    pub calls: Vec<usize>,
    /// Lock names acquired later inside the region (the intra-fn ORX004
    /// material, re-recorded here so the interprocedural pass sees one
    /// uniform edge source).
    pub later_locks: Vec<String>,
}

/// A `with_capacity`/`reserve`/`vec![_; n]` sink fed by a local taint
/// source without a bounds clamp.
#[derive(Clone, Debug)]
pub struct TaintSink {
    /// 1-based line of the sink.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Sink description (`Vec::with_capacity`, `vec![_; n]`, ...).
    pub sink: String,
    /// Line of the `.parse()`/`from_str_radix` source that tainted it.
    pub source_line: u32,
    /// Rules suppressed by an attached `// orex::allow(...)`.
    pub waived: Vec<Rule>,
}

/// An allocation sink fed directly by a caller parameter, unclamped.
#[derive(Clone, Debug)]
pub struct ParamSink {
    /// Index into the fn's non-`self` parameters.
    pub param: usize,
    /// 1-based line of the sink.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Sink description.
    pub sink: String,
    /// Rules suppressed by an attached `// orex::allow(...)`.
    pub waived: Vec<Rule>,
}

/// The interprocedural rules every site's waiver set is checked for.
const SITE_RULES: [Rule; 4] = [Rule::Orx004, Rule::Orx008, Rule::Orx009, Rule::Orx010];

fn waivers_at(lexed: &LexedFile, line: u32) -> Vec<Rule> {
    SITE_RULES
        .iter()
        .copied()
        .filter(|r| is_waived(lexed, *r, line))
        .collect()
}

/// Extracts [`FileFacts`] from a lexed file. `mask` is the
/// `#[cfg(test)]` token mask from [`crate::rules::test_mask`].
pub fn extract_facts(path: &str, lexed: &LexedFile, mask: &[bool]) -> FileFacts {
    let items = parse_fns(lexed, mask);
    let mut fns = Vec::with_capacity(items.len());
    for (idx, item) in items.items_with_own_ranges() {
        fns.push(summarize_fn(lexed, mask, &items[idx], &items, item));
    }
    FileFacts {
        path: path.to_string(),
        fns,
    }
}

/// Helper trait so `extract_facts` reads naturally; computes, for each
/// item, the token ranges belonging to it *minus* nested fn bodies.
trait OwnRanges {
    fn items_with_own_ranges(&self) -> Vec<(usize, Vec<(usize, usize)>)>;
}

impl OwnRanges for Vec<FnItem> {
    fn items_with_own_ranges(&self) -> Vec<(usize, Vec<(usize, usize)>)> {
        let mut out = Vec::with_capacity(self.len());
        for (i, item) in self.iter().enumerate() {
            let Some((start, end)) = item.body else {
                out.push((i, Vec::new()));
                continue;
            };
            // Direct nested bodies to exclude (children only; grandchild
            // ranges are inside child ranges already).
            let mut holes: Vec<(usize, usize)> = self
                .iter()
                .enumerate()
                .filter(|(j, other)| {
                    *j != i && other.body.is_some_and(|(s, e)| start < s && e <= end)
                })
                .filter_map(|(_, other)| other.body)
                .collect();
            holes.sort();
            let mut ranges = Vec::new();
            let mut cursor = start;
            for (hs, he) in holes {
                if hs > cursor {
                    ranges.push((cursor, hs.saturating_sub(1)));
                }
                cursor = cursor.max(he + 1);
            }
            if cursor <= end {
                ranges.push((cursor, end));
            }
            out.push((i, ranges));
        }
        out
    }
}

/// Names that look like calls but are control-flow keywords.
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "as"
            | "in"
            | "where"
            | "move"
            | "let"
            | "else"
            | "fn"
            | "await"
            | "yield"
            | "box"
    )
}

/// The panic-site matcher shared with ORX002's spirit: method panics
/// need the `.name(` shape, macro panics the `name!` shape.
fn panic_site(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    if (t.text == "unwrap" || t.text == "expect")
        && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
    {
        return Some(format!("`.{}()`", t.text));
    }
    if (t.text == "panic"
        || t.text == "unreachable"
        || t.text == "todo"
        || t.text == "unimplemented")
        && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
    {
        return Some(format!("`{}!`", t.text));
    }
    None
}

/// The blocking-operation matcher for ORX009: operations that park the
/// calling thread while any held lock guard stays live.
fn blocking_site(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let next_open = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    if !next_open {
        return None;
    }
    let prev_dot = toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'));
    let empty_parens = toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
    match t.text.as_str() {
        // `thread::sleep(..)` and `.sleep(..)` alike.
        "sleep" => Some("`sleep`".to_string()),
        // `TcpListener::accept()`.
        "accept" if prev_dot && empty_parens => Some("`accept()`".to_string()),
        // Condvar parking.
        "wait" | "wait_timeout" | "wait_while" | "wait_timeout_while" if prev_dot => {
            Some(format!("`Condvar::{}`", t.text))
        }
        // Channel receives park the thread too.
        "recv" | "recv_timeout" if prev_dot && (empty_parens || t.text == "recv_timeout") => {
            Some(format!("`.{}()`", t.text))
        }
        // Socket/stream I/O. Bare `.read()`/`.write()` with *empty*
        // parens are RwLock acquisitions, not I/O — the arg-taking
        // forms and the named exact/line/all variants are the I/O ones.
        "read" | "write" if prev_dot && !empty_parens => Some(format!("`.{}(..)`", t.text)),
        "read_exact" | "read_to_end" | "read_to_string" | "read_line" | "write_all"
        | "write_fmt" | "flush"
            if prev_dot =>
        {
            Some(format!("`.{}(..)`", t.text))
        }
        // Outbound connections block until the peer answers.
        "connect" | "connect_timeout" => Some(format!("`{}(..)`", t.text)),
        // Joining a thread parks until it exits.
        "join" if prev_dot && empty_parens => Some("`.join()`".to_string()),
        _ => None,
    }
}

/// Allocation-sink matcher for ORX010. Returns `(description, argument
/// token range)` — the argument run whose taint decides the finding.
fn alloc_sink(toks: &[Token], i: usize) -> Option<(String, (usize, usize))> {
    let t = &toks[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let arg_range = |open: usize| -> Option<(usize, usize)> {
        let close = matching(toks, open, '(', ')')?;
        (close > open + 1).then_some((open + 1, close - 1))
    };
    match t.text.as_str() {
        "with_capacity" if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
            // `Vec::with_capacity` lexes as `Vec` `:` `:` `with_capacity`.
            let qual = toks
                .get(i.wrapping_sub(3))
                .filter(|q| {
                    q.kind == TokenKind::Ident
                        && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(':'))
                        && toks.get(i.wrapping_sub(2)).is_some_and(|p| p.is_punct(':'))
                })
                .map(|q| q.text.clone())
                .unwrap_or_else(|| "_".to_string());
            Some((format!("{qual}::with_capacity"), arg_range(i + 1)?))
        }
        "reserve" | "reserve_exact" | "resize"
            if toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
                && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
        {
            Some((format!(".{}(..)", t.text), arg_range(i + 1)?))
        }
        "vec"
            if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct('[')) =>
        {
            // `vec![elem; len]` — the len expression after the `;`.
            let close = matching(toks, i + 2, '[', ']')?;
            let semi = (i + 3..close).find(|&k| toks[k].is_punct(';'))?;
            (close > semi + 1).then_some(("vec![_; n]".to_string(), (semi + 1, close - 1)))
        }
        _ => None,
    }
}

/// Index of the closing delimiter matching the opener at `open`.
fn matching(toks: &[Token], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Builds the summary for one fn item. `own` is the token ranges that
/// belong to this fn (body minus nested fn bodies).
fn summarize_fn(
    lexed: &LexedFile,
    mask: &[bool],
    item: &FnItem,
    _all: &[FnItem],
    own: Vec<(usize, usize)>,
) -> FnSummary {
    let toks = &lexed.tokens;
    let mut s = FnSummary {
        name: item.name.clone(),
        qualifier: item.qualifier.clone(),
        has_self: item.has_self,
        param_count: item.params.len(),
        line: item.line,
        col: item.col,
        panics: Vec::new(),
        blocking: Vec::new(),
        calls: Vec::new(),
        locks: Vec::new(),
        tainted_sinks: Vec::new(),
        param_sinks: Vec::new(),
    };
    if own.is_empty() {
        return s;
    }
    let in_own = |k: usize| own.iter().any(|&(a, b)| a <= k && k <= b);

    // Taint state: locally tainted names -> source line; params that are
    // still "unclamped" (cleared by any comparison).
    let mut tainted: Vec<(String, u32)> = Vec::new();
    let mut live_params: Vec<(String, usize)> = item
        .params
        .iter()
        .enumerate()
        .filter_map(|(pi, p)| p.clone().map(|name| (name, pi)))
        .collect();

    // Lock regions currently open:
    // (summary index, region end token, guard variable name).
    let mut open_regions: Vec<(usize, usize, Option<String>)> = Vec::new();

    let (body_start, body_end) = match item.body {
        Some(r) => r,
        None => return s,
    };
    let mut i = body_start;
    while i <= body_end {
        if !in_own(i) || mask.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        let t = &toks[i];

        // Close expired lock regions.
        open_regions.retain(|(_, end, _)| i <= *end);

        // Comparison adjacency clears taint: `n > LIMIT`, `LIMIT >= n`.
        if t.is_punct('<') || t.is_punct('>') {
            for adj in [i.wrapping_sub(1), i + 1] {
                if let Some(a) = toks.get(adj).filter(|a| a.kind == TokenKind::Ident) {
                    tainted.retain(|(n, _)| *n != a.text);
                    live_params.retain(|(n, _)| *n != a.text);
                }
            }
            i += 1;
            continue;
        }

        // `drop(name)` ends that guard's regions early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            let dropped = &toks[i + 2].text;
            open_regions.retain(|(_, _, guard)| guard.as_deref() != Some(dropped.as_str()));
            i += 4;
            continue;
        }

        // Panic sites.
        if let Some(what) = panic_site(toks, i) {
            s.panics.push(Site {
                line: t.line,
                col: t.col,
                what,
                waived: waivers_at(lexed, t.line),
            });
            i += 1;
            continue;
        }

        // Lock acquisition?
        if let Some((lock_name, _recv_start)) = lock_acquisition(toks, i) {
            let region_end = region_end_for(toks, i, body_end);
            let guard = guard_name(toks, i);
            for (ri, _, _) in &open_regions {
                let lock = lock_name.clone();
                if s.locks[*ri].lock != lock && !s.locks[*ri].later_locks.contains(&lock) {
                    s.locks[*ri].later_locks.push(lock);
                }
            }
            s.locks.push(LockRegion {
                lock: lock_name,
                line: t.line,
                col: t.col,
                blocking: Vec::new(),
                calls: Vec::new(),
                later_locks: Vec::new(),
            });
            open_regions.push((s.locks.len() - 1, region_end, guard));
            i += 1;
            continue;
        }

        // Blocking operations. Condvar waits *release* the guard they
        // are handed while parked — the region whose guard is passed
        // as an argument is not held across the wait, only others are.
        if let Some(what) = blocking_site(toks, i) {
            let released: Vec<String> = if what.starts_with("`Condvar::") {
                matching(toks, i + 1, '(', ')')
                    .map(|close| {
                        toks[i + 2..close]
                            .iter()
                            .filter(|x| x.kind == TokenKind::Ident)
                            .map(|x| x.text.clone())
                            .collect()
                    })
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            let site_idx = s.blocking.len();
            s.blocking.push(Site {
                line: t.line,
                col: t.col,
                what,
                waived: waivers_at(lexed, t.line),
            });
            for (ri, _, guard) in &open_regions {
                if guard.as_ref().is_some_and(|g| released.contains(g)) {
                    continue;
                }
                s.locks[*ri].blocking.push(site_idx);
            }
            i += 1;
            continue;
        }

        // Allocation sinks.
        if let Some((sink, (a, b))) = alloc_sink(toks, i) {
            let arg = &toks[a..=b];
            let clamped = arg
                .iter()
                .any(|x| x.is_ident("min") || x.is_ident("clamp") || x.is_ident("saturating_sub"));
            if !clamped {
                if let Some((_, src)) = tainted
                    .iter()
                    .find(|(n, _)| arg.iter().any(|x| x.is_ident(n)))
                {
                    s.tainted_sinks.push(TaintSink {
                        line: t.line,
                        col: t.col,
                        sink: sink.clone(),
                        source_line: *src,
                        waived: waivers_at(lexed, t.line),
                    });
                }
                if let Some((_, pi)) = live_params
                    .iter()
                    .find(|(n, _)| arg.iter().any(|x| x.is_ident(n)))
                {
                    s.param_sinks.push(ParamSink {
                        param: *pi,
                        line: t.line,
                        col: t.col,
                        sink,
                        waived: waivers_at(lexed, t.line),
                    });
                }
            }
            i += 1;
            continue;
        }

        // Call sites.
        if let Some(call) = call_site(toks, i, &tainted, &live_params) {
            let idx = s.calls.len();
            for (ri, _, _) in &open_regions {
                if !s.locks[*ri].calls.contains(&idx) {
                    s.locks[*ri].calls.push(idx);
                }
            }
            let mut call = call;
            call.held_locks = open_regions
                .iter()
                .map(|(ri, _, _)| s.locks[*ri].lock.clone())
                .collect();
            call.waived = waivers_at(lexed, t.line);
            s.calls.push(call);
            i += 1;
            continue;
        }

        // `let` bindings: taint propagation.
        if t.is_ident("let") {
            if let Some((name, rhs)) = let_binding(toks, i, body_end) {
                let (rs, re) = rhs;
                let rhs_toks = &toks[rs..=re.min(body_end)];
                let clamp = rhs_toks.iter().any(|x| {
                    x.is_ident("min") || x.is_ident("clamp") || x.is_ident("saturating_sub")
                });
                let parse_at = rhs_toks.iter().find(|x| {
                    (x.is_ident("parse") && rhs_toks.iter().any(|d| d.is_punct('.')))
                        || x.is_ident("from_str_radix")
                });
                // Shadowing: a fresh binding replaces the old taint.
                tainted.retain(|(n, _)| *n != name);
                if !clamp {
                    if let Some(src) = parse_at {
                        tainted.push((name, src.line));
                    } else if let Some((_, src)) = tainted
                        .clone()
                        .iter()
                        .find(|(n, _)| rhs_toks.iter().any(|x| x.is_ident(n)))
                    {
                        tainted.push((name, *src));
                    }
                }
            }
        }

        i += 1;
    }
    s
}

/// Name the guard variable a lock acquisition binds to, if any: walks
/// back to the statement start and matches `let [mut] NAME =`,
/// `let Ok(NAME)` / `let Some(NAME)`, and their `if`/`while let` forms.
fn guard_name(toks: &[Token], acq: usize) -> Option<String> {
    let mut st = acq;
    while st > 0 {
        let p = &toks[st - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        st -= 1;
    }
    let mut j = st;
    if toks
        .get(j)
        .is_some_and(|t| t.is_ident("if") || t.is_ident("while"))
    {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    j += 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    match toks.get(j) {
        Some(t) if t.is_ident("Ok") || t.is_ident("Some") => {
            let mut k = j + 2;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            toks.get(k)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
        }
        Some(t) if t.kind == TokenKind::Ident && !is_keyword(&t.text) => Some(t.text.clone()),
        _ => None,
    }
}

/// Matches a lock acquisition at `i`: `.lock()` / `.read()` /
/// `.write()` with empty parens. Returns the lock's receiver name.
fn lock_acquisition(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let t = &toks[i];
    if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
        return None;
    }
    if !(toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(')')))
    {
        return None;
    }
    let j = i.wrapping_sub(2);
    match toks.get(j) {
        Some(tok) if tok.kind == TokenKind::Ident => Some((tok.text.clone(), j)),
        Some(tok) if tok.is_punct(')') => {
            // `table().lock()` — name the fn before the parens.
            let mut k = j;
            let mut par = 0i32;
            loop {
                match toks.get(k) {
                    Some(tk) if tk.is_punct(')') => par += 1,
                    Some(tk) if tk.is_punct('(') => {
                        par -= 1;
                        if par == 0 {
                            break;
                        }
                    }
                    Some(_) => {}
                    None => return None,
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            let j2 = k.wrapping_sub(1);
            match toks.get(j2) {
                Some(tk) if tk.kind == TokenKind::Ident => Some((tk.text.clone(), j2)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Where the guard born at acquisition token `acq` plausibly dies: the
/// end of the enclosing block for `let`-bound guards, the end of the
/// statement for temporaries. Over-approximates `if let` bindings to
/// the end of the *enclosing* block — the right bias for a deadlock
/// and blocking audit.
fn region_end_for(toks: &[Token], acq: usize, body_end: usize) -> usize {
    // Find the statement start: walk back to the nearest `;`, `{`, `}`.
    let mut st = acq;
    while st > 0 {
        let p = &toks[st - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        st -= 1;
    }
    let is_let = toks.get(st).is_some_and(|t| t.is_ident("let"))
        || (toks
            .get(st)
            .is_some_and(|t| t.is_ident("if") || t.is_ident("while"))
            && toks.get(st + 1).is_some_and(|t| t.is_ident("let")));
    // `let v = x.lock().unwrap().drain(..).collect();` binds the
    // *extracted value*, not the guard: after skipping the
    // poison-recovery adapters, a further `.method(` means the guard
    // is a temporary that dies at the statement's `;`.
    let is_let = is_let && !chain_extracts_value(toks, acq);
    if is_let {
        // To the end of the enclosing block: depth-0 `}` scan.
        let mut depth = 0i32;
        let mut k = acq;
        while k <= body_end {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            k += 1;
        }
        body_end
    } else {
        // Temporary guard: dies at the statement's `;`.
        let mut depth = 0i32;
        let mut k = acq;
        while k <= body_end {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                return k;
            }
            k += 1;
        }
        body_end
    }
}

/// True when the method chain after the `.lock()`/`.read()`/`.write()`
/// at `acq` continues past the poison-recovery adapters into another
/// method call — i.e. the statement extracts a value and the guard is
/// a temporary, not the thing being bound.
fn chain_extracts_value(toks: &[Token], acq: usize) -> bool {
    // `acq` is the lock ident; `acq+1`/`acq+2` are its empty parens.
    let mut j = acq + 3;
    loop {
        // `x.lock()?` — the `?` unwraps the poison Result.
        if toks.get(j).is_some_and(|t| t.is_punct('?')) {
            j += 1;
            continue;
        }
        let adapter = toks.get(j).is_some_and(|t| t.is_punct('.'))
            && toks.get(j + 1).is_some_and(|t| {
                t.is_ident("unwrap")
                    || t.is_ident("expect")
                    || t.is_ident("unwrap_or_else")
                    || t.is_ident("unwrap_or_default")
            })
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('));
        if !adapter {
            break;
        }
        match matching(toks, j + 2, '(', ')') {
            Some(close) => j = close + 1,
            None => return false,
        }
    }
    toks.get(j).is_some_and(|t| t.is_punct('.'))
}

/// Matches a call site at `i` and classifies it. Taint/param flow for
/// each argument is resolved against the caller's current state.
fn call_site(
    toks: &[Token],
    i: usize,
    tainted: &[(String, u32)],
    live_params: &[(String, usize)],
) -> Option<CallSite> {
    let t = &toks[i];
    if t.kind != TokenKind::Ident || is_keyword(&t.text) {
        return None;
    }
    if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    // Definitions are not calls.
    if toks
        .get(i.wrapping_sub(1))
        .is_some_and(|p| p.is_ident("fn"))
    {
        return None;
    }
    // Panic sites and lock acquisitions are handled by their own
    // matchers (they run first); what reaches here is a plain call.
    let prev = toks.get(i.wrapping_sub(1));
    let is_method = prev.is_some_and(|p| p.is_punct('.'));
    let mut qualifier = None;
    if !is_method
        && prev.is_some_and(|p| p.is_punct(':'))
        && toks.get(i.wrapping_sub(2)).is_some_and(|p| p.is_punct(':'))
    {
        if let Some(q) = toks
            .get(i.wrapping_sub(3))
            .filter(|q| q.kind == TokenKind::Ident)
        {
            qualifier = Some(q.text.clone());
        }
    }
    // Struct literals `Name ( .. )`? Tuple-struct construction looks
    // like a call; resolution simply won't find a matching fn.

    // Argument ranges: split at top-level commas.
    let close = matching(toks, i + 1, '(', ')')?;
    let mut tainted_args = Vec::new();
    let mut param_args = Vec::new();
    let mut start = i + 2;
    let mut depth = 0i32;
    let mut arg_idx = 0usize;
    for k in i + 2..=close {
        let tk = &toks[k];
        let boundary = k == close || (depth == 0 && tk.is_punct(','));
        if boundary {
            if start < k {
                let arg = &toks[start..k];
                let clamped = arg.iter().any(|x| {
                    x.is_ident("min") || x.is_ident("clamp") || x.is_ident("saturating_sub")
                });
                if !clamped {
                    if let Some((_, src)) = tainted
                        .iter()
                        .find(|(n, _)| arg.iter().any(|x| x.is_ident(n)))
                    {
                        tainted_args.push((arg_idx, *src));
                    } else if let Some((_, pi)) = live_params
                        .iter()
                        .find(|(n, _)| arg.iter().any(|x| x.is_ident(n)))
                    {
                        param_args.push((arg_idx, *pi));
                    }
                }
            }
            arg_idx += 1;
            start = k + 1;
        } else if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('{') {
            depth += 1;
        } else if tk.is_punct(')') || tk.is_punct(']') || tk.is_punct('}') {
            depth -= 1;
        }
    }

    Some(CallSite {
        name: t.text.clone(),
        qualifier,
        is_method,
        line: t.line,
        col: t.col,
        held_locks: Vec::new(),
        tainted_args,
        param_args,
        waived: Vec::new(),
    })
}

/// At a `let` token, extracts the bound name and RHS token range for
/// simple forms: `let [mut] NAME = ...;`, `let Ok(NAME) = ...`,
/// `let Some(NAME) = ...` (and their `if let` variants, which arrive
/// here already positioned at `let`).
fn let_binding(toks: &[Token], let_at: usize, body_end: usize) -> Option<(String, (usize, usize))> {
    let mut j = let_at + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = match toks.get(j) {
        Some(t) if t.is_ident("Ok") || t.is_ident("Some") => {
            if !toks.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                return None;
            }
            let mut k = j + 2;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let inner = toks.get(k).filter(|t| t.kind == TokenKind::Ident)?;
            if !toks.get(k + 1).is_some_and(|n| n.is_punct(')')) {
                return None;
            }
            j = k + 2;
            inner.text.clone()
        }
        Some(t) if t.kind == TokenKind::Ident && !is_keyword(&t.text) => {
            let name = t.text.clone();
            j += 1;
            name
        }
        _ => return None,
    };
    // Skip a `: Type` ascription up to the `=`.
    let mut depth = 0i32;
    while j <= body_end {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth = (depth - 1).max(0);
        } else if depth == 0 && t.is_punct('=') {
            // Not `==` / `=>`.
            if toks
                .get(j + 1)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
            {
                return None;
            }
            break;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
            return None;
        }
        j += 1;
    }
    if j > body_end {
        return None;
    }
    // RHS: from after `=` to the statement `;` (or an opening `{` for
    // `if let` — the condition expression ends there).
    let rs = j + 1;
    let mut k = rs;
    let mut d = 0i32;
    while k <= body_end {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            d -= 1;
        } else if d <= 0 && (t.is_punct(';') || t.is_punct('{')) {
            break;
        }
        k += 1;
    }
    (k > rs).then(|| (name, (rs, k.saturating_sub(1))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn facts(src: &str) -> FileFacts {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        extract_facts("crates/x/src/lib.rs", &lexed, &mask)
    }

    #[test]
    fn panic_and_call_sites_are_recorded() {
        let f = facts(
            "fn handler(q: &str) -> u32 {\n    let v = parse_query(q);\n    score(v).unwrap()\n}",
        );
        let s = &f.fns[0];
        assert_eq!(s.panics.len(), 1);
        assert!(s.panics[0].what.contains("unwrap"));
        let names: Vec<&str> = s.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["parse_query", "score"]);
    }

    #[test]
    fn blocking_sites_distinguish_io_from_rwlock() {
        let f = facts(
            "fn pump(&self, s: &mut TcpStream) {\n    let g = self.state.read();\n    s.read_exact(&mut buf);\n    s.write(&buf);\n    self.cv.wait(g);\n}",
        );
        let s = &f.fns[0];
        // read() empty-parens is the lock; read_exact/write(args)/wait block.
        assert_eq!(s.locks.len(), 1);
        assert_eq!(s.locks[0].lock, "state");
        let kinds: Vec<&str> = s.blocking.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(
            kinds,
            ["`.read_exact(..)`", "`.write(..)`", "`Condvar::wait`"]
        );
        // The I/O ops fall inside the guard's region; the Condvar wait
        // releases guard `g` while parked, so it is not "held across".
        assert_eq!(s.locks[0].blocking, vec![0, 1]);
    }

    #[test]
    fn condvar_wait_releases_its_own_guard_but_not_others() {
        let f = facts(
            "fn f(&self) {\n    let extra = self.stats.lock();\n    let g = self.state.lock();\n    self.cv.wait_timeout(g, TIMEOUT);\n}",
        );
        let s = &f.fns[0];
        // `g` is released by the wait; `extra` stays held across it.
        let stats = s.locks.iter().find(|r| r.lock == "stats").unwrap();
        let state = s.locks.iter().find(|r| r.lock == "state").unwrap();
        assert_eq!(stats.blocking.len(), 1);
        assert!(state.blocking.is_empty());
    }

    #[test]
    fn drop_ends_a_lock_region() {
        let f = facts(
            "fn f(&self) {\n    let g = self.state.lock();\n    drop(g);\n    self.sock.write_all(b\"x\");\n}",
        );
        let s = &f.fns[0];
        assert_eq!(s.locks.len(), 1);
        assert!(s.locks[0].blocking.is_empty(), "{:?}", s.locks[0]);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let f = facts(
            "fn f(&self) {\n    self.state.lock().clear();\n    self.sock.write_all(b\"x\");\n}",
        );
        let s = &f.fns[0];
        assert_eq!(s.locks.len(), 1);
        assert!(s.locks[0].blocking.is_empty());
    }

    #[test]
    fn value_extracting_chain_is_a_temporary_guard() {
        // The guard is consumed by `.drain().collect()` and dies at the
        // `;` — the join below runs with no lock held.
        let f = facts(
            "fn shutdown(&self) {\n    let handles: Vec<_> = self.threads.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();\n    for h in handles {\n        let _ = h.join();\n    }\n}",
        );
        let s = &f.fns[0];
        assert_eq!(s.locks.len(), 1);
        assert!(s.locks[0].blocking.is_empty(), "{:?}", s.locks[0]);
    }

    #[test]
    fn calls_inside_regions_record_held_locks() {
        let f =
            facts("fn f(&self) {\n    let g = self.sessions.lock();\n    self.flush_to_disk();\n}");
        let s = &f.fns[0];
        let call = s.calls.iter().find(|c| c.name == "flush_to_disk").unwrap();
        assert_eq!(call.held_locks, vec!["sessions".to_string()]);
    }

    #[test]
    fn later_locks_feed_the_interprocedural_order_graph() {
        let f = facts(
            "fn f(&self) {\n    let a = self.cache.lock();\n    let b = self.sessions.lock();\n}",
        );
        let s = &f.fns[0];
        assert_eq!(s.locks[0].later_locks, vec!["sessions".to_string()]);
    }

    #[test]
    fn taint_flows_from_parse_to_sinks_unless_clamped() {
        let f = facts(
            "fn alloc(h: &str) -> Vec<u8> {\n    let n = h.parse::<usize>().unwrap_or(0);\n    Vec::with_capacity(n)\n}",
        );
        let s = &f.fns[0];
        assert_eq!(s.tainted_sinks.len(), 1, "{:?}", s.tainted_sinks);
        assert_eq!(s.tainted_sinks[0].sink, "Vec::with_capacity");

        let clamped = facts(
            "fn alloc(h: &str) -> Vec<u8> {\n    let n = h.parse::<usize>().unwrap_or(0);\n    Vec::with_capacity(n.min(4096))\n}",
        );
        assert!(clamped.fns[0].tainted_sinks.is_empty());

        let guarded = facts(
            "fn alloc(h: &str) -> Result<Vec<u8>, E> {\n    let n = h.parse::<usize>().unwrap_or(0);\n    if n > MAX { return Err(E); }\n    Ok(Vec::with_capacity(n))\n}",
        );
        assert!(guarded.fns[0].tainted_sinks.is_empty());
    }

    #[test]
    fn taint_propagates_through_let_chains() {
        let f = facts(
            "fn alloc(h: &str) -> Vec<u8> {\n    let n = h.parse::<usize>().unwrap_or(0);\n    let padded = n + 16;\n    vec![0u8; padded]\n}",
        );
        let s = &f.fns[0];
        assert_eq!(s.tainted_sinks.len(), 1);
        assert_eq!(s.tainted_sinks[0].sink, "vec![_; n]");
    }

    #[test]
    fn param_sinks_and_call_arg_taint() {
        let f = facts(
            "fn build(len: usize) -> Vec<u8> {\n    Vec::with_capacity(len)\n}\n\
             fn outer(h: &str) {\n    let n = h.parse::<usize>().unwrap_or(0);\n    build(n);\n}",
        );
        let build = &f.fns[0];
        assert_eq!(build.param_sinks.len(), 1);
        assert_eq!(build.param_sinks[0].param, 0);
        let outer = &f.fns[1];
        let call = outer.calls.iter().find(|c| c.name == "build").unwrap();
        assert_eq!(call.tainted_args, vec![(0, 5)]);
    }

    #[test]
    fn waivers_are_captured_at_sites() {
        let f = facts(
            "fn f(&self) {\n    // orex::allow(ORX009): metrics snapshot, bounded\n    let g = self.state.lock();\n    self.sock.write_all(b\"x\");\n}",
        );
        // The waiver attaches to the *acquisition* line here, not the
        // blocking line — so the blocking site itself is not waived.
        let s = &f.fns[0];
        assert!(s.blocking[0].waived.is_empty());

        let f2 = facts(
            "fn f(&self, s: &mut TcpStream) {\n    let g = self.state.lock();\n    // orex::allow(ORX009): drained on shutdown only\n    s.write_all(b\"x\");\n}",
        );
        assert_eq!(f2.fns[0].blocking[0].waived, vec![Rule::Orx009]);
    }

    #[test]
    fn method_and_path_calls_classify() {
        let f =
            facts("fn f(s: &Server) {\n    s.handle();\n    Server::restart(s);\n    helper();\n}");
        let c = &f.fns[0].calls;
        assert!(c[0].is_method && c[0].name == "handle");
        assert_eq!(c[1].qualifier.as_deref(), Some("Server"));
        assert!(!c[2].is_method && c[2].qualifier.is_none());
    }
}
