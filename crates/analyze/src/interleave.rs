//! Bounded exhaustive two-thread interleaving explorer.
//!
//! A hand-rolled model checker in miniature: each "thread" is a list of
//! atomic *steps* (closures over shared state `S`), and
//! [`explore_two`] runs every one of the `C(a+b, a)` ways the two step
//! lists can interleave, invoking a checker on the final state of each
//! schedule. Steps execute on the single test thread, so each schedule
//! is a sequentially-consistent execution at step granularity — this
//! deliberately checks *protocol* races (lost updates, torn sequences,
//! generation mismatches), not memory-ordering bugs, which the Miri and
//! TSan CI jobs cover on the real concurrent code.
//!
//! Used by `crates/analyze/tests/ring_interleave.rs` to model-check the
//! telemetry trace ring's push/drain/evict protocol, and available to
//! any crate that dev-depends on `orex-analyze`.

/// Which thread a step belongs to, passed to the trace callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// First step list.
    A,
    /// Second step list.
    B,
}

/// One atomic step of a modelled thread.
pub type Step<S> = Box<dyn Fn(&mut S)>;

/// Builds a step list from closures.
pub fn steps<S: 'static, const N: usize>(fns: [fn(&mut S); N]) -> Vec<Step<S>> {
    fns.into_iter().map(|f| Box::new(f) as Step<S>).collect()
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Exploration {
    /// Number of distinct schedules executed.
    pub schedules: u64,
    /// First schedule (as a lane sequence) that failed the checker,
    /// with the checker's message.
    pub failure: Option<(Vec<Lane>, String)>,
}

impl Exploration {
    /// Panics with a readable counterexample if any schedule failed.
    /// Test-harness API, so panicking is the point.
    pub fn assert_ok(&self) {
        if let Some((sched, msg)) = &self.failure {
            let lanes: String = sched
                .iter()
                .map(|l| if *l == Lane::A { 'A' } else { 'B' })
                .collect();
            panic!(
                "interleaving violation after {} schedule(s)\n  schedule: {}\n  {}",
                self.schedules, lanes, msg
            );
        }
    }
}

/// Exhaustively explores every interleaving of `a` and `b` from a fresh
/// `init()` state, calling `check` on each completed schedule. `check`
/// returns `Err(description)` to record a counterexample; exploration
/// stops at the first failure (the counterexample is what you debug —
/// more of them is noise).
///
/// Schedule count is `C(len_a + len_b, len_a)`; keep step lists under
/// ~12 steps each (C(24,12) ≈ 2.7M) so tests stay sub-second.
pub fn explore_two<S, I, C>(init: I, a: &[Step<S>], b: &[Step<S>], check: C) -> Exploration
where
    I: Fn() -> S,
    C: Fn(&S) -> Result<(), String>,
{
    let total = a.len() + b.len();
    let mut schedule: Vec<Lane> = Vec::with_capacity(total);
    let mut out = Exploration {
        schedules: 0,
        failure: None,
    };
    // Iterative depth-first enumeration of lane sequences. `schedule`
    // holds the prefix; we extend with A when possible, and on
    // backtrack flip a trailing A to B.
    'outer: loop {
        // Extend the prefix to a full schedule, preferring lane A.
        while schedule.len() < total {
            let used_a = schedule.iter().filter(|l| **l == Lane::A).count();
            if used_a < a.len() {
                schedule.push(Lane::A);
            } else {
                schedule.push(Lane::B);
            }
        }
        // Execute it.
        let mut state = init();
        let (mut ia, mut ib) = (0usize, 0usize);
        for lane in &schedule {
            match lane {
                Lane::A => {
                    a[ia](&mut state);
                    ia += 1;
                }
                Lane::B => {
                    b[ib](&mut state);
                    ib += 1;
                }
            }
        }
        out.schedules += 1;
        if let Err(msg) = check(&state) {
            out.failure = Some((schedule.clone(), msg));
            return out;
        }
        // Advance to the next lane sequence: find the last A that can
        // become a B (enough B steps must remain to its right).
        loop {
            // Pop trailing Bs.
            while schedule.last() == Some(&Lane::B) {
                schedule.pop();
            }
            match schedule.pop() {
                None => break 'outer,
                Some(Lane::A) => {
                    let used_b = schedule.iter().filter(|l| **l == Lane::B).count();
                    if used_b < b.len() {
                        schedule.push(Lane::B);
                        break;
                    }
                    // Cannot flip here (no B budget left); keep
                    // backtracking.
                }
                Some(Lane::B) => unreachable!("trailing Bs already popped"),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binom(n: u64, k: u64) -> u64 {
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn schedule_count_is_binomial() {
        // 3 + 2 steps → C(5,3) = 10 schedules.
        let a = steps::<u32, 3>([|s| *s += 1, |s| *s += 1, |s| *s += 1]);
        let b = steps::<u32, 2>([|s| *s *= 2, |s| *s *= 2]);
        let ex = explore_two(|| 0u32, &a, &b, |_| Ok(()));
        assert_eq!(ex.schedules, binom(5, 3));
        ex.assert_ok();
    }

    #[test]
    fn finds_a_lost_update() {
        // Classic read-modify-write race: both threads do
        // `tmp = x; x = tmp + 1` as two separate steps. Some schedule
        // must lose an update (final x == 1).
        #[derive(Default)]
        struct S {
            x: u32,
            tmp_a: u32,
            tmp_b: u32,
        }
        let a = steps::<S, 2>([|s| s.tmp_a = s.x, |s| s.x = s.tmp_a + 1]);
        let b = steps::<S, 2>([|s| s.tmp_b = s.x, |s| s.x = s.tmp_b + 1]);
        let ex = explore_two(S::default, &a, &b, |s| {
            if s.x == 2 {
                Ok(())
            } else {
                Err(format!("lost update: x = {}", s.x))
            }
        });
        let (sched, msg) = ex.failure.expect("race must be found");
        assert!(msg.contains("lost update"));
        assert_eq!(sched.len(), 4);
    }

    #[test]
    fn empty_lane_is_fine() {
        let a = steps::<u32, 2>([|s| *s += 1, |s| *s += 1]);
        let ex = explore_two(
            || 0u32,
            &a,
            &[],
            |s| {
                if *s == 2 {
                    Ok(())
                } else {
                    Err("wrong".into())
                }
            },
        );
        assert_eq!(ex.schedules, 1);
        ex.assert_ok();
    }
}
