//! SARIF 2.1.0 export.
//!
//! `orex analyze --format sarif` renders the report as a Static
//! Analysis Results Interchange Format log so code-scanning UIs
//! (GitHub, VS Code SARIF viewer) can ingest findings without a
//! bespoke adapter. Serialization is hand-rolled like the JSON
//! report — this crate stays dependency-free at runtime; the SARIF
//! *shape* is pinned by a unit test that parses the output with the
//! workspace's vendored JSON parser.
//!
//! Shape notes against the 2.1.0 spec:
//! - one `run`, with every rule (fired or not) in
//!   `tool.driver.rules` so `ruleIndex` is stable across runs;
//! - `results[].level` is always `"error"` — every orex rule is a
//!   blocking gate;
//! - file-level findings (ORX006 budget overruns carry line 0) omit
//!   `region`, which the spec permits; line findings carry
//!   `startLine`/`startColumn` (both 1-based, as in SARIF).

use std::fmt::Write as _;

use crate::diag::{json_escape, Report, Rule};

/// Renders the report as a SARIF 2.1.0 log.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"orex-analyze\",\n");
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        env!("CARGO_PKG_VERSION")
    );
    out.push_str("          \"informationUri\": \"https://example.invalid/orex/analyze\",\n");
    out.push_str("          \"rules\": [\n");
    let rules = Rule::all();
    for (i, r) in rules.iter().enumerate() {
        let _ = write!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"error\"}}}}",
            r.id(),
            json_escape(r.summary()),
            json_escape(r.rationale())
        );
        out.push_str(if i + 1 < rules.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let rule_index = rules
            .iter()
            .position(|r| *r == f.rule)
            .expect("every finding's rule is in Rule::all()");
        let _ = write!(
            out,
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}",
            f.rule.id(),
            rule_index,
            json_escape(&f.message),
            json_escape(&f.file)
        );
        if f.line > 0 {
            let _ = write!(
                out,
                ", \"region\": {{\"startLine\": {}, \"startColumn\": {}}}",
                f.line,
                f.col.max(1)
            );
        }
        out.push_str("}}]}");
        out.push_str(if i + 1 < report.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Finding;

    fn report() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: Rule::Orx009,
                    file: "crates/server/src/http.rs".to_string(),
                    line: 42,
                    col: 7,
                    message: "lock `sessions` held across \"blocking\" call".to_string(),
                },
                Finding {
                    rule: Rule::Orx006,
                    file: "analyze.policy".to_string(),
                    line: 0,
                    col: 0,
                    message: "TODO count 3 exceeds committed budget 0".to_string(),
                },
            ],
            files_scanned: 2,
            ..Report::default()
        }
    }

    /// Pins the SARIF 2.1.0 shape by actually parsing the output:
    /// top-level $schema/version, runs[].tool.driver.rules[], and
    /// results[] with ruleId/ruleIndex/message/locations.
    #[test]
    fn sarif_shape_validates() {
        let sarif = render_sarif(&report());
        let v = serde_json::from_str(&sarif).expect("SARIF output is valid JSON");
        assert_eq!(v.get("version").and_then(|x| x.as_str()), Some("2.1.0"));
        assert!(v
            .get("$schema")
            .and_then(|x| x.as_str())
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let runs = v.get("runs").and_then(|x| x.as_array()).expect("runs[]");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("tool.driver");
        assert_eq!(
            driver.get("name").and_then(|x| x.as_str()),
            Some("orex-analyze")
        );
        let rules = driver
            .get("rules")
            .and_then(|x| x.as_array())
            .expect("driver.rules[]");
        assert_eq!(rules.len(), Rule::all().len());
        for r in rules {
            assert!(r.get("id").and_then(|x| x.as_str()).is_some());
            assert!(r
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .is_some());
            assert!(r
                .get("fullDescription")
                .and_then(|d| d.get("text"))
                .is_some());
        }
        let results = runs[0]
            .get("results")
            .and_then(|x| x.as_array())
            .expect("results[]");
        assert_eq!(results.len(), 2);
        let first = &results[0];
        assert_eq!(first.get("ruleId").and_then(|x| x.as_str()), Some("ORX009"));
        let idx = first.get("ruleIndex").and_then(|x| x.as_u64()).unwrap();
        assert_eq!(
            rules[idx as usize].get("id").and_then(|x| x.as_str()),
            Some("ORX009")
        );
        let loc = first.get("locations").and_then(|x| x.as_array()).unwrap();
        let phys = loc[0].get("physicalLocation").expect("physicalLocation");
        assert_eq!(
            phys.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(|x| x.as_str()),
            Some("crates/server/src/http.rs")
        );
        assert_eq!(
            phys.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(|x| x.as_u64()),
            Some(42)
        );
        // File-level finding: no region, per spec.
        assert!(results[1]
            .get("locations")
            .and_then(|x| x.as_array())
            .and_then(|l| l[0].get("physicalLocation"))
            .is_some_and(|p| p.get("region").is_none()));
    }

    #[test]
    fn empty_report_is_still_valid_sarif() {
        let sarif = render_sarif(&Report::default());
        let v = serde_json::from_str(&sarif).expect("valid JSON");
        let results = v.get("runs").and_then(|x| x.as_array()).unwrap()[0]
            .get("results")
            .and_then(|x| x.as_array())
            .unwrap();
        assert!(results.is_empty());
    }
}
