//! The seven lint rules, run over a [`LexedFile`](crate::lexer::LexedFile).
//!
//! Rules are intentionally token-sequence matchers rather than AST
//! passes: the scanner must stay dependency-free and fast enough to run
//! on every CI push, and every rule here is expressible as "this token
//! pattern, unless annotated". The annotation channel is comments —
//! `// SAFETY:` for ORX001, `// ORDERING:` for ORX003, and the
//! universal waiver `// orex::allow(ORXnnn): reason` that downgrades
//! any finding on its attached line.

use crate::diag::{Census, Finding, Rule};
use crate::lexer::{LexedFile, Token, TokenKind};
use crate::policy::Policy;

/// Per-file scan output.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings in this file (waivers already applied).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by inline waivers.
    pub waived: usize,
    /// This file's debt census contribution.
    pub census: Census,
    /// Lock-acquisition edges observed in this file, as
    /// `(function, first_lock, second_lock, line, col)`.
    pub lock_edges: Vec<LockEdge>,
}

/// One observed "lock A then lock B while A is plausibly held" pair.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Enclosing function name (`?` at module scope).
    pub func: String,
    /// First lock acquired (field/variable name).
    pub first: String,
    /// Second lock acquired.
    pub second: String,
    /// File the edge was seen in.
    pub file: String,
    /// Position of the *second* acquisition.
    pub line: u32,
    /// Column of the second acquisition.
    pub col: u32,
}

/// Scans one lexed file. `path` is workspace-relative with `/`
/// separators; `policy` scopes and waives rules.
pub fn scan_file(path: &str, lexed: &LexedFile, policy: &Policy) -> FileScan {
    let mut scan = FileScan::default();
    let mask = test_mask(&lexed.tokens);

    census(path, lexed, &mask, &mut scan);
    rule_unsafe_safety(path, lexed, &mask, policy, &mut scan);
    rule_panic_paths(path, lexed, &mask, policy, &mut scan);
    rule_atomic_ordering(path, lexed, &mask, policy, &mut scan);
    rule_exit_sleep(path, lexed, &mask, policy, &mut scan);
    rule_print_macros(path, lexed, &mask, policy, &mut scan);
    collect_lock_edges(path, lexed, &mask, &mut scan);

    scan
}

/// Emits `finding` unless an attached `// orex::allow(RULE)` waiver
/// covers it.
fn emit(lexed: &LexedFile, scan: &mut FileScan, finding: Finding) {
    if is_waived(lexed, finding.rule, finding.line) {
        scan.waived += 1;
    } else {
        scan.findings.push(finding);
    }
}

/// True when the comments attached to `line` contain
/// `orex::allow(RULE)` for this rule (any surrounding text allowed, so
/// `// orex::allow(ORX002): reason` reads naturally).
pub fn is_waived(lexed: &LexedFile, rule: Rule, line: u32) -> bool {
    let attached = lexed.attached_comments(line);
    let lower = attached.to_ascii_lowercase();
    let needle = format!("orex::allow({})", rule.id().to_ascii_lowercase());
    lower.contains(&needle)
}

/// Marks every token inside a `#[cfg(test)]`-gated item (or a
/// `mod tests` following such an attribute) as test code. Rules skip
/// test code: panics and sleeps in tests are idiomatic, and the
/// policy's job is production paths.
///
/// Detection: at a `#` token beginning `#[cfg(...)]` whose attribute
/// tokens include the ident `test`, find the next `{` at the same
/// nesting level and mask through its matching `}`. This covers
/// `#[cfg(test)] mod tests { ... }` and `#[cfg(any(test, ...))]`.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Scan the attribute body for `cfg` ... `test`.
            let mut j = i + 2;
            let mut depth = 1i32; // we are inside the `[`
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("cfg") {
                    saw_cfg = true;
                } else if t.is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Mask from here to the end of the annotated item: the
                // next `{`..matching `}` block, or through the next `;`
                // (e.g. `#[cfg(test)] use foo;`).
                let mut k = j;
                while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
                    mask[k] = true;
                    k += 1;
                }
                if k < tokens.len() && tokens[k].is_punct('{') {
                    let mut braces = 0i32;
                    while k < tokens.len() {
                        if tokens[k].is_punct('{') {
                            braces += 1;
                        } else if tokens[k].is_punct('}') {
                            braces -= 1;
                        }
                        mask[k] = true;
                        k += 1;
                        if braces == 0 {
                            break;
                        }
                    }
                } else if k < tokens.len() {
                    mask[k] = true; // the `;`
                }
                for slot in mask.iter_mut().take(j).skip(i) {
                    *slot = true;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// ORX006 raw material: counts TODO/FIXME in comments and `#[allow(`
/// in code. Budget comparison happens at workspace level in
/// [`crate::analyze_workspace`].
fn census(_path: &str, lexed: &LexedFile, mask: &[bool], scan: &mut FileScan) {
    for c in &lexed.comments {
        // A marker is the word immediately followed by `:` or `(owner)`
        // — prose that merely *mentions* the word is not debt.
        scan.census.todo += marker_count(&c.text, "TODO");
        scan.census.fixme += marker_count(&c.text, "FIXME");
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        // `#` `[` `allow` — cfg_attr(.., allow(..)) also matches, which
        // is fine: it is still debt.
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("allow"))
        {
            scan.census.allow_attr += 1;
        }
    }
}

/// Counts occurrences of `word` immediately followed by `:` or `(`.
fn marker_count(text: &str, word: &str) -> usize {
    text.match_indices(word)
        .filter(|(i, _)| matches!(text.as_bytes().get(i + word.len()), Some(b':') | Some(b'(')))
        .count()
}

/// ORX001: every `unsafe` keyword in production code needs an attached
/// `// SAFETY:` comment.
fn rule_unsafe_safety(
    path: &str,
    lexed: &LexedFile,
    mask: &[bool],
    policy: &Policy,
    scan: &mut FileScan,
) {
    if !policy.rule_applies(Rule::Orx001, path) {
        return;
    }
    for (i, t) in lexed.tokens.iter().enumerate() {
        if mask[i] || !t.is_ident("unsafe") {
            continue;
        }
        // `unsafe` in a trait bound / fn-pointer type (`unsafe fn()` as
        // a type) still wants justification, so no special-casing.
        let attached = lexed.attached_comments(t.line);
        if attached.contains("SAFETY:") {
            continue;
        }
        emit(
            lexed,
            scan,
            Finding {
                rule: Rule::Orx001,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: "`unsafe` without an attached `// SAFETY:` comment".to_string(),
            },
        );
    }
}

/// ORX002: `unwrap()` / `expect()` / `panic!` / `unreachable!` /
/// `assert!` family are banned in scoped hot paths (server request
/// handling, telemetry). `unwrap_or_*` are distinct idents and never
/// match.
fn rule_panic_paths(
    path: &str,
    lexed: &LexedFile,
    mask: &[bool],
    policy: &Policy,
    scan: &mut FileScan,
) {
    if !policy.rule_applies(Rule::Orx002, path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        let bad = if t.kind != TokenKind::Ident {
            None
        } else if (t.text == "unwrap" || t.text == "expect")
            && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            Some(format!("`.{}()` can panic in a hot path", t.text))
        } else if (t.text == "panic"
            || t.text == "unreachable"
            || t.text == "todo"
            || t.text == "unimplemented")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            Some(format!("`{}!` aborts the worker thread", t.text))
        } else {
            None
        };
        if let Some(message) = bad {
            emit(
                lexed,
                scan,
                Finding {
                    rule: Rule::Orx002,
                    file: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message,
                },
            );
        }
    }
}

/// ORX003: `Ordering::Relaxed` and `Ordering::SeqCst` both demand an
/// attached `// ORDERING:` justification. Relaxed because it is wrong
/// whenever the atomic publishes data across threads; SeqCst because it
/// usually means "I didn't think about it" and costs a full fence where
/// Acquire/Release would do. Acquire/Release/AcqRel pass silently —
/// they are the deliberate middle ground.
fn rule_atomic_ordering(
    path: &str,
    lexed: &LexedFile,
    mask: &[bool],
    policy: &Policy,
    scan: &mut FileScan,
) {
    if !policy.rule_applies(Rule::Orx003, path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        let which = if t.is_ident("Relaxed") {
            "Relaxed"
        } else if t.is_ident("SeqCst") {
            "SeqCst"
        } else {
            continue;
        };
        // Require the `Ordering::` (or `atomic::Ordering::`) qualifier
        // so a user type named `Relaxed` doesn't trip the rule.
        let qualified = i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("Ordering");
        if !qualified {
            continue;
        }
        if lexed.attached_comments(t.line).contains("ORDERING:") {
            continue;
        }
        let message = match which {
            "Relaxed" => "`Ordering::Relaxed` without an `// ORDERING:` justification — \
                          unsound if this atomic publishes data across threads"
                .to_string(),
            _ => "`Ordering::SeqCst` without an `// ORDERING:` justification — \
                  use Acquire/Release unless a total order is really required"
                .to_string(),
        };
        emit(
            lexed,
            scan,
            Finding {
                rule: Rule::Orx003,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message,
            },
        );
    }
}

/// ORX005: `process::exit` and thread sleeps are banned outside
/// allowlisted crates (cli, bench): a library that exits or sleeps
/// steals control from the server runtime.
fn rule_exit_sleep(
    path: &str,
    lexed: &LexedFile,
    mask: &[bool],
    policy: &Policy,
    scan: &mut FileScan,
) {
    if !policy.rule_applies(Rule::Orx005, path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        let message = if t.is_ident("exit")
            && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(':'))
            && toks
                .get(i.wrapping_sub(3))
                .is_some_and(|p| p.is_ident("process"))
        {
            "`process::exit` outside cli/bench kills in-flight requests"
        } else if t.is_ident("sleep")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct(':'))
            && toks
                .get(i.wrapping_sub(3))
                .is_some_and(|p| p.is_ident("thread"))
        {
            "`thread::sleep` outside cli/bench blocks a worker"
        } else {
            continue;
        };
        emit(
            lexed,
            scan,
            Finding {
                rule: Rule::Orx005,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: message.to_string(),
            },
        );
    }
}

/// ORX007: bare `println!` / `print!` / `eprintln!` / `eprint!` /
/// `dbg!` are banned outside allowlisted crates (cli, bench): library
/// code owns no terminal, and ad-hoc prints bypass the structured
/// logger's levels, filtering, and trace correlation. `writeln!(out, ..)`
/// against a caller-supplied writer is fine and does not match.
fn rule_print_macros(
    path: &str,
    lexed: &LexedFile,
    mask: &[bool],
    policy: &Policy,
    scan: &mut FileScan,
) {
    if !policy.rule_applies(Rule::Orx007, path) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        let is_print = matches!(
            t.text.as_str(),
            "println" | "print" | "eprintln" | "eprint" | "dbg"
        ) && t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if !is_print {
            continue;
        }
        emit(
            lexed,
            scan,
            Finding {
                rule: Rule::Orx007,
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "bare `{}!` outside cli/bench — route output through the structured \
                     logger or a caller-supplied writer",
                    t.text
                ),
            },
        );
    }
}

/// ORX004 raw material: records ordered lock-acquisition pairs per
/// function. A "lock acquisition" is `.lock()`, `.read()` or
/// `.write()` with *empty* argument parens — the empty-parens
/// requirement keeps `io::Read::read(buf)` / `Write::write(buf)` from
/// matching. The lock's name is the identifier before the call chain's
/// final `.` (usually the field: `self.sessions.lock()` → `sessions`).
///
/// Within one function, every earlier acquisition is paired with every
/// later one. That over-approximates "held simultaneously" (guards may
/// be dropped), which is the right bias for a deadlock audit: a false
/// pair is a review prompt, a missed pair is a 3 a.m. page.
fn collect_lock_edges(path: &str, lexed: &LexedFile, mask: &[bool], scan: &mut FileScan) {
    let toks = &lexed.tokens;
    let mut func = String::from("?");
    let mut held: Vec<String> = Vec::new();
    let mut fn_depth: Option<i32> = None;
    let mut depth = 0i32;

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if let Some(d) = fn_depth {
                if depth < d {
                    fn_depth = None;
                    func = String::from("?");
                    held.clear();
                }
            }
        }
        if mask[i] {
            continue;
        }
        if t.is_ident("fn") {
            if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                func = name.text.clone();
                held.clear();
                fn_depth = Some(depth + 1);
            }
            continue;
        }
        let is_acq = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
            && toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if !is_acq {
            continue;
        }
        // Walk back through the receiver chain to the last plain ident:
        // `self.inner.sessions.lock()` → `sessions`.
        let mut j = i.wrapping_sub(2); // skip the `.`
        let name = match toks.get(j) {
            Some(tok) if tok.kind == TokenKind::Ident => tok.text.clone(),
            Some(tok) if tok.is_punct(')') => {
                // e.g. `table().lock()` — use the fn name before `(`.
                let mut k = j;
                let mut par = 0i32;
                loop {
                    match toks.get(k) {
                        Some(tk) if tk.is_punct(')') => par += 1,
                        Some(tk) if tk.is_punct('(') => {
                            par -= 1;
                            if par == 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break,
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                j = k.wrapping_sub(1);
                match toks.get(j) {
                    Some(tk) if tk.kind == TokenKind::Ident => tk.text.clone(),
                    _ => continue,
                }
            }
            _ => continue,
        };
        for first in &held {
            if *first != name {
                scan.lock_edges.push(LockEdge {
                    func: func.clone(),
                    first: first.clone(),
                    second: name.clone(),
                    file: path.to_string(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
        if !held.contains(&name) {
            held.push(name);
        }
    }
}

/// ORX004 workspace pass: flags every pair of locks acquired in both
/// orders anywhere in the scanned tree. Waivers attach at the site of
/// the *second* acquisition of the edge being reported.
pub fn lock_cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        for other in &edges[i + 1..] {
            if e.first == other.second && e.second == other.first {
                findings.push(Finding {
                    rule: Rule::Orx004,
                    file: e.file.clone(),
                    line: e.line,
                    col: e.col,
                    message: format!(
                        "lock order inversion: `{}` then `{}` here (fn {}), but `{}` then `{}` \
                         in {}:{} (fn {}) — potential deadlock",
                        e.first,
                        e.second,
                        e.func,
                        other.first,
                        other.second,
                        other.file,
                        other.line,
                        other.func
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> FileScan {
        scan_file("crates/x/src/lib.rs", &lex(src), &Policy::default())
    }

    #[test]
    fn orx001_unsafe_needs_safety() {
        let s = scan("fn f() { unsafe { g() } }");
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].rule, Rule::Orx001);

        let ok = scan("fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}");
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn orx002_unwrap_and_panic() {
        let s = scan("fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { panic!(\"boom\") }");
        let rules: Vec<_> = s.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![Rule::Orx002, Rule::Orx002]);

        // unwrap_or_else is a different ident; field named unwrap is not
        // a call.
        let ok = scan("fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }");
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn orx002_waiver() {
        let s = scan(
            "fn f(x: Option<u32>) -> u32 {\n    // orex::allow(ORX002): startup path, cannot fail\n    x.unwrap()\n}",
        );
        assert!(s.findings.is_empty());
        assert_eq!(s.waived, 1);
    }

    #[test]
    fn orx003_orderings() {
        let s = scan(
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); a.store(1, Ordering::SeqCst); }",
        );
        assert_eq!(s.findings.len(), 2);
        let ok = scan(
            "fn f(a: &AtomicU64) {\n    // ORDERING: counter, no data published\n    a.load(Ordering::Relaxed);\n    a.store(1, Ordering::Release);\n}",
        );
        assert!(ok.findings.is_empty());
        // Unqualified `Relaxed` (pattern match, user enum) is ignored.
        let pat = scan("fn f(m: Mode) { if let Mode::Relaxed = m {} }");
        assert!(pat.findings.is_empty());
    }

    #[test]
    fn orx005_exit_and_sleep() {
        let s = scan("fn f() { std::process::exit(1); }\nfn g() { std::thread::sleep(d); }");
        assert_eq!(s.findings.len(), 2);
        assert!(s.findings.iter().all(|f| f.rule == Rule::Orx005));
        // Read::read(buf) style calls don't match ORX004's collector or
        // anything here.
        let ok = scan("fn f(mut r: impl Read) { r.read(&mut buf); }");
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn orx007_print_macros() {
        let s = scan(
            "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); print!(\"z\"); eprint!(\"w\"); }",
        );
        assert_eq!(s.findings.len(), 5);
        assert!(s.findings.iter().all(|f| f.rule == Rule::Orx007));

        // writeln!/write! against a caller-supplied writer are fine, as
        // is an ordinary function named `print` (no `!`).
        let ok = scan("fn f(out: &mut dyn Write) { writeln!(out, \"x\"); self.print(); }");
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn orx007_waiver_and_test_code() {
        let s = scan("fn f() {\n    // orex::allow(ORX007): REPL banner\n    println!(\"hi\");\n}");
        assert!(s.findings.is_empty());
        assert_eq!(s.waived, 1);
        let t = scan("#[cfg(test)]\nmod tests {\n    fn t() { println!(\"debug\"); }\n}");
        assert!(t.findings.is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let s = scan(
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); std::thread::sleep(d); }\n}",
        );
        assert!(s.findings.is_empty());
    }

    #[test]
    fn lock_edges_and_cycles() {
        let a = scan("fn f(&self) { let g = self.cache.lock(); let h = self.sessions.lock(); }");
        assert_eq!(a.lock_edges.len(), 1);
        assert_eq!(a.lock_edges[0].first, "cache");
        assert_eq!(a.lock_edges[0].second, "sessions");

        let b = scan("fn g(&self) { let h = self.sessions.lock(); let g = self.cache.lock(); }");
        let mut edges = a.lock_edges.clone();
        edges.extend(b.lock_edges.clone());
        let cycles = lock_cycle_findings(&edges);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("lock order inversion"));

        // Same order twice: no cycle.
        let c = lock_cycle_findings(&a.lock_edges);
        assert!(c.is_empty());
    }

    #[test]
    fn lock_collector_ignores_io_read_write() {
        let s = scan("fn f(mut r: TcpStream) { r.read(&mut buf); r.write(&buf); }");
        assert!(s.lock_edges.is_empty());
        let s2 = scan("fn f(l: &RwLock<u32>) { let a = l.read(); drop(a); let b = l.write(); }");
        // Same lock twice → no edge (self-edges are not deadlocks in
        // this model; re-entrancy is a different bug class).
        assert!(s2.lock_edges.is_empty());
    }

    #[test]
    fn census_counts() {
        let s = scan(
            "// TODO: one\n/* FIXME: two */\n#[allow(dead_code)]\nfn f() {}\nfn g() { let s = \"TODO not counted\"; }",
        );
        assert_eq!(s.census.todo, 1);
        assert_eq!(s.census.fixme, 1);
        assert_eq!(s.census.allow_attr, 1);
    }
}
