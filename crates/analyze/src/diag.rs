//! Findings and diagnostic rendering.
//!
//! Output mimics rustc's `error[E0308]: ...` / `  --> file:line:col`
//! shape so editors and humans already know how to read it, and a
//! hand-rolled JSON serializer produces the machine-readable report the
//! CI `analyze` job archives. (Hand-rolled because this crate is
//! deliberately dependency-free — it must gate the workspace, so it
//! cannot depend on it.)

use std::fmt::Write as _;

/// The ten project lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unsafe` without an attached `// SAFETY:` comment.
    Orx001,
    /// `unwrap()` / `expect()` / `panic!` in a scoped hot path.
    Orx002,
    /// Atomic-ordering audit: unjustified `Relaxed` or `SeqCst`.
    Orx003,
    /// Inconsistent two-lock acquisition order (deadlock potential).
    Orx004,
    /// `std::process::exit` / thread sleep outside allowlisted crates.
    Orx005,
    /// Debt census over budget (`TODO` / `FIXME` / `#[allow]`).
    Orx006,
    /// Bare `println!`-family / `dbg!` output outside allowlisted crates.
    Orx007,
    /// A scoped hot path transitively reaches a panic site (call graph).
    Orx008,
    /// A lock guard is held across a blocking call (interprocedural).
    Orx009,
    /// A request-derived length reaches an allocation without a clamp.
    Orx010,
}

impl Rule {
    /// Stable rule ID, e.g. `ORX001`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Orx001 => "ORX001",
            Rule::Orx002 => "ORX002",
            Rule::Orx003 => "ORX003",
            Rule::Orx004 => "ORX004",
            Rule::Orx005 => "ORX005",
            Rule::Orx006 => "ORX006",
            Rule::Orx007 => "ORX007",
            Rule::Orx008 => "ORX008",
            Rule::Orx009 => "ORX009",
            Rule::Orx010 => "ORX010",
        }
    }

    /// One-line description used in help output and the JSON report.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::Orx001 => "unsafe code must carry an attached `// SAFETY:` comment",
            Rule::Orx002 => "no unwrap()/expect()/panic! in server/telemetry hot paths",
            Rule::Orx003 => "atomic Relaxed/SeqCst orderings need `// ORDERING:` justification",
            Rule::Orx004 => "lock pairs must be acquired in a consistent order",
            Rule::Orx005 => "no process::exit or thread sleep outside cli/bench",
            Rule::Orx006 => "debt census (TODO/FIXME/#[allow]) exceeds committed budget",
            Rule::Orx007 => {
                "no bare println!/eprintln!/dbg! outside cli/bench — use the structured logger"
            }
            Rule::Orx008 => {
                "hot-path functions must not transitively reach a panic site (call graph)"
            }
            Rule::Orx009 => "no lock guard may be held across a blocking call or sleep",
            Rule::Orx010 => {
                "request-derived lengths must be bounds-clamped before sizing an allocation"
            }
        }
    }

    /// Parses `ORX001`-style IDs (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.to_ascii_uppercase().as_str() {
            "ORX001" => Some(Rule::Orx001),
            "ORX002" => Some(Rule::Orx002),
            "ORX003" => Some(Rule::Orx003),
            "ORX004" => Some(Rule::Orx004),
            "ORX005" => Some(Rule::Orx005),
            "ORX006" => Some(Rule::Orx006),
            "ORX007" => Some(Rule::Orx007),
            "ORX008" => Some(Rule::Orx008),
            "ORX009" => Some(Rule::Orx009),
            "ORX010" => Some(Rule::Orx010),
            _ => None,
        }
    }

    /// All rules, for report summaries.
    pub fn all() -> [Rule; 10] {
        [
            Rule::Orx001,
            Rule::Orx002,
            Rule::Orx003,
            Rule::Orx004,
            Rule::Orx005,
            Rule::Orx006,
            Rule::Orx007,
            Rule::Orx008,
            Rule::Orx009,
            Rule::Orx010,
        ]
    }

    /// Why the rule exists — the paragraph `orex analyze --explain`
    /// prints and the README table links to. One source of truth.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::Orx001 => {
                "Every unsafe block is a proof obligation. The attached SAFETY comment is \
                 where the proof lives; without it, review cannot distinguish a sound block \
                 from a latent miscompilation."
            }
            Rule::Orx002 => {
                "A panic in a request-serving thread tears down that connection and, under \
                 some supervisors, the process. Scoped hot paths must return errors instead."
            }
            Rule::Orx003 => {
                "Relaxed is correct only under an argued happens-before story and SeqCst is \
                 usually a smell; both need an ORDERING comment explaining the choice."
            }
            Rule::Orx004 => {
                "Two locks taken in opposite orders on two threads deadlock. The analyzer \
                 builds the acquisition-order graph (intra- and inter-procedurally) and flags \
                 any pair observed in both orders."
            }
            Rule::Orx005 => {
                "process::exit skips destructors and sleeps hide scheduling bugs; both are \
                 confined to the cli/bench binaries where a human is in the loop."
            }
            Rule::Orx006 => {
                "Debt markers are fine; unbounded debt is not. The census is compared to the \
                 budget committed in analyze.policy so growth is a deliberate, reviewed act."
            }
            Rule::Orx007 => {
                "Bare prints bypass the structured logger, lose severity/fields, and corrupt \
                 machine-read stdout protocols. Library crates log through orex-telemetry."
            }
            Rule::Orx008 => {
                "ORX002 catches panics written *in* a hot path; ORX008 walks the workspace \
                 call graph and catches the panic three calls away. A scoped function fails \
                 if any workspace function it transitively reaches contains an unwaived \
                 panic site outside the ORX002 scope; the diagnostic prints the call chain. \
                 Calls through trait objects and function pointers are not resolved \
                 (conservative: unresolved calls are assumed panic-free), and macro bodies \
                 other than the panic family are not expanded."
            }
            Rule::Orx009 => {
                "A thread that parks while holding a Mutex/RwLock guard stalls every other \
                 thread needing that lock — the classic tail-latency cliff. The analyzer \
                 tracks guard regions (let-bound guards to end of block or drop(); \
                 temporaries to end of statement) and flags socket I/O, accept, \
                 Condvar::wait, channel recv, join, and sleeps inside them, including \
                 through calls: a function that blocks taints every caller that holds a \
                 lock across the call."
            }
            Rule::Orx010 => {
                "A length parsed from request bytes that reaches Vec::with_capacity, \
                 reserve, resize, or vec![_; n] un-clamped lets a one-line request allocate \
                 gigabytes. Taint starts at .parse()/from_str_radix bindings, flows through \
                 let chains and call arguments into parameter sinks, and is cleared by a \
                 comparison guard or .min()/.clamp()/saturating_sub."
            }
        }
    }

    /// A minimal example that fires the rule, for `--explain`.
    pub fn example(self) -> &'static str {
        match self {
            Rule::Orx001 => "unsafe { ptr.read() }                // no SAFETY comment",
            Rule::Orx002 => "let v = table.get(k).unwrap();       // in a scoped file",
            Rule::Orx003 => "flag.store(true, Ordering::Relaxed); // no ORDERING comment",
            Rule::Orx004 => "A: a.lock(); b.lock();   B: b.lock(); a.lock();",
            Rule::Orx005 => "std::process::exit(1);               // in a library crate",
            Rule::Orx006 => "// TODO: one marker over the committed budget",
            Rule::Orx007 => "println!(\"served {n}\");              // in a library crate",
            Rule::Orx008 => {
                "fn handle() { score(); }  fn score() { cfg().unwrap(); }  // handle is scoped"
            }
            Rule::Orx009 => {
                "let g = self.sessions.lock();\nstream.write_all(&frame)?;  // guard live across I/O"
            }
            Rule::Orx010 => {
                "let n: usize = header.parse().unwrap_or(0);\nlet mut buf = Vec::with_capacity(n);"
            }
        }
    }

    /// How to waive one finding of this rule, for `--explain`.
    pub fn waiver_help(self) -> String {
        format!(
            "// orex::allow({}): <reason>   — attached to (or the line above) the \
             flagged line; the reason is mandatory and shows up in review",
            self.id()
        )
    }

    /// Renders the rule table embedded in the README ("Static analysis &
    /// correctness gates"). A unit test asserts the README contains this
    /// rendering verbatim, so docs cannot drift from the code.
    pub fn docs_table() -> String {
        let mut out = String::new();
        out.push_str("| ID | Check |\n|--------|-------|\n");
        for r in Rule::all() {
            let _ = writeln!(out, "| {} | {} |", r.id(), r.summary());
        }
        out
    }
}

/// One violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line (0 for file-level findings such as budget overruns).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
}

/// The full result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Debt census counts (always reported, even under budget).
    pub census: Census,
    /// Waivers that were honoured, for visibility in the JSON report.
    pub waived: usize,
}

/// Debt census totals across the scanned tree.
#[derive(Debug, Default, Clone, Copy)]
pub struct Census {
    /// `TODO` markers in comments.
    pub todo: usize,
    /// `FIXME` markers in comments.
    pub fixme: usize,
    /// `#[allow(...)]` attributes in code.
    pub allow_attr: usize,
}

impl Report {
    /// Sorts findings into deterministic display order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }

    /// rustc-style human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "error[{}]: {}", f.rule.id(), f.message);
            if f.line > 0 {
                let _ = writeln!(out, "  --> {}:{}:{}", f.file, f.line, f.col);
            } else {
                let _ = writeln!(out, "  --> {}", f.file);
            }
            let _ = writeln!(out, "  = note: {}", f.rule.summary());
        }
        let _ = writeln!(
            out,
            "orex-analyze: {} file(s) scanned, {} finding(s), {} waiver(s) honoured",
            self.files_scanned,
            self.findings.len(),
            self.waived
        );
        let _ = writeln!(
            out,
            "debt census: {} TODO, {} FIXME, {} #[allow]",
            self.census.todo, self.census.fixme, self.census.allow_attr
        );
        out
    }

    /// Machine-readable JSON rendering for the CI artifact.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"waived\": {},", self.waived);
        let _ = writeln!(
            out,
            "  \"census\": {{\"todo\": {}, \"fixme\": {}, \"allow_attr\": {}}},",
            self.census.todo, self.census.fixme, self.census.allow_attr
        );
        // Per-rule counts make CI dashboards trivial.
        out.push_str("  \"counts\": {");
        for (i, r) in Rule::all().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let n = self.findings.iter().filter(|f| f.rule == *r).count();
            let _ = write!(out, "\"{}\": {}", r.id(), n);
        }
        out.push_str("},\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                f.rule.id(),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message)
            );
            out.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"ok\": {}", self.findings.is_empty());
        out.push_str("}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_rule_table_matches_docs_table() {
        // The README's ORX rule table is a rendered copy of
        // Rule::docs_table() between HTML marker comments; this test
        // is what the markers promise. Update the README by pasting
        // the generated table when a rule is added or reworded.
        let readme = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md"),
        )
        .expect("README.md at the workspace root");
        let begin = readme
            .find("BEGIN ORX RULE TABLE")
            .expect("BEGIN marker present");
        let start = readme[begin..].find("| ID |").expect("table header") + begin;
        let end = readme
            .find("<!-- END ORX RULE TABLE -->")
            .expect("END marker");
        let in_readme = readme[start..end].trim_end();
        assert_eq!(
            in_readme,
            Rule::docs_table().trim_end(),
            "README rule table drifted from Rule::docs_table() — regenerate it"
        );
    }

    fn finding(rule: Rule, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col: 5,
            message: "msg".to_string(),
        }
    }

    #[test]
    fn text_rendering_is_rustc_shaped() {
        let mut r = Report {
            findings: vec![finding(Rule::Orx002, "crates/server/src/server.rs", 42)],
            files_scanned: 3,
            ..Report::default()
        };
        r.sort();
        let text = r.render_text();
        assert!(text.contains("error[ORX002]:"));
        assert!(text.contains("--> crates/server/src/server.rs:42:5"));
    }

    #[test]
    fn json_report_counts_and_escapes() {
        let r = Report {
            findings: vec![Finding {
                rule: Rule::Orx001,
                file: "a.rs".to_string(),
                line: 1,
                col: 1,
                message: "needs \"SAFETY\"\ncomment".to_string(),
            }],
            files_scanned: 1,
            ..Report::default()
        };
        let json = r.render_json();
        assert!(json.contains("\"ORX001\": 1"));
        assert!(json.contains("\\\"SAFETY\\\"\\ncomment"));
        assert!(json.contains("\"ok\": false"));
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::all() {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("ORX999"), None);
    }
}
