//! Findings and diagnostic rendering.
//!
//! Output mimics rustc's `error[E0308]: ...` / `  --> file:line:col`
//! shape so editors and humans already know how to read it, and a
//! hand-rolled JSON serializer produces the machine-readable report the
//! CI `analyze` job archives. (Hand-rolled because this crate is
//! deliberately dependency-free — it must gate the workspace, so it
//! cannot depend on it.)

use std::fmt::Write as _;

/// The seven project lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unsafe` without an attached `// SAFETY:` comment.
    Orx001,
    /// `unwrap()` / `expect()` / `panic!` in a scoped hot path.
    Orx002,
    /// Atomic-ordering audit: unjustified `Relaxed` or `SeqCst`.
    Orx003,
    /// Inconsistent two-lock acquisition order (deadlock potential).
    Orx004,
    /// `std::process::exit` / thread sleep outside allowlisted crates.
    Orx005,
    /// Debt census over budget (`TODO` / `FIXME` / `#[allow]`).
    Orx006,
    /// Bare `println!`-family / `dbg!` output outside allowlisted crates.
    Orx007,
}

impl Rule {
    /// Stable rule ID, e.g. `ORX001`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Orx001 => "ORX001",
            Rule::Orx002 => "ORX002",
            Rule::Orx003 => "ORX003",
            Rule::Orx004 => "ORX004",
            Rule::Orx005 => "ORX005",
            Rule::Orx006 => "ORX006",
            Rule::Orx007 => "ORX007",
        }
    }

    /// One-line description used in help output and the JSON report.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::Orx001 => "unsafe code must carry an attached `// SAFETY:` comment",
            Rule::Orx002 => "no unwrap()/expect()/panic! in server/telemetry hot paths",
            Rule::Orx003 => "atomic Relaxed/SeqCst orderings need `// ORDERING:` justification",
            Rule::Orx004 => "lock pairs must be acquired in a consistent order",
            Rule::Orx005 => "no process::exit or thread sleep outside cli/bench",
            Rule::Orx006 => "debt census (TODO/FIXME/#[allow]) exceeds committed budget",
            Rule::Orx007 => {
                "no bare println!/eprintln!/dbg! outside cli/bench — use the structured logger"
            }
        }
    }

    /// Parses `ORX001`-style IDs (case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.to_ascii_uppercase().as_str() {
            "ORX001" => Some(Rule::Orx001),
            "ORX002" => Some(Rule::Orx002),
            "ORX003" => Some(Rule::Orx003),
            "ORX004" => Some(Rule::Orx004),
            "ORX005" => Some(Rule::Orx005),
            "ORX006" => Some(Rule::Orx006),
            "ORX007" => Some(Rule::Orx007),
            _ => None,
        }
    }

    /// All rules, for report summaries.
    pub fn all() -> [Rule; 7] {
        [
            Rule::Orx001,
            Rule::Orx002,
            Rule::Orx003,
            Rule::Orx004,
            Rule::Orx005,
            Rule::Orx006,
            Rule::Orx007,
        ]
    }
}

/// One violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line (0 for file-level findings such as budget overruns).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
}

/// The full result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Debt census counts (always reported, even under budget).
    pub census: Census,
    /// Waivers that were honoured, for visibility in the JSON report.
    pub waived: usize,
}

/// Debt census totals across the scanned tree.
#[derive(Debug, Default, Clone, Copy)]
pub struct Census {
    /// `TODO` markers in comments.
    pub todo: usize,
    /// `FIXME` markers in comments.
    pub fixme: usize,
    /// `#[allow(...)]` attributes in code.
    pub allow_attr: usize,
}

impl Report {
    /// Sorts findings into deterministic display order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }

    /// rustc-style human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "error[{}]: {}", f.rule.id(), f.message);
            if f.line > 0 {
                let _ = writeln!(out, "  --> {}:{}:{}", f.file, f.line, f.col);
            } else {
                let _ = writeln!(out, "  --> {}", f.file);
            }
            let _ = writeln!(out, "  = note: {}", f.rule.summary());
        }
        let _ = writeln!(
            out,
            "orex-analyze: {} file(s) scanned, {} finding(s), {} waiver(s) honoured",
            self.files_scanned,
            self.findings.len(),
            self.waived
        );
        let _ = writeln!(
            out,
            "debt census: {} TODO, {} FIXME, {} #[allow]",
            self.census.todo, self.census.fixme, self.census.allow_attr
        );
        out
    }

    /// Machine-readable JSON rendering for the CI artifact.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"waived\": {},", self.waived);
        let _ = writeln!(
            out,
            "  \"census\": {{\"todo\": {}, \"fixme\": {}, \"allow_attr\": {}}},",
            self.census.todo, self.census.fixme, self.census.allow_attr
        );
        // Per-rule counts make CI dashboards trivial.
        out.push_str("  \"counts\": {");
        for (i, r) in Rule::all().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let n = self.findings.iter().filter(|f| f.rule == *r).count();
            let _ = write!(out, "\"{}\": {}", r.id(), n);
        }
        out.push_str("},\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                f.rule.id(),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message)
            );
            out.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"ok\": {}", self.findings.is_empty());
        out.push_str("}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col: 5,
            message: "msg".to_string(),
        }
    }

    #[test]
    fn text_rendering_is_rustc_shaped() {
        let mut r = Report {
            findings: vec![finding(Rule::Orx002, "crates/server/src/server.rs", 42)],
            files_scanned: 3,
            ..Report::default()
        };
        r.sort();
        let text = r.render_text();
        assert!(text.contains("error[ORX002]:"));
        assert!(text.contains("--> crates/server/src/server.rs:42:5"));
    }

    #[test]
    fn json_report_counts_and_escapes() {
        let r = Report {
            findings: vec![Finding {
                rule: Rule::Orx001,
                file: "a.rs".to_string(),
                line: 1,
                col: 1,
                message: "needs \"SAFETY\"\ncomment".to_string(),
            }],
            files_scanned: 1,
            ..Report::default()
        };
        let json = r.render_json();
        assert!(json.contains("\"ORX001\": 1"));
        assert!(json.contains("\\\"SAFETY\\\"\\ncomment"));
        assert!(json.contains("\"ok\": false"));
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::all() {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("ORX999"), None);
    }
}
