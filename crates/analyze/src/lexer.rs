//! A minimal token-level Rust lexer.
//!
//! The lint rules in [`crate::rules`] need exactly four things a regex
//! cannot deliver reliably: (1) code tokens with comments and string
//! literals stripped out — so `"call unwrap()"` in a message string is
//! not a finding; (2) comments *retained* with positions — so
//! `// SAFETY:` / `// ORDERING:` justifications and
//! `// orex::allow(...)` waivers attach to the code they annotate;
//! (3) line/column spans for rustc-style diagnostics; and (4) enough
//! raw-string/char/lifetime disambiguation not to mis-lex real code.
//!
//! It is not a full Rust lexer: numeric literal suffixes, shebangs and
//! exotic punctuation are handled coarsely, which is fine because the
//! rules only ever match identifier/punct sequences.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String, char, byte or numeric literal (content not preserved for
    /// strings — rules must never match inside literals).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One code token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Token text (for [`TokenKind::Literal`] strings this is the
    /// placeholder `"\"…\""`, never the content).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in bytes).
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block) with the line range it covers.
#[derive(Clone, Debug)]
pub struct Comment {
    /// First line of the comment, 1-based.
    pub line: u32,
    /// Last line (same as `line` for `//` comments).
    pub end_line: u32,
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
}

/// A lexed source file: code tokens plus retained comments.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// Concatenated text of every comment that covers `line`.
    pub fn comments_on(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.line <= line && line <= c.end_line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }

    /// True when `line` carries at least one comment.
    pub fn has_comment(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line)
    }

    /// True when `line` carries at least one code token.
    pub fn has_code(&self, line: u32) -> bool {
        // Tokens are in line order, so a binary search would do; files
        // are small enough that a scan keeps this trivially correct.
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The comment text "attached" to `line`: comments on the line
    /// itself plus the contiguous run of comment-only lines immediately
    /// above it. This is the attachment rule shared by `// SAFETY:`,
    /// `// ORDERING:` and `// orex::allow(...)` annotations.
    pub fn attached_comments(&self, line: u32) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.has_comment(l) && !self.has_code(l) {
            parts.push(self.comments_on(l));
            l -= 1;
        }
        parts.reverse();
        parts.push(self.comments_on(line));
        parts.concat()
    }
}

/// Lexes `source` into tokens and comments. Never fails: unexpected
/// bytes are skipped, because a scanner that dies on one odd file
/// cannot gate a workspace.
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

/// True for bytes that can begin an identifier.
fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: LexedFile,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: LexedFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn run(mut self) -> LexedFile {
        while self.pos < self.src.len() {
            let (line, col) = (self.line, self.col);
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(line),
                b'/' if self.peek(1) == b'*' => self.block_comment(line),
                b'"' => self.string_literal(line, col),
                b'r' if self.peek(1) == b'"' || (self.peek(1) == b'#' && self.raw_ahead(1)) => {
                    self.bump(); // 'r'
                    self.raw_string(line, col);
                }
                // Raw identifier `r#ident`: one Ident token carrying the
                // bare name (matching Rust semantics, where `x.r#unwrap()`
                // calls the method named `unwrap`). Without this the `r`,
                // `#` and name arrived as three tokens — the stray `#`
                // desynchronized attribute masking and a raw keyword like
                // `r#fn` minted a phantom `fn` keyword token.
                b'r' if self.raw_ident_ahead() => {
                    self.bump(); // 'r'
                    self.bump(); // '#'
                    self.ident(line, col);
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump(); // 'b'
                    self.string_literal(line, col);
                }
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.raw_ahead(2)) => {
                    self.bump(); // 'b'
                    self.bump(); // 'r'
                    self.raw_string(line, col);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump(); // 'b'
                    self.char_literal(line, col);
                }
                b'\'' => self.quote(line, col),
                b'0'..=b'9' => self.number(line, col),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, (b as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    /// True when `r#` at offset `at` begins a raw *identifier* rather
    /// than a raw string — i.e. the byte after the single `#` starts an
    /// identifier. (`r##` can only open a raw string; raw identifiers
    /// take exactly one `#`.)
    fn raw_ident_ahead(&self) -> bool {
        self.peek(1) == b'#' && is_ident_start(self.peek(2))
    }

    /// True when `r` at offset `at` starts a raw string (`r#...#"`).
    fn raw_ahead(&self, at: usize) -> bool {
        let mut i = at;
        while self.peek(i) == b'#' {
            i += 1;
        }
        i > at && self.peek(i) == b'"'
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening '"'
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump(); // escaped char (covers \" and \\)
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, "\"…\"".to_string(), line, col);
    }

    /// Raw string body, positioned just past the leading `r` (and `b`).
    fn raw_string(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening '"'
        'outer: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, "\"…\"".to_string(), line, col);
    }

    fn char_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening '\''
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, "'…'".to_string(), line, col);
    }

    /// A `'` is either a char literal or a lifetime. `'a` (ident char
    /// after the quote, no closing quote right after the ident run) is a
    /// lifetime; everything else is a char literal.
    fn quote(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        if next == b'_' || next.is_ascii_alphabetic() {
            let mut i = 2;
            while self.peek(i) == b'_' || self.peek(i).is_ascii_alphanumeric() {
                i += 1;
            }
            if self.peek(i) != b'\'' {
                // Lifetime.
                self.bump(); // '\''
                let start = self.pos;
                while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                    self.bump();
                }
                let text = format!("'{}", String::from_utf8_lossy(&self.src[start..self.pos]));
                self.push(TokenKind::Lifetime, text, line, col);
                return;
            }
        }
        self.char_literal(line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')
            || (self.peek(0) == b'.' && self.peek(1).is_ascii_digit())
        {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Literal, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while matches!(self.peek(0), b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let f = lex("let x = \"call unwrap() here\"; // unwrap() too\nx.unwrap();");
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "x", "unwrap"]);
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("unwrap() too"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = lex(r####"let s = r#"a "quoted" unwrap()"#; s.len();"####);
        assert!(f.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(f.tokens.iter().any(|t| t.is_ident("len")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = lex("/* outer /* inner */\nstill comment */\ncode();");
        assert_eq!(f.comments.len(), 1);
        assert_eq!(f.comments[0].line, 1);
        assert_eq!(f.comments[0].end_line, 2);
        assert!(f.tokens.iter().any(|t| t.is_ident("code")));
        assert_eq!(
            f.tokens.iter().find(|t| t.is_ident("code")).map(|t| t.line),
            Some(3)
        );
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        // `r#type` must arrive as the one identifier `type`, not as
        // `r` + `#` + `type` — a stray `#` desynchronizes attribute
        // masking and a phantom `fn` keyword desyncs fn-item parsing.
        let f = lex("let r#type = 1; fn r#try() {} x.r#unwrap();");
        let idents: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "type", "fn", "try", "x", "unwrap"]);
        assert!(!f.tokens.iter().any(|t| t.is_punct('#')));
    }

    #[test]
    fn raw_ident_does_not_shadow_raw_string() {
        // `r#"..."#` still lexes as a raw string, not a raw identifier.
        let f = lex(r####"let s = r#"text"#; let t = r#ident;"####);
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
        assert!(f.tokens.iter().any(|t| t.is_ident("ident")));
    }

    #[test]
    fn pathological_raw_strings_do_not_desync() {
        // A one-hash raw string closes at the first `"#`, exactly like
        // rustc — everything after is live code again.
        let f = lex(r####"let s = r#"has "quotes" and \ backslash"#; s.unwrap();"####);
        assert_eq!(f.tokens.iter().filter(|t| t.is_ident("unwrap")).count(), 1);
        // `"#` inside a two-hash raw string does NOT close it.
        let f = lex(r####"let s = r##"inner "# stays"##; done();"####);
        assert!(f.tokens.iter().any(|t| t.is_ident("done")));
        assert!(f.tokens.iter().all(|t| !t.is_ident("inner")));
        // Hash content adjacent to the closing quote.
        let f = lex(r####"let s = r#"#"#; after();"####);
        assert!(f.tokens.iter().any(|t| t.is_ident("after")));
        // Byte raw strings with hashes.
        let f = lex(r####"let b = br##"bytes "# here"##; tail();"####);
        assert!(f.tokens.iter().any(|t| t.is_ident("tail")));
        assert!(f.tokens.iter().all(|t| !t.is_ident("bytes")));
    }

    #[test]
    fn pathological_block_comments_do_not_desync() {
        // Deep nesting with decoy terminators.
        let f = lex("/* a /* b /* c */ d */ e */ live();");
        assert_eq!(f.comments.len(), 1);
        assert!(f.tokens.iter().any(|t| t.is_ident("live")));
        // `/*/` is an opener plus `/`, never a self-closing comment.
        let f = lex("/*/ x */ after(); /* /*/ */ */ tail();");
        assert!(f.tokens.iter().any(|t| t.is_ident("after")));
        assert!(f.tokens.iter().any(|t| t.is_ident("tail")));
        // Comment markers inside strings are content, not comments.
        let f = lex("let a = \"/*\"; a.unwrap(); let b = \"*/\";");
        assert!(f.comments.is_empty());
        assert_eq!(f.tokens.iter().filter(|t| t.is_ident("unwrap")).count(), 1);
        // An unterminated nested comment consumes the rest of the file
        // (rustc rejects such a file; the scanner must not panic or
        // mint phantom tokens from its tail).
        let f = lex("/* open /* still open */ x.unwrap();");
        assert!(f.tokens.is_empty());
        assert_eq!(f.comments.len(), 1);
    }

    #[test]
    fn positions_are_one_based() {
        let f = lex("a\n  b");
        assert_eq!((f.tokens[0].line, f.tokens[0].col), (1, 1));
        assert_eq!((f.tokens[1].line, f.tokens[1].col), (2, 3));
    }

    #[test]
    fn attached_comments_walk_contiguous_block() {
        let src = "\
// SAFETY: first line
// second line
let x = unsafe { y };
let z = 1; // ORDERING: trailing
let w = 2;
";
        let f = lex(src);
        let attached = f.attached_comments(3);
        assert!(attached.contains("SAFETY: first line"));
        assert!(attached.contains("second line"));
        assert!(f.attached_comments(4).contains("ORDERING: trailing"));
        assert!(!f.attached_comments(5).contains("ORDERING"));
    }
}
