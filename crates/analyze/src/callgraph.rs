//! Whole-workspace call graph and the interprocedural rules.
//!
//! Consumes the per-file [`FileFacts`](crate::summary::FileFacts)
//! produced by [`crate::summary`] and joins them: name-resolved call
//! edges, then three fixpoints (panic reachability, blocking
//! reachability, transitive lock sets, parameter-taint sensitivity)
//! that power ORX008, ORX009 and ORX010 plus the interprocedural
//! extension of ORX004's lock-order graph.
//!
//! ## Resolution, honestly stated
//!
//! This is a name-based resolver, not a type checker:
//!
//! - free calls `f(..)` resolve to a same-file free fn first, else to
//!   every workspace free fn of that name;
//! - path calls `T::f(..)` resolve to fns declared in an `impl T` /
//!   `trait T` block (`Self::f` uses the caller's own qualifier);
//! - method calls `.f(..)` resolve to every workspace method of that
//!   name, **unless** the name collides with the std prelude surface
//!   (a curated denylist) — those are assumed foreign;
//! - calls through trait objects, function pointers and closures are
//!   not resolved; unresolved calls are assumed panic-free and
//!   non-blocking (conservative for noise, optimistic for coverage —
//!   the trade documented in the README).

use crate::diag::{Finding, Rule};
use crate::policy::Policy;
use crate::rules::LockEdge;
use crate::summary::{FileFacts, FnSummary};

/// Result of the interprocedural pass.
#[derive(Debug, Default)]
pub struct InterFindings {
    /// ORX008/ORX009/ORX010 findings (policy-scoped, waivers applied).
    pub findings: Vec<Finding>,
    /// Findings suppressed by inline waivers, for the report counter.
    pub waived: usize,
    /// Lock-order edges discovered *through* calls, to be merged with
    /// the per-file edges before the ORX004 inversion check.
    pub lock_edges: Vec<LockEdge>,
}

/// Method names assumed to belong to std/foreign types: `.get(..)` on
/// something is overwhelmingly a map/slice, not a workspace method.
/// A workspace method sharing one of these names is simply not
/// resolved — a documented coverage gap, never a false edge.
const FOREIGN_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ptr",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "by_ref",
    "bytes",
    "capacity",
    "chain",
    "chars",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "end",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect_err",
    "extend",
    "extension",
    "fetch_add",
    "fetch_sub",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "id",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "load",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "partial_cmp",
    "partition",
    "peek",
    "peekable",
    "pop",
    "position",
    "pow",
    "product",
    "push",
    "push_str",
    "remove",
    "retain",
    "rev",
    "rposition",
    "saturating_add",
    "saturating_mul",
    "set_len",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "splice",
    "split",
    "split_at",
    "split_whitespace",
    "splitn",
    "starts_with",
    "step_by",
    "store",
    "sum",
    "swap",
    "take_while",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "to_owned",
    "to_path_buf",
    "to_str",
    "to_string",
    "to_string_lossy",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "try_into",
    "try_lock",
    "try_recv",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "unzip",
    "values",
    "values_mut",
    "windows",
    "zip",
];

fn is_foreign_method(name: &str) -> bool {
    FOREIGN_METHODS.binary_search(&name).is_ok()
}

/// How a fn came to be marked by a reachability fixpoint: either a
/// site of its own, or a call into a marked callee. Witnesses form a
/// path to a concrete site for the diagnostic's call chain.
#[derive(Clone, Debug)]
enum Witness {
    /// `(line, what)` — the fn's own offending site.
    Site(u32, String),
    /// `(call line, callee id)` — offense lives down this call.
    Call(u32, usize),
}

/// The assembled graph: flat fn list plus resolved call targets.
pub struct Graph<'a> {
    /// `(file index, fn index)` per global fn id.
    fns: Vec<(usize, usize)>,
    facts: &'a [FileFacts],
    /// Per fn id, per call index: resolved target fn ids.
    targets: Vec<Vec<Vec<usize>>>,
}

impl<'a> Graph<'a> {
    /// Builds the graph: indexes every fn and resolves every call.
    pub fn build(facts: &'a [FileFacts]) -> Graph<'a> {
        let mut fns = Vec::new();
        for (fi, file) in facts.iter().enumerate() {
            for (si, _) in file.fns.iter().enumerate() {
                fns.push((fi, si));
            }
        }
        // name -> candidate fn ids, split by flavor.
        let mut free_by_name: std::collections::HashMap<&str, Vec<usize>> = Default::default();
        let mut methods_by_name: std::collections::HashMap<&str, Vec<usize>> = Default::default();
        let mut by_qual_name: std::collections::HashMap<(&str, &str), Vec<usize>> =
            Default::default();
        for (id, &(fi, si)) in fns.iter().enumerate() {
            let f = &facts[fi].fns[si];
            match &f.qualifier {
                None => free_by_name.entry(f.name.as_str()).or_default().push(id),
                Some(q) => {
                    by_qual_name
                        .entry((q.as_str(), f.name.as_str()))
                        .or_default()
                        .push(id);
                    if f.has_self {
                        methods_by_name.entry(f.name.as_str()).or_default().push(id);
                    }
                }
            }
        }

        let mut targets = Vec::with_capacity(fns.len());
        for &(fi, si) in &fns {
            let caller = &facts[fi].fns[si];
            let mut per_call = Vec::with_capacity(caller.calls.len());
            for c in &caller.calls {
                let mut t: Vec<usize> = Vec::new();
                if c.is_method {
                    if !is_foreign_method(&c.name) {
                        if let Some(ids) = methods_by_name.get(c.name.as_str()) {
                            t.extend(ids.iter().copied());
                        }
                    }
                } else if let Some(q) = &c.qualifier {
                    let qual = if q == "Self" {
                        caller.qualifier.as_deref().unwrap_or("Self")
                    } else {
                        q.as_str()
                    };
                    if let Some(ids) = by_qual_name.get(&(qual, c.name.as_str())) {
                        t.extend(ids.iter().copied());
                    }
                } else {
                    // Free call: same-file first, else any workspace free fn.
                    if let Some(ids) = free_by_name.get(c.name.as_str()) {
                        let local: Vec<usize> =
                            ids.iter().copied().filter(|&id| fns[id].0 == fi).collect();
                        t.extend(if local.is_empty() { ids.clone() } else { local });
                    }
                }
                per_call.push(t);
            }
            targets.push(per_call);
        }
        Graph {
            fns,
            facts,
            targets,
        }
    }

    fn summary(&self, id: usize) -> &FnSummary {
        let (fi, si) = self.fns[id];
        &self.facts[fi].fns[si]
    }

    fn file(&self, id: usize) -> &str {
        &self.facts[self.fns[id].0].path
    }

    /// Generic backward reachability with witness recording. `seed`
    /// yields each fn's own offending site, `skip_call` suppresses
    /// propagation through waived calls.
    fn reach(
        &self,
        seed: impl Fn(usize, &FnSummary) -> Option<(u32, String)>,
        skip_call: Rule,
    ) -> Vec<Option<Witness>> {
        let n = self.fns.len();
        let mut marked: Vec<Option<Witness>> = vec![None; n];
        let mut work: Vec<usize> = Vec::new();
        for (id, slot) in marked.iter_mut().enumerate() {
            if let Some((line, what)) = seed(id, self.summary(id)) {
                *slot = Some(Witness::Site(line, what));
                work.push(id);
            }
        }
        // Reverse edges: callee -> (caller, call line), skipping waived
        // call sites so a waiver at the chain's entry clears upstream.
        let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for id in 0..n {
            let s = self.summary(id);
            for (ci, c) in s.calls.iter().enumerate() {
                if c.waived.contains(&skip_call) {
                    continue;
                }
                for &t in &self.targets[id][ci] {
                    rev[t].push((id, c.line));
                }
            }
        }
        while let Some(id) = work.pop() {
            for &(caller, line) in &rev[id] {
                if marked[caller].is_none() {
                    marked[caller] = Some(Witness::Call(line, id));
                    work.push(caller);
                }
            }
        }
        marked
    }

    /// Renders the call chain from `id`'s witness down to the concrete
    /// site: `` `a` → `b` → `c` panics via `.unwrap()` at file:line ``.
    fn chain(&self, start: usize, marked: &[Option<Witness>], verb: &str) -> String {
        let mut out = String::new();
        let mut id = start;
        let mut hops = 0;
        loop {
            out.push_str(&format!("`{}`", self.summary(id).display_name()));
            match &marked[id] {
                Some(Witness::Call(line, callee)) if hops < 12 => {
                    out.push_str(&format!(" ({}:{line}) → ", self.file(id)));
                    id = *callee;
                    hops += 1;
                }
                Some(Witness::Site(line, what)) => {
                    out.push_str(&format!(" {verb} {what} at {}:{line}", self.file(id)));
                    break;
                }
                _ => break,
            }
        }
        out
    }

    /// Transitive lock sets: every lock a fn may acquire, through calls.
    fn transitive_locks(&self) -> Vec<Vec<String>> {
        let n = self.fns.len();
        let mut locks: Vec<Vec<String>> = (0..n)
            .map(|id| {
                let mut v: Vec<String> = self
                    .summary(id)
                    .locks
                    .iter()
                    .map(|r| r.lock.clone())
                    .collect();
                v.sort();
                v.dedup();
                v
            })
            .collect();
        // Fixpoint: propagate callee locks into callers.
        let mut changed = true;
        let mut rounds = 0;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for id in 0..n {
                let mut add: Vec<String> = Vec::new();
                for tl in self.targets[id].iter().flatten() {
                    for l in &locks[*tl] {
                        if !locks[id].contains(l) && !add.contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    locks[id].extend(add);
                    locks[id].sort();
                    locks[id].dedup();
                    changed = true;
                }
            }
        }
        locks
    }

    /// Parameter-taint fixpoint: which `(fn, param)` pairs reach an
    /// allocation sink unclamped, with a witness for the chain.
    fn sensitive_params(&self) -> std::collections::HashMap<(usize, usize), Witness> {
        use std::collections::hash_map::Entry;
        use std::collections::HashMap;
        let mut sens: HashMap<(usize, usize), Witness> = HashMap::new();
        let mut work: Vec<(usize, usize)> = Vec::new();
        for id in 0..self.fns.len() {
            for ps in &self.summary(id).param_sinks {
                if ps.waived.contains(&Rule::Orx010) {
                    continue;
                }
                if let Entry::Vacant(e) = sens.entry((id, ps.param)) {
                    e.insert(Witness::Site(ps.line, ps.sink.clone()));
                    work.push((id, ps.param));
                }
            }
        }
        // Reverse param edges: callee param -> caller param feeding it.
        let mut rev: HashMap<(usize, usize), Vec<(usize, usize, u32)>> = HashMap::new();
        for id in 0..self.fns.len() {
            let s = self.summary(id);
            for (ci, c) in s.calls.iter().enumerate() {
                if c.waived.contains(&Rule::Orx010) {
                    continue;
                }
                for &(arg, caller_param) in &c.param_args {
                    for &t in &self.targets[id][ci] {
                        if let Some(callee_param) = self.map_arg(t, c.is_method, arg) {
                            rev.entry((t, callee_param)).or_default().push((
                                id,
                                caller_param,
                                c.line,
                            ));
                        }
                    }
                }
            }
        }
        while let Some(key) = work.pop() {
            if let Some(feeders) = rev.get(&key) {
                for &(caller, caller_param, line) in feeders {
                    if let Entry::Vacant(e) = sens.entry((caller, caller_param)) {
                        e.insert(Witness::Call(line, key.0));
                        work.push((caller, caller_param));
                    }
                }
            }
        }
        sens
    }

    /// Maps a call-syntax argument index to the callee's non-self
    /// parameter index. Path calls to methods pass the receiver as
    /// argument 0.
    fn map_arg(&self, callee: usize, is_method_call: bool, arg: usize) -> Option<usize> {
        let callee_s = self.summary(callee);
        let param = if callee_s.has_self && !is_method_call {
            arg.checked_sub(1)?
        } else {
            arg
        };
        (param < callee_s.param_count).then_some(param)
    }

    /// Renders the parameter-taint chain from a sensitive param down to
    /// its sink.
    fn param_chain(
        &self,
        start: (usize, usize),
        sens: &std::collections::HashMap<(usize, usize), Witness>,
    ) -> String {
        let mut out = String::new();
        let mut id = start.0;
        let mut hops = 0;
        let mut key = start;
        loop {
            out.push_str(&format!("`{}`", self.summary(id).display_name()));
            match sens.get(&key) {
                Some(Witness::Call(line, callee)) if hops < 12 => {
                    out.push_str(&format!(" ({}:{line}) → ", self.file(id)));
                    // Find which param of the callee we fed — follow the
                    // sens map by scanning the callee's keys. The callee
                    // has few params; take the first sensitive one its
                    // witness chain continues from.
                    let next = (0..self.summary(*callee).param_count)
                        .find(|p| sens.contains_key(&(*callee, *p)));
                    id = *callee;
                    key = (id, next.unwrap_or(0));
                    hops += 1;
                }
                Some(Witness::Site(line, what)) => {
                    out.push_str(&format!(" sizes {what} at {}:{line}", self.file(id)));
                    break;
                }
                _ => break,
            }
        }
        out
    }
}

/// Runs the interprocedural rules over assembled facts.
pub fn interprocedural_findings(facts: &[FileFacts], policy: &Policy) -> InterFindings {
    let g = Graph::build(facts);
    let mut out = InterFindings::default();

    // ORX008: panic reachability. Roots are unwaived panic sites in
    // files *outside* the ORX002 scope (in-scope sites are ORX002's
    // own findings or its deliberate waivers).
    let panic_marked = g.reach(
        |id, s| {
            if policy.rule_applies(Rule::Orx002, g.file(id)) {
                return None;
            }
            s.panics
                .iter()
                .find(|p| !p.waived.contains(&Rule::Orx008))
                .map(|p| (p.line, p.what.clone()))
        },
        Rule::Orx008,
    );
    for id in 0..g.fns.len() {
        let file = g.file(id).to_string();
        if !policy.rule_applies(Rule::Orx008, &file) || !policy.rule_applies(Rule::Orx002, &file) {
            continue;
        }
        let s = g.summary(id);
        for (ci, c) in s.calls.iter().enumerate() {
            let Some(&t) = g.targets[id][ci]
                .iter()
                .find(|&&t| panic_marked[t].is_some())
            else {
                continue;
            };
            if c.waived.contains(&Rule::Orx008) {
                out.waived += 1;
                continue;
            }
            let chain = g.chain(t, &panic_marked, "panics via");
            out.findings.push(Finding {
                rule: Rule::Orx008,
                file: file.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "hot path `{}` can panic through this call: {chain} — return an error \
                     instead, or waive at the panic site with a justification",
                    s.display_name()
                ),
            });
            break; // One finding per scoped fn keeps the report readable.
        }
    }

    // ORX009: blocking reachability + guard regions.
    let block_marked = g.reach(
        |_, s| {
            s.blocking
                .iter()
                .find(|b| !b.waived.contains(&Rule::Orx009))
                .map(|b| (b.line, b.what.clone()))
        },
        Rule::Orx009,
    );
    for id in 0..g.fns.len() {
        let file = g.file(id).to_string();
        if !policy.rule_applies(Rule::Orx009, &file) {
            continue;
        }
        let s = g.summary(id);
        // Direct: a blocking op inside a guard region of the same fn.
        for r in &s.locks {
            for &bi in &r.blocking {
                let b = &s.blocking[bi];
                if b.waived.contains(&Rule::Orx009) {
                    out.waived += 1;
                    continue;
                }
                out.findings.push(Finding {
                    rule: Rule::Orx009,
                    file: file.clone(),
                    line: b.line,
                    col: b.col,
                    message: format!(
                        "{} blocks while guard of lock `{}` (acquired at line {}) is live in \
                         `{}` — drop the guard first or move the blocking call out",
                        b.what,
                        r.lock,
                        r.line,
                        s.display_name()
                    ),
                });
            }
        }
        // Through calls: callee (transitively) blocks while we hold.
        for (ci, c) in s.calls.iter().enumerate() {
            if c.held_locks.is_empty() {
                continue;
            }
            let Some(&t) = g.targets[id][ci]
                .iter()
                .find(|&&t| block_marked[t].is_some())
            else {
                continue;
            };
            if c.waived.contains(&Rule::Orx009) {
                out.waived += 1;
                continue;
            }
            let chain = g.chain(t, &block_marked, "blocks on");
            out.findings.push(Finding {
                rule: Rule::Orx009,
                file: file.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "lock `{}` held across this call in `{}`, and the callee blocks: {chain} \
                     — drop the guard before the call",
                    c.held_locks.join("`, `"),
                    s.display_name()
                ),
            });
        }
    }

    // Interprocedural ORX004: a call made with lock H held, into a
    // callee that (transitively) acquires L, is an H→L order edge.
    let locks = g.transitive_locks();
    for id in 0..g.fns.len() {
        let s = g.summary(id);
        for (ci, c) in s.calls.iter().enumerate() {
            if c.held_locks.is_empty() {
                continue;
            }
            if c.waived.contains(&Rule::Orx004) {
                continue;
            }
            let mut callee_locks: Vec<&String> = g.targets[id][ci]
                .iter()
                .flat_map(|&t| locks[t].iter())
                .collect();
            callee_locks.sort();
            callee_locks.dedup();
            for held in &c.held_locks {
                for &l in &callee_locks {
                    if held != l {
                        out.lock_edges.push(LockEdge {
                            func: s.display_name(),
                            first: held.clone(),
                            second: l.clone(),
                            file: g.file(id).to_string(),
                            line: c.line,
                            col: c.col,
                        });
                    }
                }
            }
        }
    }

    // ORX010: locally tainted sinks, then tainted call arguments into
    // sensitive parameters.
    let sens = g.sensitive_params();
    for id in 0..g.fns.len() {
        let file = g.file(id).to_string();
        if !policy.rule_applies(Rule::Orx010, &file) {
            continue;
        }
        let s = g.summary(id);
        for ts in &s.tainted_sinks {
            if ts.waived.contains(&Rule::Orx010) {
                out.waived += 1;
                continue;
            }
            out.findings.push(Finding {
                rule: Rule::Orx010,
                file: file.clone(),
                line: ts.line,
                col: ts.col,
                message: format!(
                    "length parsed from request bytes (line {}) sizes {} without a bounds \
                     clamp in `{}` — clamp with `.min(LIMIT)` or reject over-limit requests \
                     first",
                    ts.source_line,
                    ts.sink,
                    s.display_name()
                ),
            });
        }
        for (ci, c) in s.calls.iter().enumerate() {
            for &(arg, src_line) in &c.tainted_args {
                let Some(&t) = g.targets[id][ci].iter().find(|&&t| {
                    g.map_arg(t, c.is_method, arg)
                        .is_some_and(|p| sens.contains_key(&(t, p)))
                }) else {
                    continue;
                };
                if c.waived.contains(&Rule::Orx010) {
                    out.waived += 1;
                    continue;
                }
                let p = g.map_arg(t, c.is_method, arg).unwrap_or(0);
                let chain = g.param_chain((t, p), &sens);
                out.findings.push(Finding {
                    rule: Rule::Orx010,
                    file: file.clone(),
                    line: c.line,
                    col: c.col,
                    message: format!(
                        "request-derived length (parsed at line {src_line}) flows into this \
                         call unclamped: {chain} — clamp before passing it down",
                    ),
                });
            }
        }
    }

    out.findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;
    use crate::summary::extract_facts;

    /// Policy scoping ORX002 (and the new rules) to `scoped/src/**`.
    fn policy() -> Policy {
        Policy::parse(
            "scope ORX002 crates/scoped/src/**\n\
             scope ORX008 crates/scoped/src/**\n\
             scope ORX009 **\n\
             scope ORX010 **\n",
        )
        .unwrap()
    }

    fn facts_of(path: &str, src: &str) -> FileFacts {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        extract_facts(path, &lexed, &mask)
    }

    #[test]
    fn orx008_reports_panic_two_calls_away_with_chain() {
        let scoped = facts_of(
            "crates/scoped/src/lib.rs",
            "fn handle(q: &str) -> u32 {\n    score(q)\n}",
        );
        let helper = facts_of(
            "crates/helper/src/lib.rs",
            "fn score(q: &str) -> u32 {\n    weights(q)\n}\n\
             fn weights(q: &str) -> u32 {\n    q.parse().unwrap()\n}",
        );
        let out = interprocedural_findings(&[scoped, helper], &policy());
        let f: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Orx008)
            .collect();
        assert_eq!(f.len(), 1, "{:?}", out.findings);
        assert_eq!(f[0].file, "crates/scoped/src/lib.rs");
        assert_eq!(f[0].line, 2);
        assert!(
            f[0].message
                .contains("`score` (crates/helper/src/lib.rs:2) → `weights`"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("crates/helper/src/lib.rs:5"));
    }

    #[test]
    fn orx008_waiver_at_panic_site_clears_all_callers() {
        let scoped = facts_of(
            "crates/scoped/src/lib.rs",
            "fn handle(q: &str) -> u32 {\n    score(q)\n}",
        );
        let helper = facts_of(
            "crates/helper/src/lib.rs",
            "fn score(q: &str) -> u32 {\n    // orex::allow(ORX008): startup-validated config\n    q.parse().unwrap()\n}",
        );
        let out = interprocedural_findings(&[scoped, helper], &policy());
        assert!(
            out.findings.iter().all(|f| f.rule != Rule::Orx008),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn orx008_in_scope_panics_are_orx002s_job_not_orx008s() {
        // Panic site inside the ORX002 scope: ORX002 flags it already;
        // ORX008 must not double-report callers within the scope.
        let scoped = facts_of(
            "crates/scoped/src/lib.rs",
            "fn handle(q: &str) -> u32 {\n    score(q)\n}\n\
             fn score(q: &str) -> u32 {\n    q.parse().unwrap()\n}",
        );
        let out = interprocedural_findings(&[scoped], &policy());
        assert!(out.findings.iter().all(|f| f.rule != Rule::Orx008));
    }

    #[test]
    fn orx009_direct_and_through_calls() {
        let f = facts_of(
            "crates/s/src/lib.rs",
            "impl S {\n\
             fn pump(&self) {\n    let g = self.state.lock();\n    self.sock.write_all(b\"x\");\n}\n\
             fn outer(&self) {\n    let g = self.sessions.lock();\n    self.persist();\n}\n\
             fn persist(&self) {\n    self.sock.write_all(b\"y\");\n}\n\
             }",
        );
        let out = interprocedural_findings(&[f], &policy());
        let nine: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Orx009)
            .collect();
        assert_eq!(nine.len(), 2, "{:#?}", nine);
        assert!(nine.iter().any(|f| f.message.contains("`state`")));
        assert!(nine
            .iter()
            .any(|f| f.message.contains("`sessions`") && f.message.contains("`S::persist`")));
    }

    #[test]
    fn orx004_edges_cross_calls() {
        let f = facts_of(
            "crates/s/src/lib.rs",
            "impl S {\n\
             fn a(&self) {\n    let g = self.cache.lock();\n    self.grab();\n}\n\
             fn grab(&self) {\n    let g = self.sessions.lock();\n}\n\
             fn b(&self) {\n    let g = self.sessions.lock();\n    let h = self.cache.lock();\n}\n\
             }",
        );
        let out = interprocedural_findings(&[f], &policy());
        assert!(out
            .lock_edges
            .iter()
            .any(|e| e.first == "cache" && e.second == "sessions"));
    }

    #[test]
    fn orx010_tainted_arg_reaches_param_sink_across_files() {
        let server = facts_of(
            "crates/s/src/lib.rs",
            "fn read_req(h: &str) {\n    let n = h.parse::<usize>().unwrap_or(0);\n    build_buf(n);\n}",
        );
        let store = facts_of(
            "crates/t/src/lib.rs",
            "fn build_buf(len: usize) -> Vec<u8> {\n    Vec::with_capacity(len)\n}",
        );
        let out = interprocedural_findings(&[server, store], &policy());
        let ten: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Orx010)
            .collect();
        assert_eq!(ten.len(), 1, "{:#?}", out.findings);
        assert_eq!(ten[0].file, "crates/s/src/lib.rs");
        assert!(
            ten[0]
                .message
                .contains("`build_buf` sizes Vec::with_capacity"),
            "{}",
            ten[0].message
        );
    }

    #[test]
    fn orx010_clamped_at_call_site_is_clean() {
        let server = facts_of(
            "crates/s/src/lib.rs",
            "fn read_req(h: &str) {\n    let n = h.parse::<usize>().unwrap_or(0);\n    build_buf(n.min(4096));\n}",
        );
        let store = facts_of(
            "crates/t/src/lib.rs",
            "fn build_buf(len: usize) -> Vec<u8> {\n    Vec::with_capacity(len)\n}",
        );
        let out = interprocedural_findings(&[server, store], &policy());
        assert!(out.findings.iter().all(|f| f.rule != Rule::Orx010));
    }

    #[test]
    fn foreign_method_names_do_not_resolve() {
        // `.push(..)` on a Vec must not resolve to a workspace method
        // named `push`, even if one exists.
        let a = facts_of(
            "crates/scoped/src/lib.rs",
            "fn handle(v: &mut Vec<u32>) {\n    v.push(1);\n}",
        );
        let b = facts_of(
            "crates/x/src/lib.rs",
            "impl Q {\nfn push(&mut self, v: u32) {\n    panic!(\"full\");\n}\n}",
        );
        let out = interprocedural_findings(&[a, b], &policy());
        assert!(out.findings.iter().all(|f| f.rule != Rule::Orx008));
    }
}
