//! # orex-analyze — workspace static analysis and correctness gates
//!
//! A dependency-free, token-level Rust source scanner enforcing the
//! project's seven lint rules, plus a bounded two-thread interleaving
//! explorer used by concurrency tests. The scanner powers the
//! `orex analyze` CLI subcommand and the blocking CI `analyze` job.
//!
//! ## Rules
//!
//! | ID     | Check |
//! |--------|-------|
//! | ORX001 | every `unsafe` must carry an attached `// SAFETY:` comment |
//! | ORX002 | no `unwrap()`/`expect()`/`panic!` in scoped hot paths |
//! | ORX003 | `Ordering::Relaxed`/`SeqCst` need `// ORDERING:` justification |
//! | ORX004 | two-lock acquisition-order inversions (deadlock potential) |
//! | ORX005 | no `process::exit`/`thread::sleep` outside cli/bench |
//! | ORX006 | debt census (`TODO`/`FIXME`/`#[allow]`) over committed budget |
//! | ORX007 | no bare `println!`/`eprintln!`/`dbg!` outside cli/bench |
//!
//! Scope, allowlists and budgets live in `analyze.policy` at the
//! workspace root — the single source of policy. Individual findings
//! are waived inline with `// orex::allow(ORXnnn): reason` attached to
//! the offending line.

pub mod diag;
pub mod interleave;
pub mod lexer;
pub mod policy;
pub mod rules;

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use diag::{Finding, Report, Rule};
use policy::{Policy, PolicyError};
use rules::FileScan;

/// Name of the policy file expected at the workspace root.
pub const POLICY_FILE: &str = "analyze.policy";

/// Analysis failure (I/O or policy syntax), distinct from findings.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Reading a file or walking the tree failed.
    Io(PathBuf, std::io::Error),
    /// The policy file is malformed.
    Policy(PolicyError),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Io(p, e) => write!(f, "{}: {}", p.display(), e),
            AnalyzeError::Policy(e) => write!(f, "{e}"),
        }
    }
}

/// Analyzes the workspace rooted at `root` under `policy`.
///
/// Walks every `*.rs` file under `root` whose workspace-relative path
/// contains a `src/` component (production code; `tests/`, `benches/`
/// and `examples/` are exercise code with different rules), minus
/// policy excludes. Hidden directories and `target/` are always
/// skipped.
pub fn analyze_workspace(root: &Path, policy: &Policy) -> Result<Report, AnalyzeError> {
    let mut files = Vec::new();
    walk(root, root, policy, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut edges = Vec::new();
    for rel in &files {
        let full = root.join(rel);
        let source = fs::read_to_string(&full).map_err(|e| AnalyzeError::Io(full.clone(), e))?;
        let lexed = lexer::lex(&source);
        let FileScan {
            findings,
            waived,
            census,
            lock_edges,
        } = rules::scan_file(rel, &lexed, policy);
        report.findings.extend(findings);
        report.waived += waived;
        report.census.todo += census.todo;
        report.census.fixme += census.fixme;
        report.census.allow_attr += census.allow_attr;
        edges.extend(lock_edges);
        report.files_scanned += 1;
    }

    // ORX004 needs the cross-file edge set.
    for f in rules::lock_cycle_findings(&edges) {
        if policy.rule_applies(Rule::Orx004, &f.file) {
            report.findings.push(f);
        }
    }

    // ORX006: compare census against committed budgets.
    let budgets = [
        ("TODO", report.census.todo, policy.budget_todo),
        ("FIXME", report.census.fixme, policy.budget_fixme),
        (
            "#[allow]",
            report.census.allow_attr,
            policy.budget_allow_attr,
        ),
    ];
    for (what, count, budget) in budgets {
        if let Some(max) = budget {
            if count > max {
                report.findings.push(Finding {
                    rule: Rule::Orx006,
                    file: POLICY_FILE.to_string(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "{what} count {count} exceeds committed budget {max} — pay the debt \
                         down or raise the budget in {POLICY_FILE} with a justification"
                    ),
                });
            }
        }
    }

    report.sort();
    Ok(report)
}

fn walk(
    root: &Path,
    dir: &Path,
    policy: &Policy,
    out: &mut Vec<String>,
) -> Result<(), AnalyzeError> {
    let entries = fs::read_dir(dir).map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_path(root, &path);
        if policy.is_excluded(&rel) {
            continue;
        }
        let ftype = entry
            .file_type()
            .map_err(|e| AnalyzeError::Io(path.clone(), e))?;
        if ftype.is_dir() {
            walk(root, &path, policy, out)?;
        } else if name.ends_with(".rs") && rel.split('/').any(|seg| seg == "src") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Loads `analyze.policy` from `root`. A missing policy file is an
/// empty policy (scan everything, no budgets) rather than an error, so
/// the tool works on fresh checkouts of other projects.
pub fn load_policy(root: &Path) -> Result<Policy, AnalyzeError> {
    let path = root.join(POLICY_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => Policy::parse(&text).map_err(AnalyzeError::Policy),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Policy::default()),
        Err(e) => Err(AnalyzeError::Io(path, e)),
    }
}

/// Outcome of [`run_cli`], for the caller to turn into an exit code.
#[derive(Debug, PartialEq, Eq)]
pub enum CliOutcome {
    /// No findings.
    Clean,
    /// One or more findings (caller should exit non-zero).
    Violations,
    /// Bad invocation or analysis error (message already printed).
    Error,
}

/// Entry point for the `orex analyze` subcommand. Reports and errors go
/// to the caller-supplied `out` / `err` writers (its own ORX007
/// discipline: this is library code and owns no terminal). Writer
/// failures are swallowed — a broken pipe must not change the outcome.
///
/// Flags: `--root <dir>` (default `.`), `--format text|json`
/// (default text), `--output <file>` (write the report there instead of
/// `out`; text summary still goes to `err` so CI logs stay useful).
pub fn run_cli(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> CliOutcome {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut output: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    let _ = writeln!(err, "orex analyze: --root needs a value");
                    return CliOutcome::Error;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some(v @ ("text" | "json")) => format = v.to_string(),
                _ => {
                    let _ = writeln!(err, "orex analyze: --format must be text or json");
                    return CliOutcome::Error;
                }
            },
            "--output" => match it.next() {
                Some(v) => output = Some(PathBuf::from(v)),
                None => {
                    let _ = writeln!(err, "orex analyze: --output needs a value");
                    return CliOutcome::Error;
                }
            },
            other => {
                let _ = writeln!(err, "orex analyze: unknown flag `{other}`");
                return CliOutcome::Error;
            }
        }
    }

    let policy = match load_policy(&root) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(err, "orex analyze: {e}");
            return CliOutcome::Error;
        }
    };
    let report = match analyze_workspace(&root, &policy) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(err, "orex analyze: {e}");
            return CliOutcome::Error;
        }
    };

    let rendered = if format == "json" {
        report.render_json()
    } else {
        report.render_text()
    };
    match &output {
        Some(path) => {
            if let Err(e) = fs::write(path, &rendered) {
                let _ = writeln!(err, "orex analyze: {}: {}", path.display(), e);
                return CliOutcome::Error;
            }
            // Keep the human summary visible in CI logs.
            let _ = write!(err, "{}", report.render_text());
        }
        None => {
            let _ = write!(out, "{rendered}");
        }
    }

    if report.findings.is_empty() {
        CliOutcome::Clean
    } else {
        CliOutcome::Violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_path_is_slash_separated() {
        let root = Path::new("/a/b");
        assert_eq!(rel_path(root, Path::new("/a/b/c/d.rs")), "c/d.rs");
    }

    #[test]
    fn missing_policy_is_empty_policy() {
        let p = load_policy(Path::new("/nonexistent-dir-for-orex-test")).unwrap();
        assert!(p.excludes.is_empty());
        assert_eq!(p.budget_todo, None);
    }
}
