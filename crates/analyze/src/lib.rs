//! # orex-analyze — workspace static analysis and correctness gates
//!
//! A dependency-free interprocedural Rust source analyzer enforcing
//! the project's ten lint rules, plus a bounded two-thread
//! interleaving explorer used by concurrency tests. The analyzer
//! powers the `orex analyze` CLI subcommand and the blocking CI
//! `analyze` job.
//!
//! ## Rules
//!
//! | ID     | Check |
//! |--------|-------|
//! | ORX001 | every `unsafe` must carry an attached `// SAFETY:` comment |
//! | ORX002 | no `unwrap()`/`expect()`/`panic!` in scoped hot paths |
//! | ORX003 | `Ordering::Relaxed`/`SeqCst` need `// ORDERING:` justification |
//! | ORX004 | two-lock acquisition-order inversions (deadlock potential), in-file and across calls |
//! | ORX005 | no `process::exit`/`thread::sleep` outside cli/bench |
//! | ORX006 | debt census (`TODO`/`FIXME`/`#[allow]`) over committed budget |
//! | ORX007 | no bare `println!`/`eprintln!`/`dbg!` outside cli/bench |
//! | ORX008 | scoped hot paths must not transitively reach a panic site |
//! | ORX009 | no lock guard held across a blocking call or sleep |
//! | ORX010 | request-derived lengths clamped before sizing an allocation |
//!
//! ORX001–ORX007 are file-local token-stream passes ([`rules`]).
//! ORX008–ORX010 run interprocedurally: [`syntax`] parses the token
//! stream into function items, [`summary`] extracts per-function facts
//! (panic sites, blocking calls, lock regions, taint sources/sinks),
//! and [`callgraph`] links them into a whole-workspace call graph with
//! conservative name resolution — calls through trait objects,
//! function pointers, closures and macros are left unresolved and
//! assumed benign, so these rules under-approximate.
//!
//! Scope, allowlists and budgets live in `analyze.policy` at the
//! workspace root — the single source of policy. Individual findings
//! are waived inline with `// orex::allow(ORXnnn): reason` attached to
//! the offending line; an ORX008 waiver anywhere on a call chain
//! clears every caller upstream of it. Reports render as text, JSON or
//! SARIF 2.1.0 ([`sarif`]), and [`cache`] persists per-file analyses
//! keyed by content hash so warm runs only re-analyze what changed.

pub mod cache;
pub mod callgraph;
pub mod diag;
pub mod interleave;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod sarif;
pub mod summary;
pub mod syntax;

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use diag::{Census, Finding, Report, Rule};
use policy::{Policy, PolicyError};
use rules::{FileScan, LockEdge};
use summary::FileFacts;

/// Name of the policy file expected at the workspace root.
pub const POLICY_FILE: &str = "analyze.policy";

/// Analysis failure (I/O or policy syntax), distinct from findings.
#[derive(Debug)]
pub enum AnalyzeError {
    /// Reading a file or walking the tree failed.
    Io(PathBuf, std::io::Error),
    /// The policy file is malformed.
    Policy(PolicyError),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Io(p, e) => write!(f, "{}: {}", p.display(), e),
            AnalyzeError::Policy(e) => write!(f, "{e}"),
        }
    }
}

/// Analyzes the workspace rooted at `root` under `policy`.
///
/// Walks every `*.rs` file under `root` whose workspace-relative path
/// contains a `src/` component (production code; `tests/`, `benches/`
/// and `examples/` are exercise code with different rules), minus
/// policy excludes. Hidden directories and `target/` are always
/// skipped.
pub fn analyze_workspace(root: &Path, policy: &Policy) -> Result<Report, AnalyzeError> {
    analyze_workspace_cached(root, policy, None).map(|(r, _)| r)
}

/// Everything the cross-file passes need from one file. This is the
/// unit of incremental caching: it is a pure function of the file's
/// bytes and the policy, so [`cache`] keys it by content hash.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// File-local findings, waivers already applied.
    pub findings: Vec<Finding>,
    /// Waivers honoured in this file.
    pub waived: usize,
    /// Debt census contribution.
    pub census: Census,
    /// Intra-file lock-order edges.
    pub lock_edges: Vec<LockEdge>,
    /// Per-function summaries for the interprocedural pass.
    pub facts: FileFacts,
}

/// Analyzes one file in isolation (lex, file-local rules, fn
/// summaries). Pure in `(rel, source, policy)`.
pub fn analyze_file(rel: &str, source: &str, policy: &Policy) -> FileAnalysis {
    let lexed = lexer::lex(source);
    let FileScan {
        findings,
        waived,
        census,
        lock_edges,
    } = rules::scan_file(rel, &lexed, policy);
    let mask = rules::test_mask(&lexed.tokens);
    let facts = summary::extract_facts(rel, &lexed, &mask);
    FileAnalysis {
        findings,
        waived,
        census,
        lock_edges,
        facts,
    }
}

/// [`analyze_workspace`] with an optional incremental cache. Returns
/// the report plus the number of files whose per-file analysis was
/// reused from the cache (0 on cold runs). The interprocedural pass
/// always re-runs over the assembled facts — only per-file lexing,
/// scanning and summarizing is memoized — so a warm run's report is
/// byte-identical to a cold run's.
pub fn analyze_workspace_cached(
    root: &Path,
    policy: &Policy,
    mut cache: Option<&mut cache::Cache>,
) -> Result<(Report, usize), AnalyzeError> {
    let mut files = Vec::new();
    walk(root, root, policy, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut edges = Vec::new();
    let mut all_facts: Vec<FileFacts> = Vec::new();
    let mut cache_hits = 0usize;
    for rel in &files {
        let full = root.join(rel);
        let source = fs::read_to_string(&full).map_err(|e| AnalyzeError::Io(full.clone(), e))?;
        let fa_owned;
        let fa: &FileAnalysis = match cache.as_deref_mut() {
            Some(c) => {
                if c.contains(rel, &source) {
                    cache_hits += 1;
                } else {
                    c.insert(rel, &source, analyze_file(rel, &source, policy));
                }
                c.get(rel).expect("entry just checked or inserted")
            }
            None => {
                fa_owned = analyze_file(rel, &source, policy);
                &fa_owned
            }
        };
        report.findings.extend(fa.findings.iter().cloned());
        report.waived += fa.waived;
        report.census.todo += fa.census.todo;
        report.census.fixme += fa.census.fixme;
        report.census.allow_attr += fa.census.allow_attr;
        edges.extend(fa.lock_edges.iter().cloned());
        all_facts.push(fa.facts.clone());
        report.files_scanned += 1;
    }

    // The interprocedural pass: ORX008/ORX009/ORX010 plus lock-order
    // edges discovered through calls.
    let inter = callgraph::interprocedural_findings(&all_facts, policy);
    report.findings.extend(inter.findings);
    report.waived += inter.waived;
    edges.extend(inter.lock_edges);
    edges.sort_by(|a, b| {
        (&a.first, &a.second, &a.file, a.line).cmp(&(&b.first, &b.second, &b.file, b.line))
    });
    edges.dedup_by(|a, b| {
        a.first == b.first && a.second == b.second && a.file == b.file && a.line == b.line
    });

    // ORX004 needs the cross-file edge set.
    for f in rules::lock_cycle_findings(&edges) {
        if policy.rule_applies(Rule::Orx004, &f.file) {
            report.findings.push(f);
        }
    }

    // ORX006: compare census against committed budgets.
    let budgets = [
        ("TODO", report.census.todo, policy.budget_todo),
        ("FIXME", report.census.fixme, policy.budget_fixme),
        (
            "#[allow]",
            report.census.allow_attr,
            policy.budget_allow_attr,
        ),
    ];
    for (what, count, budget) in budgets {
        if let Some(max) = budget {
            if count > max {
                report.findings.push(Finding {
                    rule: Rule::Orx006,
                    file: POLICY_FILE.to_string(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "{what} count {count} exceeds committed budget {max} — pay the debt \
                         down or raise the budget in {POLICY_FILE} with a justification"
                    ),
                });
            }
        }
    }

    report.sort();
    Ok((report, cache_hits))
}

fn walk(
    root: &Path,
    dir: &Path,
    policy: &Policy,
    out: &mut Vec<String>,
) -> Result<(), AnalyzeError> {
    let entries = fs::read_dir(dir).map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_path(root, &path);
        if policy.is_excluded(&rel) {
            continue;
        }
        let ftype = entry
            .file_type()
            .map_err(|e| AnalyzeError::Io(path.clone(), e))?;
        if ftype.is_dir() {
            walk(root, &path, policy, out)?;
        } else if name.ends_with(".rs") && rel.split('/').any(|seg| seg == "src") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Loads `analyze.policy` from `root`. A missing policy file is an
/// empty policy (scan everything, no budgets) rather than an error, so
/// the tool works on fresh checkouts of other projects.
pub fn load_policy(root: &Path) -> Result<Policy, AnalyzeError> {
    let path = root.join(POLICY_FILE);
    match fs::read_to_string(&path) {
        Ok(text) => Policy::parse(&text).map_err(AnalyzeError::Policy),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Policy::default()),
        Err(e) => Err(AnalyzeError::Io(path, e)),
    }
}

/// Renders `--explain ORXnnn`: the rule's one-liner, rationale,
/// a minimal firing example and the waiver syntax — all drawn from
/// [`diag::Rule`], the same source of truth the README table and the
/// SARIF rule metadata render from.
pub fn explain(rule: Rule) -> String {
    format!(
        "{id}: {summary}\n\n{rationale}\n\nexample that fires:\n{example}\n\nwaiver:\n  {waiver}\n",
        id = rule.id(),
        summary = rule.summary(),
        rationale = rule.rationale(),
        example = rule
            .example()
            .lines()
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        waiver = rule.waiver_help(),
    )
}

/// Outcome of [`run_cli`], for the caller to turn into an exit code.
#[derive(Debug, PartialEq, Eq)]
pub enum CliOutcome {
    /// No findings.
    Clean,
    /// One or more findings (caller should exit non-zero).
    Violations,
    /// Bad invocation or analysis error (message already printed).
    Error,
}

/// Entry point for the `orex analyze` subcommand. Reports and errors go
/// to the caller-supplied `out` / `err` writers (its own ORX007
/// discipline: this is library code and owns no terminal). Writer
/// failures are swallowed — a broken pipe must not change the outcome.
///
/// Flags: `--root <dir>` (default `.`), `--format text|json|sarif`
/// (default text), `--output <file>` (write the report there instead of
/// `out`; text summary still goes to `err` so CI logs stay useful),
/// `--cache <file>` (reuse per-file analyses across runs, keyed by
/// content hash), `--explain ORXnnn` (print a rule's rationale,
/// example and waiver syntax, then exit without scanning).
pub fn run_cli(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> CliOutcome {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut output: Option<PathBuf> = None;
    let mut cache_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    let _ = writeln!(err, "orex analyze: --root needs a value");
                    return CliOutcome::Error;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some(v @ ("text" | "json" | "sarif")) => format = v.to_string(),
                _ => {
                    let _ = writeln!(err, "orex analyze: --format must be text, json or sarif");
                    return CliOutcome::Error;
                }
            },
            "--output" => match it.next() {
                Some(v) => output = Some(PathBuf::from(v)),
                None => {
                    let _ = writeln!(err, "orex analyze: --output needs a value");
                    return CliOutcome::Error;
                }
            },
            "--cache" => match it.next() {
                Some(v) => cache_path = Some(PathBuf::from(v)),
                None => {
                    let _ = writeln!(err, "orex analyze: --cache needs a file path");
                    return CliOutcome::Error;
                }
            },
            "--explain" => match it.next().map(String::as_str).and_then(Rule::parse) {
                Some(rule) => {
                    let _ = write!(out, "{}", explain(rule));
                    return CliOutcome::Clean;
                }
                None => {
                    let _ = writeln!(
                        err,
                        "orex analyze: --explain needs a rule ID (ORX001..ORX{:03})",
                        Rule::all().len()
                    );
                    return CliOutcome::Error;
                }
            },
            other => {
                let _ = writeln!(err, "orex analyze: unknown flag `{other}`");
                return CliOutcome::Error;
            }
        }
    }

    let policy = match load_policy(&root) {
        Ok(p) => p,
        Err(e) => {
            let _ = writeln!(err, "orex analyze: {e}");
            return CliOutcome::Error;
        }
    };
    // The cache is keyed by a policy fingerprint: per-file findings
    // depend on scopes/allows, so a policy edit must invalidate it.
    let policy_hash = cache::fnv1a64(format!("{policy:?}").as_bytes());
    let mut file_cache = cache_path
        .as_ref()
        .map(|p| cache::Cache::load(p, policy_hash));
    let (report, cache_hits) = match analyze_workspace_cached(&root, &policy, file_cache.as_mut()) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(err, "orex analyze: {e}");
            return CliOutcome::Error;
        }
    };
    if let (Some(path), Some(c)) = (&cache_path, &file_cache) {
        if let Err(e) = c.save(path) {
            let _ = writeln!(
                err,
                "orex analyze: cache not saved: {}: {}",
                path.display(),
                e
            );
            // A cache write failure costs speed, not correctness.
        }
        let _ = writeln!(
            err,
            "orex analyze: cache: reused {cache_hits}/{} file analyses",
            report.files_scanned
        );
    }

    let rendered = match format.as_str() {
        "json" => report.render_json(),
        "sarif" => sarif::render_sarif(&report),
        _ => report.render_text(),
    };
    match &output {
        Some(path) => {
            if let Err(e) = fs::write(path, &rendered) {
                let _ = writeln!(err, "orex analyze: {}: {}", path.display(), e);
                return CliOutcome::Error;
            }
            // Keep the human summary visible in CI logs.
            let _ = write!(err, "{}", report.render_text());
        }
        None => {
            let _ = write!(out, "{rendered}");
        }
    }

    if report.findings.is_empty() {
        CliOutcome::Clean
    } else {
        CliOutcome::Violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_path_is_slash_separated() {
        let root = Path::new("/a/b");
        assert_eq!(rel_path(root, Path::new("/a/b/c/d.rs")), "c/d.rs");
    }

    #[test]
    fn missing_policy_is_empty_policy() {
        let p = load_policy(Path::new("/nonexistent-dir-for-orex-test")).unwrap();
        assert!(p.excludes.is_empty());
        assert_eq!(p.budget_todo, None);
    }
}
