//! A brace-tree pass over the token stream: `fn` items with their
//! enclosing `mod` / `impl` / `trait` context, parameter names, and
//! body token ranges.
//!
//! This is deliberately *not* an AST. The interprocedural rules need
//! exactly four structural facts a flat token scan cannot give them:
//! which function a token belongs to, what that function is called
//! (qualified by its impl type so `Server::stop` and `Fleet::stop`
//! stay distinct), which parameter names map to which argument
//! positions, and where the body starts and ends so nested items can
//! be carved out. Everything else — trait resolution, type inference,
//! macro expansion — is out of scope; the call graph built on top is
//! conservative about those (see the README caveats).

use crate::lexer::{LexedFile, Token, TokenKind};

/// One `fn` item found in a file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// The surrounding `impl TYPE` / `trait NAME` qualifier, when the
    /// fn is a method or default trait method.
    pub qualifier: Option<String>,
    /// Inline `mod` path from the file root down to the item.
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Whether the first parameter is (some form of) `self`.
    pub has_self: bool,
    /// Non-`self` parameter names by position. `None` for patterns the
    /// parser does not name (tuples, nested destructuring).
    pub params: Vec<Option<String>>,
    /// Token index range of the body `{ ... }`, inclusive of both
    /// braces. `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Type::name` when the fn has a qualifier, else the bare name.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Extracts every `fn` item from a lexed file. `mask` marks tokens
/// inside `#[cfg(test)]` regions (see [`crate::rules`]); masked fns are
/// skipped entirely — test helpers are not part of the production call
/// graph.
pub fn parse_fns(lexed: &LexedFile, mask: &[bool]) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let mut items = Vec::new();

    // Context stacks: (name, brace depth the scope closes below).
    let mut mods: Vec<(String, i32)> = Vec::new();
    let mut quals: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            while mods.last().is_some_and(|(_, d)| depth < *d) {
                mods.pop();
            }
            while quals.last().is_some_and(|(_, d)| depth < *d) {
                quals.pop();
            }
            i += 1;
            continue;
        }
        if mask[i] {
            i += 1;
            continue;
        }
        if t.is_ident("mod")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct('{'))
        {
            mods.push((toks[i + 1].text.clone(), depth + 1));
            depth += 1;
            i += 3;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            if let Some((qual, body_open)) = scan_scope_qualifier(toks, i) {
                quals.push((qual, depth + 1));
                depth += 1;
                i = body_open + 1;
                continue;
            }
        }
        // `fn name` — but not the `fn` of a fn-pointer type (`fn(`),
        // and the name must be a real identifier.
        if t.is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                if let Some(mut item) = parse_fn_at(toks, i, name_tok) {
                    item.qualifier = quals.last().map(|(q, _)| q.clone());
                    item.module = mods.iter().map(|(m, _)| m.clone()).collect();
                    // Continue scanning *inside* the body so nested fns
                    // (and closures' contents) are still visited; the
                    // brace bookkeeping above keeps the scopes honest.
                    i += 2;
                    items.push(item);
                    continue;
                }
            }
        }
        i += 1;
    }
    items
}

/// At `impl`/`trait` token `at`, finds the implementing type (or trait
/// name) and the index of the body-opening `{`. Returns `None` for
/// forms without a body (e.g. `impl Trait for Type;` never exists, but
/// a parse dead-end must not wedge the scanner).
fn scan_scope_qualifier(toks: &[Token], at: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut last_ident: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    let mut saw_where = false;
    let mut j = at + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0); // `->` arrives as `-` `>`
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if angle == 0 && paren == 0 {
            if t.is_punct('{') {
                let qual = after_for.or(last_ident)?.to_string();
                return Some((qual, j));
            }
            if t.is_punct(';') {
                return None;
            }
            if t.is_ident("for") {
                saw_for = true;
            } else if t.is_ident("where") {
                // The qualifier is decided; idents in the where clause
                // are bounds, not the implementing type.
                saw_where = true;
            } else if !saw_where
                && t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "unsafe")
            {
                last_ident = Some(&t.text);
                if saw_for && after_for.is_none() {
                    after_for = Some(&t.text);
                } else if saw_for {
                    // keep the *last* path segment after `for`:
                    // `impl fmt::Display for error::ServerError`.
                    after_for = Some(&t.text);
                }
            }
        }
        j += 1;
    }
    None
}

/// Parses one fn item starting at the `fn` keyword (`toks[at]`), with
/// `name_tok` already identified. Returns `None` when this is not
/// actually an item (e.g. mis-lexed code).
fn parse_fn_at(toks: &[Token], at: usize, name_tok: &Token) -> Option<FnItem> {
    // Skip generics between name and `(`.
    let mut j = at + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 && t.is_punct('(') {
            break;
        } else if angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
            return None; // no parameter list: not a fn item
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }

    // Parameter list: j is the opening `(`.
    let (has_self, params, close) = parse_params(toks, j)?;

    // Scan past return type / where clause to the body `{` or a `;`.
    let mut k = close + 1;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0); // `->` lexes as `-` `>`
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if angle == 0 && paren == 0 {
            if t.is_punct(';') {
                return Some(FnItem {
                    name: name_tok.text.clone(),
                    qualifier: None,
                    module: Vec::new(),
                    line: toks[at].line,
                    col: toks[at].col,
                    has_self,
                    params,
                    body: None,
                });
            }
            if t.is_punct('{') {
                let end = matching_brace(toks, k)?;
                return Some(FnItem {
                    name: name_tok.text.clone(),
                    qualifier: None,
                    module: Vec::new(),
                    line: toks[at].line,
                    col: toks[at].col,
                    has_self,
                    params,
                    body: Some((k, end)),
                });
            }
        }
        k += 1;
    }
    None
}

/// Parses the parameter list opening at `open` (a `(`): returns
/// (has_self, names-by-position, index of the closing `)`).
fn parse_params(toks: &[Token], open: usize) -> Option<(bool, Vec<Option<String>>, usize)> {
    let close = matching_paren(toks, open)?;
    let mut has_self = false;
    let mut params = Vec::new();

    let mut start = open + 1;
    let mut depth = 0i32;
    let mut j = open + 1;
    while j <= close {
        let t = &toks[j];
        let boundary = j == close || (depth == 0 && t.is_punct(','));
        if boundary {
            if start < j {
                match classify_param(&toks[start..j]) {
                    ParamKind::SelfParam => has_self = true,
                    ParamKind::Named(name) => params.push(Some(name)),
                    ParamKind::Unnamed => params.push(None),
                }
            }
            start = j + 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            // Clamp at zero: the `>` of a `->` return arrow inside an
            // `impl Fn(..) -> ..` parameter type has no matching `<`.
            depth = (depth - 1).max(0);
        }
        j += 1;
    }
    Some((has_self, params, close))
}

enum ParamKind {
    SelfParam,
    Named(String),
    Unnamed,
}

/// Classifies one parameter's tokens (between commas): `self` forms,
/// a nameable `ident: Type`, or an unnamed pattern.
fn classify_param(toks: &[Token]) -> ParamKind {
    // `self`, `&self`, `&mut self`, `mut self`, `self: Arc<Self>`.
    let mut lead = 0usize;
    while toks
        .get(lead)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime)
    {
        lead += 1;
    }
    match toks.get(lead) {
        Some(t) if t.is_ident("self") => ParamKind::SelfParam,
        Some(t) if t.kind == TokenKind::Ident => {
            // Named only when the ident is directly followed by `:`
            // (an `ident: Type` binding, not a tuple/struct pattern).
            if toks.get(lead + 1).is_some_and(|n| n.is_punct(':')) {
                ParamKind::Named(t.text.clone())
            } else {
                ParamKind::Unnamed
            }
        }
        _ => ParamKind::Unnamed,
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn fns(src: &str) -> Vec<FnItem> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        parse_fns(&lexed, &mask)
    }

    #[test]
    fn free_fn_with_params_and_body() {
        let items = fns("pub fn handle(req: Request, n: usize) -> Response { body(n) }");
        assert_eq!(items.len(), 1);
        let f = &items[0];
        assert_eq!(f.name, "handle");
        assert_eq!(f.qualifier, None);
        assert!(!f.has_self);
        assert_eq!(
            f.params,
            vec![Some("req".to_string()), Some("n".to_string())]
        );
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_methods_get_the_type_qualifier() {
        let items = fns(
            "impl Server {\n    fn start(&self) {}\n    pub fn stop(&mut self, hard: bool) {}\n}\n\
             impl fmt::Display for ServerError {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}",
        );
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].qualified_name(), "Server::start");
        assert!(items[0].has_self);
        assert_eq!(items[1].qualified_name(), "Server::stop");
        assert_eq!(items[1].params, vec![Some("hard".to_string())]);
        assert_eq!(items[2].qualified_name(), "ServerError::fmt");
    }

    #[test]
    fn generic_impls_and_where_clauses() {
        let items = fns(
            "impl<T: Clone> Cache<T> where T: Send {\n    fn get<Q: Hash>(&self, k: &Q) -> Option<T> { None }\n}",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].qualified_name(), "Cache::get");
        assert_eq!(items[0].params, vec![Some("k".to_string())]);
    }

    #[test]
    fn trait_decls_and_default_methods() {
        let items = fns(
            "trait Handler {\n    fn call(&self, req: u32) -> u32;\n    fn twice(&self, req: u32) -> u32 { self.call(req) * 2 }\n}",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].qualified_name(), "Handler::call");
        assert!(items[0].body.is_none());
        assert!(items[1].body.is_some());
    }

    #[test]
    fn nested_fns_and_modules() {
        let items = fns(
            "mod net {\n    pub fn outer() {\n        fn inner(x: u32) -> u32 { x }\n        inner(1);\n    }\n}",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        assert_eq!(items[0].module, vec!["net".to_string()]);
        assert_eq!(items[1].name, "inner");
        // inner's body nests inside outer's.
        let (os, oe) = items[0].body.unwrap();
        let (is_, ie) = items[1].body.unwrap();
        assert!(os < is_ && ie < oe);
    }

    #[test]
    fn cfg_test_fns_are_skipped() {
        let items = fns(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "prod");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = fns("fn real(cb: fn(u32) -> u32) -> fn() { cb(1); todo }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
        assert_eq!(items[0].params, vec![Some("cb".to_string())]);
    }

    #[test]
    fn tuple_patterns_are_unnamed_params() {
        let items = fns("fn f((a, b): (u32, u32), mut n: usize) {}");
        assert_eq!(items[0].params, vec![None, Some("n".to_string())]);
    }
}
