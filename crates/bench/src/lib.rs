//! # orex-bench — benchmark harness reproducing the paper's evaluation
//!
//! One binary per table/figure of Section 6 (run with
//! `cargo run -p orex-bench --release --bin <name> [-- --scale 1.0]`)
//! plus Criterion micro-benchmarks for the timing kernels
//! (`cargo bench -p orex-bench`). This library holds the shared plumbing:
//! CLI parsing, dataset construction, query selection and result output.

#![warn(missing_docs)]

use orex_core::{ObjectRankSystem, SystemConfig};
use orex_datagen::{Dataset, Preset};
use orex_graph::TransferRates;
use orex_ir::Query;
use std::io::Write as _;

/// Returns the value following `--name` in the process arguments.
pub fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// True when `--name` appears as a bare flag.
pub fn arg_flag(name: &str) -> bool {
    let flag = format!("--{name}");
    std::env::args().any(|a| a == flag)
}

/// Parses `--scale` (fraction of the Table 1 dataset sizes), with a
/// per-binary default.
pub fn scale_arg(default: f64) -> f64 {
    arg_value("scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Generates a preset and wraps it into a ready system.
///
/// Returns the system, the ground-truth rates, and the suggested keywords.
pub fn build_system(
    preset: Preset,
    scale: f64,
    config: SystemConfig,
) -> (ObjectRankSystem, TransferRates, Vec<String>) {
    let t = std::time::Instant::now();
    let dataset = preset.generate(scale);
    let (nodes, edges) = dataset.sizes();
    eprintln!(
        "[{}] generated at scale {scale}: {nodes} nodes, {edges} edges ({:.1?})",
        preset.name(),
        t.elapsed()
    );
    let gt = dataset.ground_truth.clone();
    let keywords = dataset.suggested_keywords.clone();
    let t = std::time::Instant::now();
    let system = ObjectRankSystem::new(dataset.graph, dataset.ground_truth, config);
    eprintln!(
        "[{}] system built (index + transfer graph + global rank) in {:.1?}",
        preset.name(),
        t.elapsed()
    );
    (system, gt, keywords)
}

/// Picks `n` single-keyword benchmark queries whose document frequency in
/// the system's index falls in a healthy range (enough matches to rank,
/// few enough to be selective).
pub fn pick_queries(system: &ObjectRankSystem, keywords: &[String], n: usize) -> Vec<Query> {
    let mut scored: Vec<(u32, &String)> = keywords
        .iter()
        .filter_map(|kw| {
            let term = system.index().analyzer().analyze_term(kw)?;
            let tid = system.index().term_id(&term)?;
            let df = system.index().df(tid);
            (df >= 3).then_some((df, kw))
        })
        .collect();
    // Mid-df keywords first: sort by |df - median|.
    scored.sort_by_key(|&(df, _)| df);
    let median = scored.get(scored.len() / 2).map_or(0, |&(df, _)| df);
    scored.sort_by_key(|&(df, kw)| (df.abs_diff(median), kw.clone()));
    scored
        .into_iter()
        .take(n)
        .map(|(_, kw)| Query::parse(kw))
        .collect()
}

/// Two-keyword combinations of the picked queries (for the multi-keyword
/// rows of Table 2).
pub fn pick_multi_queries(system: &ObjectRankSystem, keywords: &[String], n: usize) -> Vec<Query> {
    let singles = pick_queries(system, keywords, n * 2);
    singles
        .chunks(2)
        .take(n)
        .filter(|c| c.len() == 2)
        .map(|c| Query::new([c[0].keywords[0].clone(), c[1].keywords[0].clone()]))
        .collect()
}

/// Writes a JSON record under `results/<name>.json` (relative to the
/// working directory), creating the directory as needed. Used so
/// EXPERIMENTS.md numbers are regenerable artifacts, not hand-copies.
///
/// Every record gets a `"telemetry"` key holding the global recorder's
/// snapshot at write time, so the engine-level counters behind each
/// figure (iterations, cache hit rates, per-stage timings) land in the
/// same artifact as the figure's numbers.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut value = value.clone();
    if let Some(map) = value.as_object_mut() {
        map.insert(
            "telemetry".to_string(),
            telemetry_json(&orex_telemetry::global().snapshot()),
        );
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(&value).unwrap());
        eprintln!("wrote {}", path.display());
    }
    write_trace(name);
}

/// When `--trace-out` is present, drains the global tracer and writes the
/// collected spans next to the figure's results JSON: Chrome trace-event
/// JSON at `results/<name>.trace.json` by default, folded stacks at
/// `results/<name>.trace.folded` with `--trace-out folded`. The span ring
/// is bounded (4096 spans), so long benchmark runs keep the most recent
/// spans — enough for one full query's tree, which is what the artifact
/// is for. Called by [`write_json`], so every figure binary accepts the
/// flag.
pub fn write_trace(name: &str) {
    if !arg_flag("trace-out") {
        return;
    }
    let records = orex_telemetry::tracer().drain();
    if records.is_empty() {
        eprintln!("[trace] no spans collected (is OREX_TELEMETRY=0 set?)");
        return;
    }
    let folded = arg_value("trace-out").is_some_and(|v| v == "folded");
    let (ext, rendered) = if folded {
        (
            "trace.folded",
            orex_telemetry::export::to_folded_stacks(&records),
        )
    } else {
        (
            "trace.json",
            orex_telemetry::export::to_chrome_trace(&records),
        )
    };
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.{ext}"));
    if std::fs::write(&path, rendered.as_bytes()).is_ok() {
        eprintln!("wrote {} ({} spans)", path.display(), records.len());
    }
}

/// Converts a telemetry snapshot into a JSON value (the telemetry crate
/// is dependency-free, so the conversion lives on the bench side).
pub fn telemetry_json(snapshot: &orex_telemetry::Snapshot) -> serde_json::Value {
    let mut counters = serde_json::Map::new();
    for (name, &v) in snapshot.counters.iter() {
        counters.insert(name.clone(), serde_json::Value::from(v));
    }
    let mut gauges = serde_json::Map::new();
    for (name, &v) in snapshot.gauges.iter() {
        gauges.insert(name.clone(), serde_json::Value::from(v));
    }
    let mut histograms = serde_json::Map::new();
    for (name, h) in snapshot.histograms.iter() {
        let buckets: Vec<serde_json::Value> = h
            .buckets
            .iter()
            .map(|&b| serde_json::Value::from(b))
            .collect();
        histograms.insert(
            name.clone(),
            serde_json::json!({
                "count": h.count,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
                "mean": h.mean,
                "p50": h.p50,
                "p95": h.p95,
                "buckets": serde_json::Value::Array(buckets),
            }),
        );
    }
    serde_json::json!({
        "counters": serde_json::Value::Object(counters),
        "gauges": serde_json::Value::Object(gauges),
        "histograms": serde_json::Value::Object(histograms),
    })
}

/// Formats a duration in seconds with 4 significant digits.
pub fn secs(d: std::time::Duration) -> f64 {
    (d.as_secs_f64() * 1e4).round() / 1e4
}

/// A tiny fixed-seed xorshift for query/user shuffling inside binaries
/// (keeps binaries deterministic without threading `rand` everywhere).
#[derive(Clone, Debug)]
pub struct MiniRng(u64);

impl MiniRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform index below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Convenience sizes accessor for binaries.
pub fn dataset_sizes(d: &Dataset) -> (usize, usize) {
    d.sizes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_picking_filters_by_df() {
        let (system, _, keywords) = build_system(Preset::DblpTop, 0.01, SystemConfig::default());
        let qs = pick_queries(&system, &keywords, 4);
        assert!(!qs.is_empty());
        for q in &qs {
            assert_eq!(q.keywords.len(), 1);
        }
    }

    #[test]
    fn multi_queries_have_two_keywords() {
        let (system, _, keywords) = build_system(Preset::DblpTop, 0.01, SystemConfig::default());
        let qs = pick_multi_queries(&system, &keywords, 2);
        for q in &qs {
            assert_eq!(q.keywords.len(), 2);
        }
    }

    #[test]
    fn mini_rng_deterministic() {
        let mut a = MiniRng::new(7);
        let mut b = MiniRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let idx = a.below(10);
        assert!(idx < 10);
    }
}
