//! HTTP load generator for `orex serve`.
//!
//! Hammers a server with a mixed interactive workload — `POST /query`
//! (drawn from a small keyword pool so the result cache gets hits),
//! `GET /explain/<session>/<node>` on the top result, and
//! `POST /feedback/<session>` — from many concurrent connections, then
//! reports a per-endpoint RED summary (request count, rate, 5xx
//! errors, latency percentiles) as the usual results JSON
//! (`results/loadgen.json`).
//!
//! Two modes:
//! - default: spawns an in-process server on an ephemeral loopback port,
//!   runs the workload, and drains it with a graceful shutdown — the
//!   results JSON then also carries the server-side telemetry
//!   (`server.request_us`, cache hit/miss counters) because server and
//!   client share the process-global recorder;
//! - `--addr HOST:PORT`: hammers an externally started `orex serve`
//!   (the CI `server-smoke` job), regenerating the same preset locally
//!   only to learn its suggested keywords.
//!
//! After the workload it scrapes `GET /logs` while the server is still
//! up, counting `server.access` records and surfacing any ERROR-level
//! record the status codes may have hidden.
//!
//! Exits nonzero on any dropped connection, 5xx response, ERROR-level
//! log record, or burning SLO (scraped from `/debug/status` while the
//! server is still up).
//!
//! Run: `cargo run -p orex-bench --release --bin loadgen
//!       [-- --connections 64 --rounds 3 --scale 0.05 [--addr H:P]
//!        [--multi PCT]]`
//!
//! `--multi PCT` makes PCT percent of queries two-keyword combinations
//! drawn from the pool — against a server started with `--precompute`
//! these are answered by the exact linear combination of precomputed
//! vectors, and the results JSON reports how many responses carried
//! `"combined": true`.

use orex_bench::{arg_value, build_system, pick_queries, scale_arg, write_json};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_server::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Op {
    Query,
    Explain,
    Feedback,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Query => "query",
            Op::Explain => "explain",
            Op::Feedback => "feedback",
        }
    }
}

struct Sample {
    op: Op,
    status: u16,
    latency_us: u64,
}

#[derive(Default)]
struct Tally {
    samples: Vec<Sample>,
    dropped: usize,
    /// Responses answered by linear combination of precomputed vectors
    /// (`"combined": true`) — nonzero only when the server was started
    /// with `--precompute`.
    combined: usize,
}

/// One request over a fresh connection (the server closes per request).
/// Returns the status and body, or `None` when the connection dropped.
fn request(addr: SocketAddr, raw: &[u8]) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(raw).ok()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response).ok()?;
    let text = String::from_utf8_lossy(&response);
    let status: u16 = text.split_whitespace().nth(1)?.parse().ok()?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, body))
}

fn get(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Option<(u16, String)> {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn timed(
    tally: &Mutex<Tally>,
    op: Op,
    reply: Option<(u16, String)>,
    start: Instant,
) -> Option<String> {
    let latency_us = start.elapsed().as_micros() as u64;
    let mut tally = tally.lock().unwrap();
    match reply {
        Some((status, body)) => {
            tally.samples.push(Sample {
                op,
                status,
                latency_us,
            });
            (status == 200).then_some(body)
        }
        None => {
            tally.dropped += 1;
            None
        }
    }
}

/// One client's workload: query, usually explain the top hit, then one
/// feedback round — sessions and picks parsed straight off the wire.
/// `multi` percent of queries combine two pool keywords, exercising the
/// precomputed-vector combination path on a `--precompute` server.
fn run_client(
    addr: SocketAddr,
    keywords: &[String],
    rounds: usize,
    multi: usize,
    id: usize,
    tally: &Mutex<Tally>,
) {
    for round in 0..rounds {
        let keyword = &keywords[(id + round) % keywords.len()];
        let query_text = if keywords.len() > 1 && (id + round) % 100 < multi {
            let second = &keywords[(id + round + 1) % keywords.len()];
            format!("{keyword} {second}")
        } else {
            keyword.clone()
        };
        let t = Instant::now();
        let reply = post(
            addr,
            "/query",
            &format!("{{\"query\": \"{query_text}\", \"k\": 5}}"),
        );
        let Some(body) = timed(tally, Op::Query, reply, t) else {
            continue;
        };
        let Ok(payload) = serde_json::from_str(&body) else {
            continue;
        };
        if payload.get("combined").and_then(|v| v.as_bool()) == Some(true) {
            tally.lock().unwrap().combined += 1;
        }
        let session = payload.get("session").and_then(|v| v.as_u64());
        let node = payload
            .get("results")
            .and_then(|r| r.as_array())
            .and_then(|r| r.first())
            .and_then(|r| r.get("node"))
            .and_then(|n| n.as_u64());
        let (Some(session), Some(node)) = (session, node) else {
            continue;
        };
        // 2-in-3 clients inspect an explanation before giving feedback,
        // mirroring the interactive loop; the rest go straight to it.
        if !(id + round).is_multiple_of(3) {
            let t = Instant::now();
            let reply = get(addr, &format!("/explain/{session}/{node}"));
            timed(tally, Op::Explain, reply, t);
        }
        let t = Instant::now();
        let reply = post(
            addr,
            &format!("/feedback/{session}"),
            &format!("{{\"objects\": [{node}], \"k\": 5}}"),
        );
        timed(tally, Op::Feedback, reply, t);
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let connections: usize = arg_value("connections")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let rounds: usize = arg_value("rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let multi: usize = arg_value("multi")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
        .min(100);
    let scale = scale_arg(0.05);
    let preset_name = arg_value("preset").unwrap_or_else(|| "dblp-top".into());
    let Some(preset) = Preset::parse(&preset_name) else {
        eprintln!("loadgen: unknown preset '{preset_name}'");
        std::process::exit(2);
    };
    let external_addr = arg_value("addr");
    let mode = if external_addr.is_some() {
        "external"
    } else {
        "in-process"
    };

    // Keyword pool: small on purpose, so concurrent clients collide on
    // the same normalized queries and exercise the result cache.
    let (keywords, server) = if external_addr.is_some() {
        // External server: it owns the system; we only need the
        // deterministic generator's keyword suggestions.
        let dataset = preset.generate(scale);
        (dataset.suggested_keywords, None)
    } else {
        let (system, _, kws) = build_system(preset, scale, SystemConfig::default());
        let queries = pick_queries(&system, &kws, 4);
        let keywords: Vec<String> = queries.iter().map(|q| q.keywords[0].clone()).collect();
        let server = Server::bind(
            Arc::new(system),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 8,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        (keywords, Some(server))
    };
    let keywords: Vec<String> = keywords.into_iter().take(4).collect();
    assert!(!keywords.is_empty(), "no keywords to query");

    let (addr, shutdown, server_thread) = match server {
        Some(server) => {
            let addr = server.local_addr().expect("local addr");
            let handle = server.shutdown_handle();
            let thread = std::thread::spawn(move || server.run());
            (addr, Some(handle), Some(thread))
        }
        None => {
            let raw = external_addr.unwrap();
            let addr = raw
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .unwrap_or_else(|| {
                    eprintln!("loadgen: cannot resolve --addr '{raw}'");
                    std::process::exit(2);
                });
            (addr, None, None)
        }
    };
    eprintln!(
        "[loadgen] {connections} connections x {rounds} rounds against {addr} ({} keywords)",
        keywords.len()
    );

    let tally = Mutex::new(Tally::default());
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for id in 0..connections {
            let keywords = &keywords;
            let tally = &tally;
            scope.spawn(move || run_client(addr, keywords, rounds, multi, id, tally));
        }
    });
    let wall = wall.elapsed();

    // Scrape the structured event log while the server is still up: any
    // ERROR-level record is a server-side failure the status codes may
    // have hidden, and the access-log count cross-checks the client
    // tally (one `server.access` record per request we made).
    let (log_errors, access_records) = match get(addr, "/logs?level=info") {
        Some((200, body)) => {
            let mut errors = 0u64;
            let mut access = 0u64;
            for line in body.lines().filter(|l| !l.is_empty()) {
                let Ok(v) = serde_json::from_str(line) else {
                    continue;
                };
                if v.get("target").and_then(|t| t.as_str()) == Some("server.access") {
                    access += 1;
                }
                if v.get("level").and_then(|l| l.as_str()) == Some("ERROR") {
                    errors += 1;
                    eprintln!("[loadgen] server ERROR log: {line}");
                }
            }
            (errors, access)
        }
        other => {
            eprintln!("[loadgen] /logs scrape failed: {other:?}");
            (0, 0)
        }
    };

    // SLO burn-rate gate: scrape the status board while the server is
    // still up. A burning SLO (both burn-rate windows over 1.0) means
    // the workload ate error budget faster than the objective allows —
    // that fails the run even when no individual request failed hard.
    let burning_slos: Vec<String> = match get(addr, "/debug/status?format=json") {
        Some((200, body)) => serde_json::from_str(&body)
            .ok()
            .and_then(|v: serde_json::Value| {
                v.get("slos").and_then(|s| s.as_array()).map(|slos| {
                    slos.iter()
                        .filter(|s| s.get("burning").and_then(|b| b.as_bool()) == Some(true))
                        .filter_map(|s| s.get("name").and_then(|n| n.as_str()).map(String::from))
                        .collect()
                })
            })
            .unwrap_or_default(),
        other => {
            eprintln!("[loadgen] /debug/status scrape failed: {other:?}");
            Vec::new()
        }
    };
    for name in &burning_slos {
        eprintln!("[loadgen] SLO burning: {name}");
    }

    // Graceful shutdown of the in-process server: drains in-flight
    // requests; a clean Ok(()) is part of what CI asserts.
    let clean_shutdown = match (shutdown, server_thread) {
        (Some(handle), Some(thread)) => {
            handle.shutdown();
            thread.join().expect("server thread").is_ok()
        }
        _ => true,
    };

    let tally = tally.into_inner().unwrap();
    // Per-endpoint RED aggregation: latencies plus 5xx counts, keyed by
    // operation name.
    let mut by_op: BTreeMap<&'static str, (Vec<u64>, u64)> = BTreeMap::new();
    let mut statuses: BTreeMap<String, u64> = BTreeMap::new();
    let mut server_errors = 0u64;
    for s in &tally.samples {
        let entry = by_op.entry(s.op.name()).or_default();
        entry.0.push(s.latency_us);
        *statuses.entry(format!("{}", s.status)).or_insert(0) += 1;
        if s.status >= 500 {
            entry.1 += 1;
            server_errors += 1;
        }
    }

    let mut ops = serde_json::Map::new();
    for (op, (mut latencies, errors_5xx)) in by_op {
        latencies.sort_unstable();
        let rate_per_s = if wall.as_secs_f64() > 0.0 {
            latencies.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        println!(
            "{op:>9}: {:>5} requests ({rate_per_s:>6.1}/s)  {errors_5xx} 5xx  p50 {:>7}us  p95 {:>7}us  p99 {:>7}us  max {:>7}us",
            latencies.len(),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
            latencies.last().copied().unwrap_or(0),
        );
        ops.insert(
            op.to_string(),
            serde_json::json!({
                "requests": latencies.len() as u64,
                "rate_per_s": rate_per_s,
                "errors_5xx": errors_5xx,
                "p50_us": percentile(&latencies, 0.50),
                "p95_us": percentile(&latencies, 0.95),
                "p99_us": percentile(&latencies, 0.99),
                "max_us": latencies.last().copied().unwrap_or(0),
            }),
        );
    }
    let mut status_map = serde_json::Map::new();
    for (code, n) in &statuses {
        status_map.insert(code.clone(), serde_json::Value::from(*n));
    }
    println!(
        "   totals: {} requests in {:.2?}, {} dropped, {} server errors, {} logged errors, {} access-log records, {} combined responses, {} burning SLOs, clean shutdown: {clean_shutdown}",
        tally.samples.len(),
        wall,
        tally.dropped,
        server_errors,
        log_errors,
        access_records,
        tally.combined,
        burning_slos.len(),
    );

    write_json(
        "loadgen",
        &serde_json::json!({
            "connections": connections as u64,
            "rounds": rounds as u64,
            "multi_percent": multi as u64,
            "combined_responses": tally.combined as u64,
            "scale": scale,
            "mode": mode,
            "wall_seconds": wall.as_secs_f64(),
            "requests": tally.samples.len() as u64,
            "dropped": tally.dropped as u64,
            "server_errors": server_errors,
            "log_errors": log_errors,
            "access_log_records": access_records,
            "burning_slos": burning_slos.len() as u64,
            "clean_shutdown": clean_shutdown,
            "statuses": serde_json::Value::Object(status_map),
            "endpoints": serde_json::Value::Object(ops),
        }),
    );

    if tally.dropped > 0
        || server_errors > 0
        || log_errors > 0
        || !burning_slos.is_empty()
        || !clean_shutdown
    {
        eprintln!(
            "[loadgen] FAILED: drops, server errors, ERROR log records, or burning SLOs present"
        );
        std::process::exit(1);
    }
}
