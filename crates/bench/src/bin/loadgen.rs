//! HTTP load generator for `orex serve` and `orex route`.
//!
//! Hammers a server with a mixed interactive workload — `POST /query`
//! (drawn from a small keyword pool so the result cache gets hits),
//! `GET /explain/<session>/<node>` on the top result, and
//! `POST /feedback/<session>` — from many concurrent clients, then
//! reports a per-endpoint RED summary (request count, rate, 5xx
//! errors, latency percentiles) as the usual results JSON
//! (`results/loadgen.json`).
//!
//! Every client owns a pooled keep-alive `HttpClient` (the same one the
//! router's proxy hop uses), so a client's whole session rides one TCP
//! connection; the results JSON reports the aggregate connection-reuse
//! ratio and `--require-reuse F` turns it into a gate.
//!
//! Three modes:
//! - default: spawns an in-process server on an ephemeral loopback port,
//!   runs the workload, and drains it with a graceful shutdown — the
//!   results JSON then also carries the server-side telemetry
//!   (`server.request_us`, cache hit/miss counters) because server and
//!   client share the process-global recorder;
//! - `--addr HOST:PORT`: hammers an externally started `orex serve` or
//!   `orex route` fleet (the CI smoke jobs), regenerating the presets
//!   locally only to learn their suggested keywords;
//! - `--datasets NAME=PRESET:SCALE,...`: a mixed multi-dataset workload —
//!   each query carries a `dataset` field chosen zipfian-ly (`--zipf S`
//!   skews the mix), exercising the registry path; without `--addr` the
//!   in-process server serves the same specs from a `SystemRegistry`.
//!
//! After the workload it scrapes `GET /logs` while the server is still
//! up, counting access records and surfacing any ERROR-level record the
//! status codes may have hidden, and scrapes `/debug/status` for
//! burning SLOs — understanding both the single-server doc and the
//! router's fleet doc (burning SLOs inside `workers[i].status`).
//!
//! Exits nonzero on dropped connections or 5xx responses beyond
//! `--allow-errors N` (default 0), ERROR-level log records, burning
//! SLOs, a dirty shutdown, or a reuse ratio under `--require-reuse`.
//! Explain/feedback requests answered 404/503 count as `lost_sessions`,
//! not errors: after a worker crash those sessions are honestly gone,
//! which is graceful degradation, not failure.
//!
//! Run: `cargo run -p orex-bench --release --bin loadgen
//!       [-- --connections 64 --rounds 3 --scale 0.05 [--addr H:P]
//!        [--multi PCT] [--datasets SPEC,...] [--zipf S] [--think-ms N]
//!        [--require-reuse F] [--allow-errors N]]`

use orex_bench::{arg_value, build_system, pick_queries, scale_arg, write_json};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_server::{DatasetSpec, HttpClient, Server, ServerConfig, SystemRegistry};
use orex_telemetry::{SpanId, TraceContext, TraceId};
use std::collections::BTreeMap;
use std::net::ToSocketAddrs;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Op {
    Query,
    Explain,
    Feedback,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Query => "query",
            Op::Explain => "explain",
            Op::Feedback => "feedback",
        }
    }
}

struct Sample {
    op: Op,
    status: u16,
    latency_us: u64,
}

#[derive(Default)]
struct Tally {
    samples: Vec<Sample>,
    dropped: usize,
    /// Responses answered by linear combination of precomputed vectors
    /// (`"combined": true`) — nonzero only when the server was started
    /// with `--precompute`.
    combined: usize,
    /// Explain/feedback requests answered 404/503: the session's worker
    /// died and took the session with it. Reported, not failed.
    lost_sessions: usize,
    /// Aggregate keep-alive client stats across every client thread.
    http_requests: u64,
    http_connects: u64,
    http_reuses: u64,
}

/// One workload target dataset: the name queries carry and the keyword
/// pool drawn for it.
struct DatasetLoad {
    /// `dataset` field value; `None` for the single-dataset legacy mode
    /// (the field is omitted and the server uses its default).
    name: Option<String>,
    keywords: Vec<String>,
}

/// SplitMix64-style mixer: deterministic per-(client, round) randomness
/// without a PRNG dependency.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Cumulative zipfian thresholds over `n` ranks with exponent `s`:
/// rank `i` gets weight `1/(i+1)^s`.
fn zipf_thresholds(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Picks a rank from `thresholds` using hash `h` as the uniform draw.
fn zipf_pick(thresholds: &[f64], h: u64) -> usize {
    let u = (h % 1_000_000) as f64 / 1_000_000.0;
    thresholds
        .iter()
        .position(|t| u < *t)
        .unwrap_or(thresholds.len().saturating_sub(1))
}

fn timed(
    tally: &Mutex<Tally>,
    op: Op,
    reply: std::io::Result<orex_server::ClientResponse>,
    start: Instant,
) -> Option<String> {
    let latency_us = start.elapsed().as_micros() as u64;
    let mut tally = tally.lock().unwrap();
    match reply {
        Ok(response) => {
            let status = response.status;
            tally.samples.push(Sample {
                op,
                status,
                latency_us,
            });
            if op != Op::Query && (status == 404 || status == 503) {
                tally.lost_sessions += 1;
            }
            (status == 200).then(|| String::from_utf8_lossy(&response.body).into_owned())
        }
        Err(_) => {
            tally.dropped += 1;
            None
        }
    }
}

/// The workload every client runs: targets, mix, and pacing.
struct Plan {
    addr: String,
    datasets: Vec<DatasetLoad>,
    /// Cumulative zipfian thresholds over `datasets`.
    thresholds: Vec<f64>,
    rounds: usize,
    /// Percent of queries combining two pool keywords.
    multi: usize,
    /// Per-round think time.
    think: Duration,
}

/// One client's workload over one pooled keep-alive connection: pick a
/// dataset zipfian-ly, query it, usually explain the top hit, then one
/// feedback round — sessions and picks parsed straight off the wire.
/// `plan.multi` percent of queries combine two pool keywords,
/// exercising the precomputed-vector combination path on a
/// `--precompute` server.
fn run_client(plan: &Plan, id: usize, tally: &Mutex<Tally>) {
    let client = HttpClient::new(plan.addr.clone());
    for round in 0..plan.rounds {
        if round > 0 && !plan.think.is_zero() {
            std::thread::sleep(plan.think);
        }
        let h = mix(id as u64, round as u64);
        let ds = &plan.datasets[zipf_pick(&plan.thresholds, h)];
        let keyword = &ds.keywords[(h >> 20) as usize % ds.keywords.len()];
        let query_text = if ds.keywords.len() > 1 && (h >> 7) % 100 < plan.multi as u64 {
            let second = &ds.keywords[((h >> 20) as usize + 1) % ds.keywords.len()];
            format!("{keyword} {second}")
        } else {
            keyword.clone()
        };
        let body = match &ds.name {
            Some(name) => {
                format!("{{\"query\": \"{query_text}\", \"k\": 5, \"dataset\": \"{name}\"}}")
            }
            None => format!("{{\"query\": \"{query_text}\", \"k\": 5}}"),
        };
        // Every query carries its own sampled trace context, so the
        // server (or router, which re-injects downstream) records the
        // request under an id loadgen can later pull back out with
        // `orex trace --fleet`. The id is deterministic per (client,
        // round) — reruns reproduce the same trace ids.
        let context = TraceContext {
            trace: TraceId(mix(h, 0x10ad_10ad) | 1),
            parent: SpanId(mix(h, 1)),
            flags: TraceContext::SAMPLED,
        };
        let header_value = context.header_value();
        let t = Instant::now();
        let reply = client.request_with_headers(
            "POST",
            "/query",
            &[(TraceContext::HEADER, &header_value)],
            Some(body.as_bytes()),
        );
        let Some(body) = timed(tally, Op::Query, reply, t) else {
            continue;
        };
        let Ok(payload) = serde_json::from_str(&body) else {
            continue;
        };
        if payload.get("combined").and_then(|v| v.as_bool()) == Some(true) {
            tally.lock().unwrap().combined += 1;
        }
        let session = payload.get("session").and_then(|v| v.as_u64());
        let node = payload
            .get("results")
            .and_then(|r| r.as_array())
            .and_then(|r| r.first())
            .and_then(|r| r.get("node"))
            .and_then(|n| n.as_u64());
        let (Some(session), Some(node)) = (session, node) else {
            continue;
        };
        // 2-in-3 clients inspect an explanation before giving feedback,
        // mirroring the interactive loop; the rest go straight to it.
        if !(id + round).is_multiple_of(3) {
            let t = Instant::now();
            let reply = client.get(&format!("/explain/{session}/{node}"));
            timed(tally, Op::Explain, reply, t);
        }
        let t = Instant::now();
        let reply = client.post(
            &format!("/feedback/{session}"),
            &format!("{{\"objects\": [{node}], \"k\": 5}}"),
        );
        timed(tally, Op::Feedback, reply, t);
    }
    let mut tally = tally.lock().unwrap();
    tally.http_requests += client.requests();
    tally.http_connects += client.connects();
    tally.http_reuses += client.reuses();
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Burning SLO names from a `/debug/status?format=json` doc — either the
/// single-server shape (`slos` at top level) or the router's fleet
/// shape (`workers[i].status.slos`, prefixed with the worker index).
fn burning_slos_from(doc: &serde_json::Value) -> Vec<String> {
    fn collect(doc: &serde_json::Value, prefix: &str, out: &mut Vec<String>) {
        let Some(slos) = doc.get("slos").and_then(|s| s.as_array()) else {
            return;
        };
        for s in slos {
            if s.get("burning").and_then(|b| b.as_bool()) == Some(true) {
                if let Some(name) = s.get("name").and_then(|n| n.as_str()) {
                    out.push(format!("{prefix}{name}"));
                }
            }
        }
    }
    let mut out = Vec::new();
    collect(doc, "", &mut out);
    if let Some(workers) = doc.get("workers").and_then(|w| w.as_array()) {
        for worker in workers {
            let index = worker.get("index").and_then(|i| i.as_u64()).unwrap_or(0);
            if let Some(status) = worker.get("status") {
                collect(status, &format!("worker{index}:"), &mut out);
            }
        }
    }
    out
}

fn main() {
    let connections: usize = arg_value("connections")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let rounds: usize = arg_value("rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let multi: usize = arg_value("multi")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
        .min(100);
    let zipf: f64 = arg_value("zipf")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let think = Duration::from_millis(
        arg_value("think-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    );
    let require_reuse: Option<f64> = arg_value("require-reuse").and_then(|v| v.parse().ok());
    let allow_errors: usize = arg_value("allow-errors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let scale = scale_arg(0.05);
    let preset_name = arg_value("preset").unwrap_or_else(|| "dblp-top".into());
    let Some(preset) = Preset::parse(&preset_name) else {
        eprintln!("loadgen: unknown preset '{preset_name}'");
        std::process::exit(2);
    };
    let dataset_specs: Vec<DatasetSpec> = match arg_value("datasets") {
        None => Vec::new(),
        Some(raw) => raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                DatasetSpec::parse(s).unwrap_or_else(|e| {
                    eprintln!("loadgen: --datasets: {e}");
                    std::process::exit(2);
                })
            })
            .collect(),
    };
    let external_addr = arg_value("addr");
    let mode = if external_addr.is_some() {
        "external"
    } else {
        "in-process"
    };

    // Keyword pools: small on purpose, so concurrent clients collide on
    // the same normalized queries and exercise the result cache (and,
    // through the router, the same worker's cache).
    let (datasets, server) = if dataset_specs.is_empty() {
        if external_addr.is_some() {
            // External server: it owns the system; we only need the
            // deterministic generator's keyword suggestions.
            let dataset = preset.generate(scale);
            let keywords: Vec<String> = dataset.suggested_keywords.into_iter().take(4).collect();
            (
                vec![DatasetLoad {
                    name: None,
                    keywords,
                }],
                None,
            )
        } else {
            let (system, _, kws) = build_system(preset, scale, SystemConfig::default());
            let queries = pick_queries(&system, &kws, 4);
            let keywords: Vec<String> = queries.iter().map(|q| q.keywords[0].clone()).collect();
            let server = Server::bind(
                std::sync::Arc::new(system),
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    threads: 8,
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback");
            (
                vec![DatasetLoad {
                    name: None,
                    keywords,
                }],
                Some(server),
            )
        }
    } else {
        let loads: Vec<DatasetLoad> = dataset_specs
            .iter()
            .map(|spec| DatasetLoad {
                name: Some(spec.name.clone()),
                keywords: spec
                    .preset
                    .generate(spec.scale)
                    .suggested_keywords
                    .into_iter()
                    .take(4)
                    .collect(),
            })
            .collect();
        let server = if external_addr.is_some() {
            None
        } else {
            let registry =
                SystemRegistry::new(dataset_specs.clone(), 64, true).unwrap_or_else(|e| {
                    eprintln!("loadgen: {e}");
                    std::process::exit(2);
                });
            Some(
                Server::bind_registry(
                    registry,
                    ServerConfig {
                        addr: "127.0.0.1:0".into(),
                        threads: 8,
                        ..ServerConfig::default()
                    },
                )
                .expect("bind loopback"),
            )
        };
        (loads, server)
    };
    assert!(
        datasets.iter().all(|d| !d.keywords.is_empty()),
        "no keywords to query"
    );
    let thresholds = zipf_thresholds(datasets.len(), zipf);

    let (addr, shutdown, server_thread) = match server {
        Some(server) => {
            let addr = server.local_addr().expect("local addr").to_string();
            let handle = server.shutdown_handle();
            let thread = std::thread::spawn(move || server.run());
            (addr, Some(handle), Some(thread))
        }
        None => {
            let raw = external_addr.unwrap();
            if raw
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .is_none()
            {
                eprintln!("loadgen: cannot resolve --addr '{raw}'");
                std::process::exit(2);
            }
            (raw, None, None)
        }
    };
    let dataset_names: Vec<String> = datasets.iter().filter_map(|d| d.name.clone()).collect();
    eprintln!(
        "[loadgen] {connections} clients x {rounds} rounds against {addr} ({} dataset(s), zipf {zipf})",
        datasets.len()
    );

    let tally = Mutex::new(Tally::default());
    let probe = HttpClient::new(addr.clone());
    let plan = Plan {
        addr: addr.clone(),
        datasets,
        thresholds,
        rounds,
        multi,
        think,
    };
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for id in 0..connections {
            let plan = &plan;
            let tally = &tally;
            scope.spawn(move || run_client(plan, id, tally));
        }
    });
    let wall = wall.elapsed();

    // Scrape the structured event log while the server is still up: any
    // ERROR-level record is a server-side failure the status codes may
    // have hidden, and the access-log count cross-checks the client
    // tally. Against a router the records carry a `worker` field.
    let (log_errors, access_records) = match probe.get("/logs?level=info") {
        Ok(r) if r.status == 200 => {
            let body = String::from_utf8_lossy(&r.body).into_owned();
            let mut errors = 0u64;
            let mut access = 0u64;
            for line in body.lines().filter(|l| !l.is_empty()) {
                let Ok(v) = serde_json::from_str(line) else {
                    continue;
                };
                if matches!(
                    v.get("target").and_then(|t| t.as_str()),
                    Some("server.access" | "router.access")
                ) {
                    access += 1;
                }
                if v.get("level").and_then(|l| l.as_str()) == Some("ERROR") {
                    errors += 1;
                    eprintln!("[loadgen] server ERROR log: {line}");
                }
            }
            (errors, access)
        }
        other => {
            eprintln!("[loadgen] /logs scrape failed: {other:?}");
            (0, 0)
        }
    };

    // SLO burn-rate gate: scrape the status board while the server is
    // still up. A burning SLO (both burn-rate windows over 1.0) means
    // the workload ate error budget faster than the objective allows —
    // that fails the run even when no individual request failed hard.
    // Understands both the single-server and router fleet doc shapes.
    let burning_slos: Vec<String> = match probe.get("/debug/status?format=json") {
        Ok(r) if r.status == 200 => serde_json::from_str(&String::from_utf8_lossy(&r.body))
            .map(|v: serde_json::Value| burning_slos_from(&v))
            .unwrap_or_default(),
        other => {
            eprintln!("[loadgen] /debug/status scrape failed: {other:?}");
            Vec::new()
        }
    };
    for name in &burning_slos {
        eprintln!("[loadgen] SLO burning: {name}");
    }

    // Graceful shutdown of the in-process server: drains in-flight
    // requests; a clean Ok(()) is part of what CI asserts.
    let clean_shutdown = match (shutdown, server_thread) {
        (Some(handle), Some(thread)) => {
            handle.shutdown();
            thread.join().expect("server thread").is_ok()
        }
        _ => true,
    };

    let tally = tally.into_inner().unwrap();
    let reuse_ratio = if tally.http_requests > 0 {
        tally.http_reuses as f64 / tally.http_requests as f64
    } else {
        0.0
    };
    // Per-endpoint RED aggregation: latencies plus 5xx counts, keyed by
    // operation name. Lost sessions (404/503 on explain/feedback after
    // a worker died) are tracked separately, not as server errors.
    let mut by_op: BTreeMap<&'static str, (Vec<u64>, u64)> = BTreeMap::new();
    let mut statuses: BTreeMap<String, u64> = BTreeMap::new();
    let mut server_errors = 0u64;
    for s in &tally.samples {
        let entry = by_op.entry(s.op.name()).or_default();
        entry.0.push(s.latency_us);
        *statuses.entry(format!("{}", s.status)).or_insert(0) += 1;
        let lost_session = s.op != Op::Query && (s.status == 404 || s.status == 503);
        if s.status >= 500 && !lost_session {
            entry.1 += 1;
            server_errors += 1;
        }
    }

    let mut query_p99 = 0u64;
    let mut ops = serde_json::Map::new();
    for (op, (mut latencies, errors_5xx)) in by_op {
        latencies.sort_unstable();
        let rate_per_s = if wall.as_secs_f64() > 0.0 {
            latencies.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        if op == "query" {
            query_p99 = percentile(&latencies, 0.99);
        }
        println!(
            "{op:>9}: {:>5} requests ({rate_per_s:>6.1}/s)  {errors_5xx} 5xx  p50 {:>7}us  p95 {:>7}us  p99 {:>7}us  max {:>7}us",
            latencies.len(),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
            latencies.last().copied().unwrap_or(0),
        );
        ops.insert(
            op.to_string(),
            serde_json::json!({
                "requests": latencies.len() as u64,
                "rate_per_s": rate_per_s,
                "errors_5xx": errors_5xx,
                "p50_us": percentile(&latencies, 0.50),
                "p95_us": percentile(&latencies, 0.95),
                "p99_us": percentile(&latencies, 0.99),
                "max_us": latencies.last().copied().unwrap_or(0),
            }),
        );
    }
    let mut status_map = serde_json::Map::new();
    for (code, n) in &statuses {
        status_map.insert(code.clone(), serde_json::Value::from(*n));
    }
    println!(
        "   totals: {} requests in {:.2?}, {} dropped, {} server errors, {} lost sessions, {} logged errors, {} access-log records, {} combined responses, {} burning SLOs, reuse {:.1}% ({} connects / {} requests), clean shutdown: {clean_shutdown}",
        tally.samples.len(),
        wall,
        tally.dropped,
        server_errors,
        tally.lost_sessions,
        log_errors,
        access_records,
        tally.combined,
        burning_slos.len(),
        reuse_ratio * 100.0,
        tally.http_connects,
        tally.http_requests,
    );

    let mut dataset_list = Vec::new();
    for name in &dataset_names {
        dataset_list.push(serde_json::Value::from(name.clone()));
    }
    write_json(
        "loadgen",
        &serde_json::json!({
            "connections": connections as u64,
            "rounds": rounds as u64,
            "multi_percent": multi as u64,
            "combined_responses": tally.combined as u64,
            "scale": scale,
            "mode": mode,
            "datasets": serde_json::Value::from(dataset_list),
            "zipf": zipf,
            "think_ms": think.as_millis() as u64,
            "wall_seconds": wall.as_secs_f64(),
            "requests": tally.samples.len() as u64,
            "dropped": tally.dropped as u64,
            "server_errors": server_errors,
            "lost_sessions": tally.lost_sessions as u64,
            "log_errors": log_errors,
            "access_log_records": access_records,
            "burning_slos": burning_slos.len() as u64,
            "clean_shutdown": clean_shutdown,
            "query_p99_us": query_p99,
            "keepalive_requests": tally.http_requests,
            "keepalive_connects": tally.http_connects,
            "keepalive_reuses": tally.http_reuses,
            "keepalive_reuse_ratio": reuse_ratio,
            "statuses": serde_json::Value::Object(status_map),
            "endpoints": serde_json::Value::Object(ops),
        }),
    );

    let hard_errors = tally.dropped + server_errors as usize;
    let mut failed = false;
    if hard_errors > allow_errors {
        eprintln!(
            "[loadgen] FAILED: {hard_errors} drops/server errors exceed --allow-errors {allow_errors}"
        );
        failed = true;
    }
    if log_errors > 0 || !burning_slos.is_empty() || !clean_shutdown {
        eprintln!("[loadgen] FAILED: ERROR log records, burning SLOs, or dirty shutdown");
        failed = true;
    }
    if let Some(required) = require_reuse {
        if reuse_ratio < required {
            eprintln!(
                "[loadgen] FAILED: keep-alive reuse {reuse_ratio:.3} below required {required:.3}"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
