//! Diagnostic: trace the rates vector through structure-only training
//! rounds on one query, printing per-type flows and rates.

use orex_bench::{build_system, pick_queries, scale_arg};
use orex_core::{QuerySession, SystemConfig};
use orex_datagen::Preset;
use orex_eval::{ResidualCollection, SimulatedUser};
use orex_graph::{TransferRates, TransferTypeId};
use orex_reformulate::ReformulateParams;

fn main() {
    let scale = scale_arg(0.5);
    let (system, gt, keywords) = build_system(Preset::DblpTop, scale, SystemConfig::default());
    let queries = pick_queries(&system, &keywords, 5);
    let query = &queries[0];
    eprintln!("query: {query}");
    let schema = system.graph().schema();

    let labels: Vec<String> = schema
        .edge_types()
        .flat_map(|et| {
            let sig = schema.edge_type(et);
            [
                format!("{}>{}", schema.node_label(sig.source), sig.label),
                format!("{}<{}", schema.node_label(sig.target), sig.label),
            ]
        })
        .collect();
    println!("types: {labels:?}");
    println!("gt rates:      {:?}", gt.as_slice());

    // Ground truth relevance.
    let gt_session = QuerySession::start_with(&system, query, gt.clone()).unwrap();
    let relevant: Vec<u32> = gt_session
        .top_k(20)
        .into_iter()
        .map(|r| r.node.raw())
        .collect();
    let user = SimulatedUser::new(relevant);
    let mut rc = ResidualCollection::new();
    let mut marked = std::collections::HashSet::new();

    let start = TransferRates::normalized_uniform(schema, 0.3);
    println!("start rates:   {:?}", start.as_slice());
    let mut session = QuerySession::start_with(&system, query, start).unwrap();
    for round in 0..5 {
        let deep: Vec<u32> = session
            .top_k(10 + rc.removed().len())
            .into_iter()
            .map(|r| r.node.raw())
            .collect();
        let shown = rc.residual_ranking(&deep);
        let picks = user.select_feedback(&shown[..shown.len().min(10)], 2, &marked);
        println!(
            "round {round}: cosine {:.4}, picks {:?} (types {:?})",
            session.rates().cosine_similarity(&gt),
            picks,
            picks
                .iter()
                .map(|&n| system.graph().node_label(orex_graph::NodeId::new(n)))
                .collect::<Vec<_>>()
        );
        if picks.is_empty() {
            break;
        }
        marked.extend(picks.iter().copied());
        rc.remove_all(&picks);
        // Print per-type flows of the first pick's explanation.
        let expl = session.explain(orex_graph::NodeId::new(picks[0])).unwrap();
        let flows = orex_reformulate::edge_type_flows_pruned(&expl, system.transfer(), 8);
        let pretty: Vec<String> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| format!("{}={:.2e}", labels[i], f))
            .collect();
        println!("   flows: {pretty:?}");
        let nodes: Vec<_> = picks.iter().map(|&n| orex_graph::NodeId::new(n)).collect();
        session
            .feedback_with(&nodes, &ReformulateParams::structure_only(0.5))
            .unwrap();
        println!("   new rates: {:?}", session.rates().as_slice());
    }
    let _ = TransferTypeId::forward(orex_graph::EdgeTypeId::new(0));
}
