//! Ablation studies for the design choices DESIGN.md §6 calls out:
//!
//! 1. flow-adjustment fixpoint (Eq. 10) vs the naive single-pass
//!    proportional reduction the paper's Section 4 dismisses ("will fail
//!    if there are cycles");
//! 2. explaining-subgraph radius L ∈ {1..5}: size / coverage / cost
//!    (the paper picks L = 3);
//! 3. warm start on/off for reformulated queries (Section 6.2);
//! 4. weighted (ObjectRank2) vs 0/1 (ObjectRank) base set: ranking
//!    divergence.
//!
//! Run: `cargo run -p orex-bench --release --bin ablation [-- --scale 0.25]`

use orex_authority::{object_rank, object_rank2, top_k, TransitionMatrix};
use orex_bench::{build_system, pick_queries, scale_arg, write_json};
use orex_core::{QuerySession, SystemConfig};
use orex_datagen::Preset;
use orex_eval::kendall_tau;
use orex_explain::{ExplainParams, Explanation};
use orex_graph::NodeId;
use orex_ir::QueryVector;

fn main() {
    let scale = scale_arg(0.25);
    let (system, _, keywords) = build_system(Preset::DblpTop, scale, SystemConfig::default());
    let queries = pick_queries(&system, &keywords, 3);
    let mut report = serde_json::Map::new();

    // ---------------------------------------------------------------
    // Ablation 1: fixpoint vs naive single-pass flow adjustment.
    // ---------------------------------------------------------------
    println!("\n[1] Equation 10 fixpoint vs naive single-pass adjustment");
    println!("    (relative error of naive adjusted flows on cyclic subgraphs)");
    let mut worst_err: f64 = 0.0;
    let mut samples = 0usize;
    for query in &queries {
        let Ok(session) = QuerySession::start(&system, query) else {
            continue;
        };
        for r in session.top_k(3) {
            if session.explain(r.node).is_err() {
                continue;
            }
            // Naive: one pass of Equation 10 (h = alpha-sum toward kept
            // edges, no iteration), then Eq. 7. Exactly right on DAG-like
            // subgraphs, wrong in cycles.
            let tight = tight_explanation(&system, &session, r.node);
            let Some(tight) = tight else { continue };
            let mut naive_h: std::collections::HashMap<u32, f64> = Default::default();
            for node in tight.nodes() {
                if node == tight.target() {
                    naive_h.insert(node.raw(), 1.0);
                } else {
                    let s: f64 = tight.out_edges(node).map(|e| e.alpha).sum();
                    naive_h.insert(node.raw(), s.min(1.0));
                }
            }
            for e in tight.edges() {
                let naive = naive_h[&e.target.raw()] * e.original_flow;
                if e.adjusted_flow > 1e-12 {
                    let err = (naive - e.adjusted_flow).abs() / e.adjusted_flow;
                    worst_err = worst_err.max(err);
                    samples += 1;
                }
            }
        }
    }
    println!("    {samples} edges compared; worst naive relative error: {worst_err:.2}x");
    report.insert(
        "naive_vs_fixpoint_worst_rel_error".into(),
        serde_json::json!(worst_err),
    );

    // ---------------------------------------------------------------
    // Ablation 2: radius sweep.
    // ---------------------------------------------------------------
    println!("\n[2] Explaining-subgraph radius L sweep");
    println!(
        "    {:>2} {:>10} {:>10} {:>12} {:>10}",
        "L", "nodes", "edges", "coverage", "time"
    );
    let mut radius_rows = Vec::new();
    if let Ok(session) = QuerySession::start(&system, &queries[0]) {
        let target = session
            .top_k(10)
            .into_iter()
            .find(|r| {
                // Prefer a non-base-set target so coverage is meaningful.
                let term = system
                    .index()
                    .analyzer()
                    .analyze_term(&queries[0].keywords[0]);
                term.and_then(|t| system.index().term_id(&t))
                    .map(|t| system.index().tf(r.node.raw(), t) == 0)
                    .unwrap_or(false)
            })
            .map(|r| r.node);
        if let Some(target) = target {
            let score = session.scores()[target.index()];
            for radius in 1..=5usize {
                let t = std::time::Instant::now();
                let params = ExplainParams {
                    radius,
                    epsilon: 1e-9,
                    ..ExplainParams::default()
                };
                let weights = system.transfer().weights(session.rates());
                let base = orex_authority::BaseSet::weighted(
                    system
                        .index()
                        .base_set_scores(session.query_vector(), &system.config().okapi),
                )
                .unwrap();
                match Explanation::explain(
                    system.transfer(),
                    &weights,
                    session.scores(),
                    &base,
                    target,
                    &params,
                ) {
                    Ok(expl) => {
                        let coverage = expl.target_inflow() / score;
                        let elapsed = t.elapsed();
                        println!(
                            "    {:>2} {:>10} {:>10} {:>11.1}% {:>10.1?}",
                            radius,
                            expl.node_count(),
                            expl.edge_count(),
                            coverage * 100.0,
                            elapsed
                        );
                        radius_rows.push(serde_json::json!({
                            "radius": radius,
                            "nodes": expl.node_count(),
                            "edges": expl.edge_count(),
                            "coverage": coverage,
                            "seconds": elapsed.as_secs_f64(),
                        }));
                    }
                    Err(_) => println!("    {radius:>2} unreachable at this radius"),
                }
            }
        }
    }
    report.insert("radius_sweep".into(), serde_json::json!(radius_rows));

    // ---------------------------------------------------------------
    // Ablation 3: warm start on/off.
    // ---------------------------------------------------------------
    println!("\n[3] Warm start for reformulated queries (Section 6.2)");
    let mut with_ws = 0.0;
    let mut without_ws = 0.0;
    let mut n_rounds = 0usize;
    for query in &queries {
        let Ok(mut session) = QuerySession::start(&system, query) else {
            continue;
        };
        for _ in 0..3 {
            let top = session.top_k(2);
            if top.is_empty() {
                break;
            }
            let nodes: Vec<_> = top.iter().map(|r| r.node).collect();
            let Ok(stats) = session.feedback(&nodes) else {
                break;
            };
            with_ws += stats.rank_iterations as f64;
            // Re-run the same reformulated query cold.
            let matrix = TransitionMatrix::new(system.transfer(), session.rates());
            if let Ok(cold) = object_rank2(
                &matrix,
                system.index(),
                session.query_vector(),
                &system.config().okapi,
                &system.config().rank,
                None,
            ) {
                without_ws += cold.iterations as f64;
                n_rounds += 1;
            }
        }
    }
    let n = n_rounds.max(1) as f64;
    println!(
        "    avg iterations with warm start: {:.1}   without: {:.1}",
        with_ws / n,
        without_ws / n
    );
    report.insert(
        "warm_start".into(),
        serde_json::json!({
            "with": with_ws / n,
            "without": without_ws / n,
            "rounds": n_rounds,
        }),
    );

    // ---------------------------------------------------------------
    // Ablation 4: weighted vs uniform base set.
    // ---------------------------------------------------------------
    println!("\n[4] Weighted (ObjectRank2) vs 0/1 (ObjectRank) base set");
    let matrix = TransitionMatrix::new(system.transfer(), system.initial_rates());
    let mut taus = Vec::new();
    for query in &queries {
        let qv = QueryVector::initial(query, system.index().analyzer());
        let (Ok(w), Ok(u)) = (
            object_rank2(
                &matrix,
                system.index(),
                &qv,
                &system.config().okapi,
                &system.config().rank,
                None,
            ),
            object_rank(&matrix, system.index(), &qv, &system.config().rank, None),
        ) else {
            continue;
        };
        let top_w: Vec<u32> = top_k(&w.scores, 20, 0.0).iter().map(|r| r.node).collect();
        let top_u: Vec<u32> = top_k(&u.scores, 20, 0.0).iter().map(|r| r.node).collect();
        let tau = kendall_tau(&top_w, &top_u);
        let overlap = top_w
            .iter()
            .take(10)
            .filter(|n| top_u[..10.min(top_u.len())].contains(n))
            .count();
        println!(
            "    {:<14} tau(top20) = {tau:.3}   overlap@10 = {overlap}",
            query.to_string()
        );
        taus.push(serde_json::json!({
            "query": query.to_string(),
            "kendall_tau_top20": tau,
            "overlap_at_10": overlap,
        }));
    }
    report.insert("weighted_vs_uniform_base".into(), serde_json::json!(taus));

    // ---------------------------------------------------------------
    // Ablation 5: top-k early termination (BHP04-style interactive
    // optimization).
    // ---------------------------------------------------------------
    println!("\n[5] Top-k early termination vs full convergence");
    let mut full_iters = 0.0;
    let mut early_iters = 0.0;
    let mut agree = 0usize;
    let mut total = 0usize;
    for query in &queries {
        let qv = QueryVector::initial(query, system.index().analyzer());
        let matrix = TransitionMatrix::new(system.transfer(), system.initial_rates());
        let Ok(base) = orex_authority::BaseSet::weighted(
            system.index().base_set_scores(&qv, &system.config().okapi),
        ) else {
            continue;
        };
        let mut tight = system.config().rank;
        tight.epsilon = 1e-8;
        tight.max_iterations = 500;
        let full = orex_authority::power_iteration(&matrix, &base, &tight, None);
        let early = orex_authority::power_iteration_topk(
            &matrix,
            &base,
            &tight,
            &orex_authority::TopKParams::default(),
            None,
        );
        full_iters += full.iterations as f64;
        early_iters += early.result.iterations as f64;
        let full_top: Vec<u32> = top_k(&full.scores, 10, 0.0)
            .iter()
            .map(|r| r.node)
            .collect();
        let early_top: Vec<u32> = early.top.iter().map(|r| r.node).collect();
        if full_top == early_top {
            agree += 1;
        }
        total += 1;
    }
    let n = total.max(1) as f64;
    println!(
        "    avg iterations: full {:.1} vs top-10 stable {:.1}; top-10 identical on {agree}/{total} queries",
        full_iters / n,
        early_iters / n
    );
    report.insert(
        "topk_early_termination".into(),
        serde_json::json!({
            "full_avg_iterations": full_iters / n,
            "early_avg_iterations": early_iters / n,
            "topk_agreement": format!("{agree}/{total}"),
        }),
    );

    write_json("ablation", &serde_json::Value::Object(report));
}

/// Tightly-converged explanation for ablation 1 (so the fixpoint is the
/// reference).
fn tight_explanation(
    system: &orex_core::ObjectRankSystem,
    session: &QuerySession<'_>,
    target: NodeId,
) -> Option<Explanation> {
    let weights = system.transfer().weights(session.rates());
    let base = orex_authority::BaseSet::weighted(
        system
            .index()
            .base_set_scores(session.query_vector(), &system.config().okapi),
    )
    .ok()?;
    Explanation::explain(
        system.transfer(),
        &weights,
        session.scores(),
        &base,
        target,
        &ExplainParams {
            epsilon: 1e-12,
            ..ExplainParams::default()
        },
    )
    .ok()
}
