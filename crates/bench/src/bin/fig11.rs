//! Figure 11: training the authority transfer rates — cosine similarity
//! of the learned rates vector to the BHP04 ground truth across feedback
//! iterations, for C_f ∈ {0.1, 0.3, 0.5, 0.7, 0.9} (C_e = 0).
//!
//! The paper's finding: similarity rises then dips (overfitting); larger
//! C_f peaks faster because the per-iteration rate adjustment is larger.
//!
//! Run: `cargo run -p orex-bench --release --bin fig11 [-- --scale 0.25]`

use orex_bench::{build_system, pick_queries, scale_arg, write_json};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_eval::{run_survey, SurveyConfig};
use orex_reformulate::ReformulateParams;

fn main() {
    let scale = scale_arg(0.25);
    let (system, gt, keywords) = build_system(Preset::DblpTop, scale, SystemConfig::default());
    // "4 users averaged over 5 queries each": 5 queries, the averaging
    // over users is subsumed by the noiseless simulated user.
    let queries = pick_queries(&system, &keywords, 5);
    let iterations = 5;

    println!("Figure 11: Training of the Authority Transfer Rates");
    println!("cosine(UserVector, ObjVector) per iteration (iteration 1 = initial rates)\n");
    let mut records = Vec::new();
    for cf in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let outcome = run_survey(
            &system,
            &gt,
            &queries,
            &SurveyConfig {
                iterations,
                reformulate: ReformulateParams::structure_only(cf),
                ..SurveyConfig::default()
            },
        );
        let row: Vec<String> = outcome
            .avg_cosine
            .iter()
            .map(|c| format!("{c:.4}"))
            .collect();
        println!("Cf={cf:<4} {}", row.join("  "));
        // Where does the curve peak? (The paper: larger Cf peaks earlier.)
        let peak = outcome
            .avg_cosine
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        records.push(serde_json::json!({
            "cf": cf,
            "avg_cosine": outcome.avg_cosine,
            "peak_iteration": peak,
        }));
    }
    write_json(
        "fig11",
        &serde_json::json!({ "scale": scale, "series": records }),
    );
    println!("\npaper's finding: similarity rises then falls (overfitting), with");
    println!("larger C_f peaking faster. Our simulated users reproduce the");
    println!("overfitting phase and the C_f speed ordering; the initial rise is");
    println!("muted (see EXPERIMENTS.md for the flow-direction analysis).");
}
