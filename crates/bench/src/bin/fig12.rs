//! Figure 12: external survey — average precision using structure-only
//! reformulation with C_f = 0.5, averaged over 20 queries (the paper: 10
//! users × 2 queries each, DBLPtop).
//!
//! Run: `cargo run -p orex-bench --release --bin fig12 [-- --scale 0.25]`

use orex_bench::{build_system, pick_multi_queries, pick_queries, scale_arg, write_json};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_eval::{run_survey, SurveyConfig};
use orex_ir::Query;
use orex_reformulate::ReformulateParams;

fn main() {
    let scale = scale_arg(0.25);
    let (system, gt, keywords) = build_system(Preset::DblpTop, scale, SystemConfig::default());
    // 20 queries: every usable suggested keyword plus two-keyword combos.
    let mut queries: Vec<Query> = pick_queries(&system, &keywords, 14);
    queries.extend(pick_multi_queries(&system, &keywords, 6));
    eprintln!("{} queries", queries.len());

    let iterations = 4;
    let outcome = run_survey(
        &system,
        &gt,
        &queries,
        &SurveyConfig {
            iterations,
            reformulate: ReformulateParams::structure_only(0.5),
            ..SurveyConfig::default()
        },
    );

    println!("Figure 12: Average Precision, structure-only reformulation (Cf = 0.5)");
    println!("(initial query = iteration 0, then {iterations} reformulated queries)\n");
    let row: Vec<String> = outcome
        .avg_precision
        .iter()
        .map(|p| format!("{:.1}%", p * 100.0))
        .collect();
    println!("Structure-Only   {}", row.join("  "));
    write_json(
        "fig12",
        &serde_json::json!({
            "scale": scale,
            "avg_precision": outcome.avg_precision,
            "avg_cosine": outcome.avg_cosine,
            "queries": outcome.traces.len(),
        }),
    );
}
