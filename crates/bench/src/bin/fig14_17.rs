//! Figures 14–17: query and reformulation times, and ObjectRank2
//! iteration counts, for the initial query plus four reformulated queries
//! on each dataset.
//!
//! Figure (a) of each pair stacks four per-stage bars: ObjectRank2
//! execution, explaining-subgraph creation, explaining-ObjectRank2
//! execution, query reformulation. Figure (b) reports the power-iteration
//! counts, showing the warm-start speedup of Section 6.2.
//!
//! Run:
//!   cargo run -p orex-bench --release --bin fig14_17 -- \
//!       --dataset dblp-top --scale 1.0 [--queries 5] [--rounds 4]
//! Omit --dataset to run all four (Figures 14, 15, 16, 17 in order).

use orex_bench::{arg_value, build_system, pick_queries, scale_arg, secs, write_json};
use orex_core::{QuerySession, SystemConfig};
use orex_datagen::Preset;

fn main() {
    let scale = scale_arg(1.0);
    let rounds: usize = arg_value("rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let n_queries: usize = arg_value("queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let presets: Vec<Preset> = match arg_value("dataset") {
        Some(name) => vec![Preset::parse(&name).expect("unknown dataset name")],
        None => Preset::ALL.to_vec(),
    };

    let figure_no = |p: Preset| match p {
        Preset::DblpComplete => 14,
        Preset::DblpTop => 15,
        Preset::Ds7 => 16,
        Preset::Ds7Cancer => 17,
    };

    let mut all = Vec::new();
    for preset in presets {
        let (system, _, keywords) = build_system(preset, scale, SystemConfig::default());
        let queries = pick_queries(&system, &keywords, n_queries);
        println!(
            "\nFigure {}: {} execution (scale {scale}, {} queries averaged)",
            figure_no(preset),
            preset.name(),
            queries.len()
        );
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>8}",
            "step", "OR2 exec(s)", "expl.create", "expl.OR2", "reform.", "OR2 iters"
        );

        // Accumulators: per step (0 = initial, 1..=rounds reformulated).
        let steps = rounds + 1;
        let mut rank_time = vec![0.0; steps];
        let mut construct_time = vec![0.0; steps];
        let mut adjust_time = vec![0.0; steps];
        let mut reform_time = vec![0.0; steps];
        let mut iters = vec![0.0; steps];
        let mut counted = vec![0usize; steps];

        for query in &queries {
            let Ok(mut session) = QuerySession::start(&system, query) else {
                continue;
            };
            let s0 = session.history()[0];
            rank_time[0] += secs(s0.rank_time);
            iters[0] += s0.rank_iterations as f64;
            counted[0] += 1;
            for round in 1..=rounds {
                // Feedback: the top two results (click-through style).
                let top = session.top_k(2);
                if top.is_empty() {
                    break;
                }
                let nodes: Vec<_> = top.iter().map(|r| r.node).collect();
                let Ok(stats) = session.feedback(&nodes) else {
                    break;
                };
                rank_time[round] += secs(stats.rank_time);
                construct_time[round] += secs(stats.explain_construction_time);
                adjust_time[round] += secs(stats.explain_adjustment_time);
                reform_time[round] += secs(stats.reformulate_time);
                iters[round] += stats.rank_iterations as f64;
                counted[round] += 1;
            }
        }

        let mut rows = Vec::new();
        for step in 0..steps {
            let n = counted[step].max(1) as f64;
            let label = if step == 0 {
                "initial".to_string()
            } else {
                format!("reform {step}")
            };
            println!(
                "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.1}",
                label,
                rank_time[step] / n,
                construct_time[step] / n,
                adjust_time[step] / n,
                reform_time[step] / n,
                iters[step] / n,
            );
            rows.push(serde_json::json!({
                "step": label,
                "or2_exec_s": rank_time[step] / n,
                "explain_create_s": construct_time[step] / n,
                "explain_or2_s": adjust_time[step] / n,
                "reformulate_s": reform_time[step] / n,
                "or2_iterations": iters[step] / n,
                "queries": counted[step],
            }));
        }
        all.push(serde_json::json!({
            "figure": figure_no(preset),
            "dataset": preset.name(),
            "scale": scale,
            "rows": rows,
        }));
    }
    write_json("fig14_17", &serde_json::json!({ "figures": all }));
    println!("\npaper's findings reproduced when: (i) the initial query needs the");
    println!("most iterations, reformulated queries fewer (warm start); (ii) the");
    println!("explain + reformulate stages cost far less than OR2 execution.");
}
