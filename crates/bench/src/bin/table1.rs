//! Table 1: dataset sizes.
//!
//! Generates the four synthetic stand-ins and reports their sizes next to
//! the paper's numbers. `--scale 1.0` targets the full Table 1 sizes;
//! smaller scales shrink proportionally (reported for transparency).
//!
//! Run: `cargo run -p orex-bench --release --bin table1 -- --scale 1.0`

use orex_bench::{scale_arg, write_json};
use orex_datagen::Preset;

fn main() {
    let scale = scale_arg(1.0);
    println!("Table 1: Real and Synthetic Datasets (scale {scale})");
    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>14}",
        "Name", "#nodes", "#edges", "paper #nodes", "paper #edges"
    );
    let mut records = Vec::new();
    for preset in Preset::ALL {
        let t = std::time::Instant::now();
        let d = preset.generate(scale);
        let (nodes, edges) = d.sizes();
        let (pn, pe) = preset.paper_sizes();
        println!(
            "{:<14} {:>12} {:>14} {:>14} {:>14}   (generated in {:.1?})",
            preset.name(),
            nodes,
            edges,
            pn,
            pe,
            t.elapsed()
        );
        records.push(serde_json::json!({
            "name": preset.name(),
            "nodes": nodes,
            "edges": edges,
            "paper_nodes": pn,
            "paper_edges": pe,
            "scale": scale,
        }));
    }
    write_json("table1", &serde_json::json!({ "rows": records }));
}
