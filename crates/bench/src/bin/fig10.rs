//! Figure 10: average precision of the three reformulation settings over
//! relevance-feedback iterations (internal survey, DBLPtop).
//!
//! Settings per Section 6.1.1: content-only (C_f = 0, C_e = 0.2),
//! content & structure (C_f = 0.5, C_e = 0.2), structure-only
//! (C_f = 0.5, C_e = 0). Decay C_d = 0.5, radius L = 3, rates initialized
//! to 0.3, k = 10, residual-collection evaluation. The paper's result:
//! structure-only wins.
//!
//! Run: `cargo run -p orex-bench --release --bin fig10 [-- --scale 0.25]`

use orex_bench::{build_system, pick_queries, scale_arg, write_json};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_eval::{run_survey, SurveyConfig};
use orex_reformulate::{ContentParams, ReformulateParams, StructureParams};

fn main() {
    let scale = scale_arg(0.25);
    let (system, gt, keywords) = build_system(Preset::DblpTop, scale, SystemConfig::default());
    let queries = pick_queries(&system, &keywords, 5);
    eprintln!(
        "queries: {}",
        queries
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    let settings: [(&str, ReformulateParams); 3] = [
        ("Content-Only", ReformulateParams::content_only(0.2)),
        (
            "Content & Structure-based",
            ReformulateParams {
                content: ContentParams {
                    expansion_factor: 0.2,
                    ..ContentParams::default()
                },
                structure: StructureParams {
                    rate_factor: 0.5,
                    ..StructureParams::default()
                },
            },
        ),
        ("Structure-Only", ReformulateParams::structure_only(0.5)),
    ];

    let iterations = 4;
    println!("Figure 10: Average Precision for different calibration parameters");
    println!("(initial query = iteration 0, then {iterations} reformulated queries)\n");
    let mut records = Vec::new();
    for (name, params) in settings {
        let outcome = run_survey(
            &system,
            &gt,
            &queries,
            &SurveyConfig {
                iterations,
                reformulate: params,
                ..SurveyConfig::default()
            },
        );
        let row: Vec<String> = outcome
            .avg_precision
            .iter()
            .map(|p| format!("{:.1}%", p * 100.0))
            .collect();
        println!("{name:<28} {}", row.join("  "));
        records.push(serde_json::json!({
            "setting": name,
            "avg_precision": outcome.avg_precision,
            "avg_cosine": outcome.avg_cosine,
            "queries": outcome.traces.len(),
        }));
    }
    write_json(
        "fig10",
        &serde_json::json!({ "scale": scale, "series": records }),
    );
    println!("\npaper's finding: Structure-Only performs best; content-based");
    println!("expansion is ineffective for expert users who know the keywords.");
}
