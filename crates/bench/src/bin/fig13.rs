//! Figure 13: external-survey training curves of the authority transfer
//! rates (as Figure 11, over the external survey's wider query mix).
//!
//! Run: `cargo run -p orex-bench --release --bin fig13 [-- --scale 0.25]`

use orex_bench::{build_system, pick_multi_queries, pick_queries, scale_arg, write_json};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_eval::{run_survey, SurveyConfig};
use orex_ir::Query;
use orex_reformulate::ReformulateParams;

fn main() {
    let scale = scale_arg(0.25);
    let (system, gt, keywords) = build_system(Preset::DblpTop, scale, SystemConfig::default());
    let mut queries: Vec<Query> = pick_queries(&system, &keywords, 14);
    queries.extend(pick_multi_queries(&system, &keywords, 6));

    println!("Figure 13: Training of the Authority Transfer Rates (external survey)");
    println!("cosine(UserVector, ObjVector) per iteration\n");
    let mut records = Vec::new();
    for cf in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let outcome = run_survey(
            &system,
            &gt,
            &queries,
            &SurveyConfig {
                iterations: 5,
                reformulate: ReformulateParams::structure_only(cf),
                ..SurveyConfig::default()
            },
        );
        let row: Vec<String> = outcome
            .avg_cosine
            .iter()
            .map(|c| format!("{c:.4}"))
            .collect();
        println!("Cf={cf:<4} {}", row.join("  "));
        records.push(serde_json::json!({ "cf": cf, "avg_cosine": outcome.avg_cosine }));
    }
    write_json(
        "fig13",
        &serde_json::json!({ "scale": scale, "series": records }),
    );
}
