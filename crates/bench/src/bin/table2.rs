//! Table 2: ObjectRank2 vs (modified) ObjectRank — relevant results in the
//! top 10 per query, DBLPtop.
//!
//! The paper's eight queries mix single and multi keyword; relevance came
//! from human judges and ObjectRank2 won narrowly (7.7 vs 7.5 average).
//! Here relevance is the simulated oracle of `orex-eval::compare_rankers`
//! (see EXPERIMENTS.md for the honesty caveat); the reproducible claim is
//! the *shape*: OR2 >= modified OR, with a small gap.
//!
//! Run: `cargo run -p orex-bench --release --bin table2 [-- --scale 0.25]`

use orex_bench::{build_system, pick_multi_queries, pick_queries, scale_arg, write_json};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_eval::compare_rankers;
use orex_ir::Query;

fn main() {
    let scale = scale_arg(0.25);
    let (system, gt, keywords) = build_system(Preset::DblpTop, scale, SystemConfig::default());
    let mut queries: Vec<Query> = pick_queries(&system, &keywords, 5);
    queries.extend(pick_multi_queries(&system, &keywords, 3));

    let results = compare_rankers(&system, &gt, &queries, 10, 15);
    println!("Table 2: ObjectRank2 vs ObjectRank (relevant results in top 10)\n");
    println!(
        "{:<28} {:>12} {:>12}",
        "DBLP keyword query", "ObjectRank2", "ObjectRank"
    );
    let mut sum2 = 0usize;
    let mut sum1 = 0usize;
    let mut rows = Vec::new();
    for r in &results {
        println!(
            "{:<28} {:>12} {:>12}",
            r.query.to_string(),
            r.objectrank2_hits,
            r.objectrank_hits
        );
        sum2 += r.objectrank2_hits;
        sum1 += r.objectrank_hits;
        rows.push(serde_json::json!({
            "query": r.query.to_string(),
            "objectrank2": r.objectrank2_hits,
            "objectrank": r.objectrank_hits,
        }));
    }
    let n = results.len().max(1) as f64;
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "Average precision",
        sum2 as f64 / n,
        sum1 as f64 / n
    );
    println!("\npaper: 7.7 vs 7.5 (ObjectRank2 slightly better; DBLP titles are");
    println!("short, so the IR-weighted base set helps only mildly here).");
    write_json(
        "table2",
        &serde_json::json!({
            "scale": scale,
            "rows": rows,
            "avg_objectrank2": sum2 as f64 / n,
            "avg_objectrank": sum1 as f64 / n,
        }),
    );
}
