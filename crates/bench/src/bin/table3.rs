//! Table 3: average Explaining-ObjectRank2 (flow-adjustment fixpoint)
//! iterations per dataset, for the initial query and each reformulation
//! iteration.
//!
//! Run: `cargo run -p orex-bench --release --bin table3 [-- --scale 0.1]`

use orex_bench::{arg_value, build_system, pick_queries, scale_arg, write_json};
use orex_core::{QuerySession, SystemConfig};
use orex_datagen::Preset;

fn main() {
    let scale = scale_arg(0.1);
    let rounds: usize = arg_value("rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!("Table 3: Average Explaining ObjectRank2 Iterations (scale {scale})\n");
    println!(
        "{:<14} {}",
        "Dataset",
        (1..=rounds)
            .map(|i| format!("{i:>6}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut records = Vec::new();
    for preset in Preset::ALL {
        let (system, _, keywords) = build_system(preset, scale, SystemConfig::default());
        let queries = pick_queries(&system, &keywords, 4);
        let mut iters = vec![0.0; rounds];
        let mut counts = vec![0usize; rounds];
        for query in &queries {
            let Ok(mut session) = QuerySession::start(&system, query) else {
                continue;
            };
            for (round, it) in iters.iter_mut().enumerate() {
                let top = session.top_k(2);
                if top.is_empty() {
                    break;
                }
                let nodes: Vec<_> = top.iter().map(|r| r.node).collect();
                let Ok(stats) = session.feedback(&nodes) else {
                    break;
                };
                *it += stats.explain_iterations;
                counts[round] += 1;
            }
        }
        let row: Vec<f64> = iters
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();
        println!(
            "{:<14} {}",
            preset.name(),
            row.iter()
                .map(|v| format!("{v:>6.1}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        records.push(serde_json::json!({
            "dataset": preset.name(),
            "avg_explaining_iterations": row,
        }));
    }
    write_json(
        "table3",
        &serde_json::json!({ "scale": scale, "rows": records }),
    );
    println!("\npaper: 4–11 iterations across datasets and rounds; the fixpoint");
    println!("is cheap because it runs on the small explaining subgraph only.");
}
