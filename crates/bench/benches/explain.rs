//! Criterion bench: explaining-subgraph creation + flow-adjustment
//! fixpoint (the "Explaining Subgraph Creation" and "Explaining
//! ObjectRank2 Execution" bars of Figures 14(a)–17(a)), across radii
//! (the L = 3 choice of Section 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orex_authority::BaseSet;
use orex_core::{QuerySession, SystemConfig};
use orex_datagen::Preset;
use orex_explain::{ExplainParams, Explanation};
use orex_ir::Query;
use std::hint::black_box;

fn bench_explain(c: &mut Criterion) {
    let dataset = Preset::DblpTop.generate(0.2);
    let system = orex_core::ObjectRankSystem::new(
        dataset.graph,
        dataset.ground_truth,
        SystemConfig::default(),
    );
    let session = QuerySession::start(&system, &Query::parse("data")).unwrap();
    let target = session.top_k(1)[0].node;
    let weights = system.transfer().weights(session.rates());
    let base = BaseSet::weighted(
        system
            .index()
            .base_set_scores(session.query_vector(), &system.config().okapi),
    )
    .unwrap();

    let mut group = c.benchmark_group("explain");
    group.sample_size(20);
    for radius in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("radius", radius), &radius, |b, &r| {
            let params = ExplainParams {
                radius: r,
                ..ExplainParams::default()
            };
            b.iter(|| {
                let e = Explanation::explain(
                    system.transfer(),
                    black_box(&weights),
                    session.scores(),
                    &base,
                    target,
                    &params,
                );
                black_box(e.map(|e| e.edge_count()).unwrap_or(0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explain);
criterion_main!(benches);
