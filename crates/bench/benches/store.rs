//! Criterion bench: snapshot encode/decode throughput — how fast datasets
//! and precomputed rank caches persist (the Section 6.2 precomputation
//! pipeline's I/O side).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use orex_datagen::{generate_dblp, DblpConfig, TextConfig};
use orex_store::{decode_graph, encode_graph, RankCache};
use std::hint::black_box;

fn bench_store(c: &mut Criterion) {
    let dataset = generate_dblp(
        "bench",
        &DblpConfig {
            papers: 4_000,
            authors: 1_800,
            conferences: 20,
            years_per_conference: 10,
            text: TextConfig {
                vocab_size: 4_000,
                topics: 12,
                ..TextConfig::default()
            },
            ..DblpConfig::default()
        },
    );
    let encoded = encode_graph(&dataset.graph);

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_graph", |b| {
        b.iter(|| black_box(encode_graph(black_box(&dataset.graph))).len())
    });
    group.bench_function("decode_graph", |b| {
        b.iter(|| {
            black_box(decode_graph(black_box(encoded.clone())))
                .unwrap()
                .node_count()
        })
    });
    group.finish();

    let n = dataset.graph.node_count();
    let mut cache = RankCache::new(n);
    let vec: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    for key in ["data", "query", "mining", "index", "graph", "stream"] {
        cache.insert(key, &vec);
    }
    let encoded = cache.encode();
    let mut group = c.benchmark_group("rank_cache");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(cache.encode()).len()));
    group.bench_function("decode", |b| {
        b.iter(|| RankCache::decode(black_box(encoded.clone())).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
