//! Criterion bench: query-reformulation cost — the last bar of Figures
//! 14(a)–17(a). Section 6.2 claims O(|V|) for content-only, O(|E|) for
//! structure-only and O(|V| + |E|) for both, over the explaining
//! subgraph; the three settings are benched separately.

use criterion::{criterion_group, criterion_main, Criterion};
use orex_authority::BaseSet;
use orex_core::{QuerySession, SystemConfig};
use orex_datagen::Preset;
use orex_explain::{ExplainParams, Explanation};
use orex_ir::Query;
use orex_reformulate::{reformulate, ReformulateParams};
use std::hint::black_box;

fn bench_reformulate(c: &mut Criterion) {
    let dataset = Preset::DblpTop.generate(0.2);
    let system = orex_core::ObjectRankSystem::new(
        dataset.graph,
        dataset.ground_truth,
        SystemConfig::default(),
    );
    let session = QuerySession::start(&system, &Query::parse("data")).unwrap();
    let targets: Vec<_> = session.top_k(2).iter().map(|r| r.node).collect();
    let weights = system.transfer().weights(session.rates());
    let base = BaseSet::weighted(
        system
            .index()
            .base_set_scores(session.query_vector(), &system.config().okapi),
    )
    .unwrap();
    let explanations: Vec<Explanation> = targets
        .iter()
        .map(|&t| {
            Explanation::explain(
                system.transfer(),
                &weights,
                session.scores(),
                &base,
                t,
                &ExplainParams::default(),
            )
            .unwrap()
        })
        .collect();
    let refs: Vec<&Explanation> = explanations.iter().collect();

    let mut group = c.benchmark_group("reformulate");
    let settings = [
        ("content_only", ReformulateParams::content_only(0.5)),
        ("structure_only", ReformulateParams::structure_only(0.5)),
        ("both", ReformulateParams::default()),
    ];
    for (name, params) in settings {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = reformulate(
                    black_box(session.query_vector()),
                    session.rates(),
                    system.graph().schema(),
                    system.transfer(),
                    system.index(),
                    &refs,
                    &params,
                );
                black_box(out.query.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reformulate);
criterion_main!(benches);
