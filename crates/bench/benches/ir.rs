//! Criterion bench: IR substrate — analysis throughput and base-set
//! scoring (the input stage of every ObjectRank2 execution, Equation 2/3).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_ir::{Analyzer, Okapi, Query, QueryVector, TfIdf};
use std::hint::black_box;

fn bench_ir(c: &mut Criterion) {
    let config = SystemConfig {
        global_warm_start: false,
        ..SystemConfig::default()
    };
    let dataset = Preset::DblpTop.generate(0.2);
    let system = orex_core::ObjectRankSystem::new(dataset.graph, dataset.ground_truth, config);
    let analyzer = Analyzer::new();
    let text = "Explaining and Reformulating Authority Flow Queries over \
                relational and biological databases using weighted base sets";

    let mut group = c.benchmark_group("ir");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("analyze_document", |b| {
        b.iter(|| black_box(analyzer.analyze(black_box(text))).len())
    });
    group.finish();

    let mut group = c.benchmark_group("base_set");
    let single = QueryVector::initial(&Query::parse("data"), system.index().analyzer());
    let multi = QueryVector::initial(
        &Query::parse("data query mining index"),
        system.index().analyzer(),
    );
    group.bench_function("okapi_single_keyword", |b| {
        b.iter(|| {
            black_box(
                system
                    .index()
                    .base_set_scores(black_box(&single), &Okapi::default()),
            )
            .len()
        })
    });
    group.bench_function("okapi_four_keywords", |b| {
        b.iter(|| {
            black_box(
                system
                    .index()
                    .base_set_scores(black_box(&multi), &Okapi::default()),
            )
            .len()
        })
    });
    group.bench_function("tfidf_four_keywords", |b| {
        b.iter(|| black_box(system.index().base_set_scores(black_box(&multi), &TfIdf)).len())
    });
    group.finish();
}

criterion_group!(benches, bench_ir);
criterion_main!(benches);
