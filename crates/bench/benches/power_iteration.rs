//! Criterion bench: ObjectRank2 power-iteration execution — the dominant
//! cost in Figures 14(a)–17(a) — cold vs warm start (Figure 14(b)–17(b)
//! claim), and across damping factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orex_authority::{object_rank2, RankParams, TransitionMatrix};
use orex_core::SystemConfig;
use orex_datagen::Preset;
use orex_ir::{Query, QueryVector};
use std::hint::black_box;

fn bench_power_iteration(c: &mut Criterion) {
    let config = SystemConfig {
        global_warm_start: false,
        ..SystemConfig::default()
    };
    let dataset = Preset::DblpTop.generate(0.2);
    let system = orex_core::ObjectRankSystem::new(dataset.graph, dataset.ground_truth, config);
    let matrix = TransitionMatrix::new(system.transfer(), system.initial_rates());
    let qv = QueryVector::initial(&Query::parse("data"), system.index().analyzer());
    let params = RankParams::default();

    let mut group = c.benchmark_group("objectrank2");
    group.sample_size(20);
    group.bench_function("cold_start", |b| {
        b.iter(|| {
            let r = object_rank2(
                &matrix,
                system.index(),
                black_box(&qv),
                &system.config().okapi,
                &params,
                None,
            )
            .unwrap();
            black_box(r.iterations)
        })
    });

    let seed = object_rank2(
        &matrix,
        system.index(),
        &qv,
        &system.config().okapi,
        &params,
        None,
    )
    .unwrap();
    // A near-identical query (what a reformulation round produces).
    let mut qv2 = qv.clone();
    qv2.add_weight("cube", 0.3);
    group.bench_function("warm_start_similar_query", |b| {
        b.iter(|| {
            let r = object_rank2(
                &matrix,
                system.index(),
                black_box(&qv2),
                &system.config().okapi,
                &params,
                Some(&seed.scores),
            )
            .unwrap();
            black_box(r.iterations)
        })
    });
    group.bench_function("cold_start_similar_query", |b| {
        b.iter(|| {
            let r = object_rank2(
                &matrix,
                system.index(),
                black_box(&qv2),
                &system.config().okapi,
                &params,
                None,
            )
            .unwrap();
            black_box(r.iterations)
        })
    });

    for damping in [0.5, 0.85, 0.95] {
        group.bench_with_input(BenchmarkId::new("damping", damping), &damping, |b, &d| {
            let p = RankParams {
                damping: d,
                ..RankParams::default()
            };
            b.iter(|| {
                object_rank2(
                    &matrix,
                    system.index(),
                    black_box(&qv),
                    &system.config().okapi,
                    &p,
                    None,
                )
                .unwrap()
                .iterations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_power_iteration);
criterion_main!(benches);
