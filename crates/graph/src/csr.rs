//! Compressed sparse row (CSR) adjacency storage.
//!
//! Both the data graph and the authority-transfer data graph store their
//! adjacency in CSR form: a `row_offsets` array of length `n + 1` and a
//! flat `targets` array, with optional parallel payload arrays owned by the
//! caller. CSR keeps the power-iteration inner loop a pure sequential scan,
//! which is the dominant cost of every experiment in Section 6.

/// CSR adjacency over `n` nodes.
///
/// `payload_index` values returned by [`Csr::neighbors`] index into whatever
/// parallel arrays the owner maintains (edge ids, transfer rates, ...): the
/// `i`-th entry of `targets` corresponds to payload index `i`.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    row_offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an unsorted edge list `(src, dst)` over `n` nodes,
    /// additionally returning, for each CSR slot, the index of the input
    /// edge that produced it (so callers can permute payload arrays to
    /// match).
    ///
    /// Edges with the same source keep their relative input order
    /// (the counting sort below is stable).
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n` or if `n` or the edge count
    /// overflows `u32`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> (Self, Vec<u32>) {
        assert!(u32::try_from(n).is_ok(), "node count overflows u32");
        assert!(
            u32::try_from(edges.len()).is_ok(),
            "edge count overflows u32"
        );
        let mut counts = vec![0u32; n + 1];
        for &(src, dst) in edges {
            assert!((src as usize) < n, "edge source {src} out of range");
            assert!((dst as usize) < n, "edge target {dst} out of range");
            counts[src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut targets = vec![0u32; edges.len()];
        let mut permutation = vec![0u32; edges.len()];
        let mut cursor = counts;
        for (input_idx, &(src, dst)) in edges.iter().enumerate() {
            let slot = cursor[src as usize] as usize;
            targets[slot] = dst;
            permutation[slot] = input_idx as u32;
            cursor[src as usize] += 1;
        }
        (
            Self {
                row_offsets,
                targets,
            },
            permutation,
        )
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of stored edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn degree(&self, node: usize) -> usize {
        (self.row_offsets[node + 1] - self.row_offsets[node]) as usize
    }

    /// Half-open payload-index range of `node`'s adjacency slots.
    #[inline]
    pub fn range(&self, node: usize) -> std::ops::Range<usize> {
        self.row_offsets[node] as usize..self.row_offsets[node + 1] as usize
    }

    /// Neighbors of `node` as `(target, payload_index)` pairs.
    #[inline]
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = (u32, usize)> + '_ {
        let range = self.range(node);
        let start = range.start;
        self.targets[range]
            .iter()
            .enumerate()
            .map(move |(i, &t)| (t, start + i))
    }

    /// Raw targets slice for `node` (hot-loop access without the iterator).
    #[inline]
    pub fn targets_of(&self, node: usize) -> &[u32] {
        &self.targets[self.range(node)]
    }

    /// The full flat targets array.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The row-offsets array (`n + 1` entries).
    #[inline]
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(csr: &Csr, node: usize) -> Vec<u32> {
        csr.neighbors(node).map(|(t, _)| t).collect()
    }

    #[test]
    fn from_edges_groups_by_source() {
        let edges = [(0, 1), (2, 0), (0, 2), (1, 2)];
        let (csr, perm) = Csr::from_edges(3, &edges);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(collect(&csr, 0), vec![1, 2]);
        assert_eq!(collect(&csr, 1), vec![2]);
        assert_eq!(collect(&csr, 2), vec![0]);
        // Permutation maps CSR slots back to input edge indices.
        assert_eq!(perm, vec![0, 2, 3, 1]);
    }

    #[test]
    fn stable_within_source() {
        // Three parallel edges from 0; input order must be preserved.
        let edges = [(0, 5), (0, 3), (0, 5)];
        let (csr, perm) = Csr::from_edges(6, &edges);
        assert_eq!(collect(&csr, 0), vec![5, 3, 5]);
        assert_eq!(perm, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let (csr, perm) = Csr::from_edges(0, &[]);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert!(perm.is_empty());
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let (csr, _) = Csr::from_edges(4, &[(1, 2)]);
        assert_eq!(csr.degree(0), 0);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let _ = Csr::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn payload_indices_are_dense_and_unique() {
        let edges = [(0, 1), (1, 0), (2, 1), (0, 2), (2, 0)];
        let (csr, _) = Csr::from_edges(3, &edges);
        let mut seen = vec![false; edges.len()];
        for node in 0..3 {
            for (_, idx) in csr.neighbors(node) {
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
