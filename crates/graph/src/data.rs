//! Labeled data graphs (Section 2 of the paper).
//!
//! A data graph `D(V_D, E_D)` is a labeled directed graph where every node
//! represents a database object: it has a node type (its label / role), a
//! tuple of attribute name/value pairs, and a set of keywords — the terms
//! appearing in its attribute values. Every edge has an edge type (role)
//! drawn from the schema graph the data graph conforms to.
//!
//! Construction goes through [`DataGraphBuilder`], which enforces
//! conformance incrementally (every edge's endpoints must match its edge
//! type's signature — condition 2 of the conformance definition; condition 1
//! holds by construction since each node carries exactly one type).
//! [`DataGraphBuilder::freeze`] produces an immutable [`DataGraph`] with CSR
//! out- and in-adjacency for traversal.

use crate::csr::Csr;
use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, EdgeTypeId, NodeId, NodeTypeId};
use crate::schema::SchemaGraph;

/// One attribute of a database object: a name/value pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, e.g. `"Title"`.
    pub name: String,
    /// Attribute value, e.g. `"Data Cube: A Relational Aggregation ..."`.
    pub value: String,
}

/// A node under construction / stored in the graph.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The node's type (its schema label).
    pub node_type: NodeTypeId,
    /// Attribute tuple. Keyword extraction tokenizes the values (and,
    /// optionally, the names — "richer semantics" per the paper).
    pub attributes: Vec<Attribute>,
}

/// An edge stored in the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// Tail node.
    pub source: NodeId,
    /// Head node.
    pub target: NodeId,
    /// The edge's role, drawn from the schema.
    pub edge_type: EdgeTypeId,
}

/// Incremental builder for [`DataGraph`].
#[derive(Debug)]
pub struct DataGraphBuilder {
    schema: SchemaGraph,
    nodes: Vec<NodeRecord>,
    edges: Vec<EdgeRecord>,
}

impl DataGraphBuilder {
    /// Starts building a data graph conforming to `schema`.
    pub fn new(schema: SchemaGraph) -> Self {
        Self {
            schema,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Pre-allocates for an expected number of nodes and edges.
    pub fn with_capacity(schema: SchemaGraph, nodes: usize, edges: usize) -> Self {
        Self {
            schema,
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// The schema this graph conforms to.
    pub fn schema(&self) -> &SchemaGraph {
        &self.schema
    }

    /// Adds a node of the given type with the given attributes.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNodeType`] for a type outside the schema.
    pub fn add_node(
        &mut self,
        node_type: NodeTypeId,
        attributes: Vec<Attribute>,
    ) -> Result<NodeId> {
        self.schema.check_node_type(node_type)?;
        let id = NodeId::from_usize(self.nodes.len());
        self.nodes.push(NodeRecord {
            node_type,
            attributes,
        });
        Ok(id)
    }

    /// Convenience: adds a node whose attributes are given as
    /// `(name, value)` string pairs.
    pub fn add_node_with(
        &mut self,
        node_type: NodeTypeId,
        attributes: &[(&str, &str)],
    ) -> Result<NodeId> {
        self.add_node(
            node_type,
            attributes
                .iter()
                .map(|(n, v)| Attribute {
                    name: (*n).to_string(),
                    value: (*v).to_string(),
                })
                .collect(),
        )
    }

    /// Adds an edge of the given type, enforcing conformance: the endpoint
    /// node types must match the edge type's signature.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] / [`GraphError::UnknownEdgeType`]
    /// for dangling references, and [`GraphError::EdgeTypeMismatch`] when the
    /// endpoints violate the signature.
    pub fn add_edge(
        &mut self,
        source: NodeId,
        target: NodeId,
        edge_type: EdgeTypeId,
    ) -> Result<EdgeId> {
        self.schema.check_edge_type(edge_type)?;
        let src_rec = self
            .nodes
            .get(source.index())
            .ok_or(GraphError::UnknownNode(source))?;
        let dst_rec = self
            .nodes
            .get(target.index())
            .ok_or(GraphError::UnknownNode(target))?;
        let et = self.schema.edge_type(edge_type);
        if (et.source, et.target) != (src_rec.node_type, dst_rec.node_type) {
            return Err(GraphError::EdgeTypeMismatch {
                edge_type,
                expected: (et.source, et.target),
                actual: (src_rec.node_type, dst_rec.node_type),
            });
        }
        let id = EdgeId::from_usize(self.edges.len());
        self.edges.push(EdgeRecord {
            source,
            target,
            edge_type,
        });
        Ok(id)
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph, building CSR adjacency in both directions.
    pub fn freeze(self) -> DataGraph {
        let n = self.nodes.len();
        let out_pairs: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| (e.source.raw(), e.target.raw()))
            .collect();
        let (out_csr, out_perm) = Csr::from_edges(n, &out_pairs);
        let in_pairs: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| (e.target.raw(), e.source.raw()))
            .collect();
        let (in_csr, in_perm) = Csr::from_edges(n, &in_pairs);
        DataGraph {
            schema: self.schema,
            nodes: self.nodes,
            edges: self.edges,
            out_csr,
            out_edge_ids: out_perm,
            in_csr,
            in_edge_ids: in_perm,
        }
    }
}

/// An immutable, CSR-indexed labeled data graph.
#[derive(Clone, Debug)]
pub struct DataGraph {
    schema: SchemaGraph,
    nodes: Vec<NodeRecord>,
    edges: Vec<EdgeRecord>,
    out_csr: Csr,
    /// For each out-CSR slot, the [`EdgeId`] it stores.
    out_edge_ids: Vec<u32>,
    in_csr: Csr,
    /// For each in-CSR slot, the [`EdgeId`] it stores.
    in_edge_ids: Vec<u32>,
}

impl DataGraph {
    /// The schema this graph conforms to.
    #[inline]
    pub fn schema(&self) -> &SchemaGraph {
        &self.schema
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_usize)
    }

    /// Iterates over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId::from_usize)
    }

    /// The node record.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &NodeRecord {
        &self.nodes[id.index()]
    }

    /// The edge record.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &EdgeRecord {
        &self.edges[id.index()]
    }

    /// The node's type.
    #[inline]
    pub fn node_type(&self, id: NodeId) -> NodeTypeId {
        self.nodes[id.index()].node_type
    }

    /// The node's type label, e.g. `"Paper"`.
    #[inline]
    pub fn node_label(&self, id: NodeId) -> &str {
        self.schema.node_label(self.node_type(id))
    }

    /// Out-edges of `node` as `(EdgeId, target)` pairs.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.out_csr
            .neighbors(node.index())
            .map(|(t, slot)| (EdgeId::new(self.out_edge_ids[slot]), NodeId::new(t)))
    }

    /// In-edges of `node` as `(EdgeId, source)` pairs.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.in_csr
            .neighbors(node.index())
            .map(|(s, slot)| (EdgeId::new(self.in_edge_ids[slot]), NodeId::new(s)))
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_csr.degree(node.index())
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_csr.degree(node.index())
    }

    /// Concatenated attribute values of a node — the "document" text used
    /// for IR scoring (Section 3). Values are joined with single spaces.
    pub fn node_text(&self, id: NodeId) -> String {
        let rec = &self.nodes[id.index()];
        let mut out = String::new();
        for attr in &rec.attributes {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&attr.value);
        }
        out
    }

    /// A short human-readable display name for a node: the value of its
    /// first attribute named `Name` or `Title`, else its first attribute
    /// value, else its type label + id.
    pub fn node_display(&self, id: NodeId) -> String {
        let rec = &self.nodes[id.index()];
        for attr in &rec.attributes {
            if attr.name.eq_ignore_ascii_case("name") || attr.name.eq_ignore_ascii_case("title") {
                return attr.value.clone();
            }
        }
        if let Some(attr) = rec.attributes.first() {
            return attr.value.clone();
        }
        format!("{}#{}", self.node_label(id), id.raw())
    }

    /// Re-verifies conformance of the whole graph against its schema.
    ///
    /// Insertion through [`DataGraphBuilder`] already guarantees this; the
    /// check exists for graphs reconstructed from external storage.
    pub fn verify_conformance(&self) -> Result<()> {
        for (idx, edge) in self.edges.iter().enumerate() {
            let et = self.schema.edge_type(edge.edge_type);
            let actual = (self.node_type(edge.source), self.node_type(edge.target));
            if (et.source, et.target) != actual {
                let _ = idx;
                return Err(GraphError::EdgeTypeMismatch {
                    edge_type: edge.edge_type,
                    expected: (et.source, et.target),
                    actual,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the running example of Figure 1: a 7-node DBLP subset.
    pub(crate) fn figure1_graph() -> DataGraph {
        let mut schema = SchemaGraph::new();
        let paper = schema.add_node_type("Paper").unwrap();
        let conf = schema.add_node_type("Conference").unwrap();
        let year = schema.add_node_type("Year").unwrap();
        let author = schema.add_node_type("Author").unwrap();
        let cites = schema.add_edge_type(paper, paper, "cites").unwrap();
        let by = schema.add_edge_type(paper, author, "by").unwrap();
        let has = schema.add_edge_type(conf, year, "has_instance").unwrap();
        let contains = schema.add_edge_type(year, paper, "contains").unwrap();

        let mut b = DataGraphBuilder::new(schema);
        let p_index = b
            .add_node_with(
                paper,
                &[
                    ("Title", "Index Selection for OLAP."),
                    ("Year", "ICDE 1997"),
                ],
            )
            .unwrap();
        let p_cube = b
            .add_node_with(
                paper,
                &[
                    ("Title", "Data Cube: A Relational Aggregation Operator"),
                    ("Year", "ICDE 1996"),
                ],
            )
            .unwrap();
        let icde = b.add_node_with(conf, &[("Name", "ICDE")]).unwrap();
        let y97 = b
            .add_node_with(
                year,
                &[
                    ("Name", "ICDE"),
                    ("Year", "1997"),
                    ("Location", "Birmingham"),
                ],
            )
            .unwrap();
        let p_range = b
            .add_node_with(paper, &[("Title", "Range Queries in OLAP Data Cubes.")])
            .unwrap();
        let p_model = b
            .add_node_with(paper, &[("Title", "Modeling Multidimensional Databases.")])
            .unwrap();
        let agrawal = b.add_node_with(author, &[("Name", "R. Agrawal")]).unwrap();

        b.add_edge(p_index, p_cube, cites).unwrap();
        b.add_edge(icde, y97, has).unwrap();
        b.add_edge(y97, p_index, contains).unwrap();
        b.add_edge(y97, p_model, contains).unwrap();
        b.add_edge(p_range, p_cube, cites).unwrap();
        b.add_edge(p_range, p_model, cites).unwrap();
        b.add_edge(p_model, p_cube, cites).unwrap();
        b.add_edge(p_range, agrawal, by).unwrap();
        b.add_edge(p_model, agrawal, by).unwrap();
        b.freeze()
    }

    #[test]
    fn figure1_counts() {
        let g = figure1_graph();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 9);
        g.verify_conformance().unwrap();
    }

    #[test]
    fn adjacency_directions() {
        let g = figure1_graph();
        // p_cube (node 1) is cited by three papers and cites nothing.
        let cube = NodeId::new(1);
        assert_eq!(g.out_degree(cube), 0);
        assert_eq!(g.in_degree(cube), 3);
        let sources: Vec<_> = g.in_edges(cube).map(|(_, s)| s.raw()).collect();
        assert_eq!(sources.len(), 3);
        assert!(sources.contains(&0) && sources.contains(&4) && sources.contains(&5));
    }

    #[test]
    fn edge_type_mismatch_rejected() {
        let mut schema = SchemaGraph::new();
        let a = schema.add_node_type("A").unwrap();
        let bt = schema.add_node_type("B").unwrap();
        let r = schema.add_edge_type(a, bt, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let n1 = b.add_node(a, vec![]).unwrap();
        let n2 = b.add_node(a, vec![]).unwrap();
        assert!(matches!(
            b.add_edge(n1, n2, r),
            Err(GraphError::EdgeTypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut schema = SchemaGraph::new();
        let a = schema.add_node_type("A").unwrap();
        let r = schema.add_edge_type(a, a, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let n1 = b.add_node(a, vec![]).unwrap();
        assert!(matches!(
            b.add_edge(n1, NodeId::new(9), r),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn node_text_concatenates_attribute_values() {
        let g = figure1_graph();
        let text = g.node_text(NodeId::new(3));
        assert_eq!(text, "ICDE 1997 Birmingham");
    }

    #[test]
    fn node_display_prefers_title_or_name() {
        let g = figure1_graph();
        assert_eq!(g.node_display(NodeId::new(6)), "R. Agrawal");
        assert!(g
            .node_display(NodeId::new(0))
            .starts_with("Index Selection"));
    }

    #[test]
    fn edge_ids_align_between_directions() {
        let g = figure1_graph();
        for node in g.nodes() {
            for (eid, tgt) in g.out_edges(node) {
                let rec = g.edge(eid);
                assert_eq!(rec.source, node);
                assert_eq!(rec.target, tgt);
            }
            for (eid, src) in g.in_edges(node) {
                let rec = g.edge(eid);
                assert_eq!(rec.target, node);
                assert_eq!(rec.source, src);
            }
        }
    }
}
