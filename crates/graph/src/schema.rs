//! Schema graphs (Section 2, Figure 2 / Figure 4 of the paper).
//!
//! A schema graph `G(V_G, E_G)` is a directed graph of *node types* (labels
//! such as "Paper", "Author") connected by *edge types* (roles such as
//! "cites"). Data graphs conform to a schema graph; the authority transfer
//! schema graph (see [`crate::transfer`]) is derived from it.

use crate::error::{GraphError, Result};
use crate::ids::{EdgeTypeId, NodeTypeId};
use std::collections::HashMap;

/// An edge type: a labeled, directed relationship between two node types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeType {
    /// Node type at the tail of the edge.
    pub source: NodeTypeId,
    /// Node type at the head of the edge.
    pub target: NodeTypeId,
    /// Role label, e.g. `"cites"`. May be empty when the role is evident
    /// from the endpoint labels (the paper omits such labels).
    pub label: String,
}

/// A directed schema graph describing the structure of a data graph.
///
/// # Example
/// ```
/// use orex_graph::SchemaGraph;
///
/// let mut schema = SchemaGraph::new();
/// let paper = schema.add_node_type("Paper").unwrap();
/// let author = schema.add_node_type("Author").unwrap();
/// let cites = schema.add_edge_type(paper, paper, "cites").unwrap();
/// let by = schema.add_edge_type(paper, author, "by").unwrap();
/// assert_eq!(schema.node_type_count(), 2);
/// assert_eq!(schema.edge_type_count(), 2);
/// assert_eq!(schema.edge_type(cites).label, "cites");
/// assert_ne!(cites, by);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SchemaGraph {
    node_labels: Vec<String>,
    node_by_label: HashMap<String, NodeTypeId>,
    edge_types: Vec<EdgeType>,
    edge_by_signature: HashMap<(NodeTypeId, NodeTypeId, String), EdgeTypeId>,
}

impl SchemaGraph {
    /// Creates an empty schema graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node type with the given label.
    ///
    /// # Errors
    /// Returns [`GraphError::DuplicateNodeType`] if the label is taken.
    pub fn add_node_type(&mut self, label: impl Into<String>) -> Result<NodeTypeId> {
        let label = label.into();
        if self.node_by_label.contains_key(&label) {
            return Err(GraphError::DuplicateNodeType(label));
        }
        let id = NodeTypeId::from_usize(self.node_labels.len());
        self.node_by_label.insert(label.clone(), id);
        self.node_labels.push(label);
        Ok(id)
    }

    /// Registers an edge type from `source` to `target` with role `label`.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNodeType`] if an endpoint type does not
    /// exist, or [`GraphError::DuplicateEdgeType`] if the exact
    /// (source, target, label) signature is already registered.
    pub fn add_edge_type(
        &mut self,
        source: NodeTypeId,
        target: NodeTypeId,
        label: impl Into<String>,
    ) -> Result<EdgeTypeId> {
        self.check_node_type(source)?;
        self.check_node_type(target)?;
        let label = label.into();
        let signature = (source, target, label.clone());
        if self.edge_by_signature.contains_key(&signature) {
            return Err(GraphError::DuplicateEdgeType(label));
        }
        let id = EdgeTypeId::from_usize(self.edge_types.len());
        self.edge_by_signature.insert(signature, id);
        self.edge_types.push(EdgeType {
            source,
            target,
            label,
        });
        Ok(id)
    }

    /// Number of node types.
    #[inline]
    pub fn node_type_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of edge types.
    #[inline]
    pub fn edge_type_count(&self) -> usize {
        self.edge_types.len()
    }

    /// Label of a node type.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn node_label(&self, id: NodeTypeId) -> &str {
        &self.node_labels[id.index()]
    }

    /// Looks up a node type by label.
    pub fn node_type_by_label(&self, label: &str) -> Option<NodeTypeId> {
        self.node_by_label.get(label).copied()
    }

    /// The full edge-type record.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn edge_type(&self, id: EdgeTypeId) -> &EdgeType {
        &self.edge_types[id.index()]
    }

    /// Looks up an edge type by its exact signature.
    pub fn edge_type_by_signature(
        &self,
        source: NodeTypeId,
        target: NodeTypeId,
        label: &str,
    ) -> Option<EdgeTypeId> {
        self.edge_by_signature
            .get(&(source, target, label.to_string()))
            .copied()
    }

    /// Iterates over all node type ids.
    pub fn node_types(&self) -> impl Iterator<Item = NodeTypeId> {
        (0..self.node_labels.len()).map(NodeTypeId::from_usize)
    }

    /// Iterates over all edge type ids.
    pub fn edge_types(&self) -> impl Iterator<Item = EdgeTypeId> {
        (0..self.edge_types.len()).map(EdgeTypeId::from_usize)
    }

    /// Validates that a node-type id belongs to this schema.
    pub fn check_node_type(&self, id: NodeTypeId) -> Result<()> {
        if id.index() < self.node_labels.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownNodeType(id))
        }
    }

    /// Validates that an edge-type id belongs to this schema.
    pub fn check_edge_type(&self, id: EdgeTypeId) -> Result<()> {
        if id.index() < self.edge_types.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownEdgeType(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dblp_like() -> SchemaGraph {
        let mut s = SchemaGraph::new();
        let paper = s.add_node_type("Paper").unwrap();
        let conf = s.add_node_type("Conference").unwrap();
        let year = s.add_node_type("Year").unwrap();
        let author = s.add_node_type("Author").unwrap();
        s.add_edge_type(paper, paper, "cites").unwrap();
        s.add_edge_type(paper, author, "by").unwrap();
        s.add_edge_type(conf, year, "has_instance").unwrap();
        s.add_edge_type(year, paper, "contains").unwrap();
        s
    }

    #[test]
    fn builds_dblp_schema() {
        let s = dblp_like();
        assert_eq!(s.node_type_count(), 4);
        assert_eq!(s.edge_type_count(), 4);
        let paper = s.node_type_by_label("Paper").unwrap();
        assert_eq!(s.node_label(paper), "Paper");
    }

    #[test]
    fn duplicate_node_type_rejected() {
        let mut s = SchemaGraph::new();
        s.add_node_type("Paper").unwrap();
        assert!(matches!(
            s.add_node_type("Paper"),
            Err(GraphError::DuplicateNodeType(_))
        ));
    }

    #[test]
    fn duplicate_edge_signature_rejected() {
        let mut s = SchemaGraph::new();
        let a = s.add_node_type("A").unwrap();
        let b = s.add_node_type("B").unwrap();
        s.add_edge_type(a, b, "r").unwrap();
        assert!(matches!(
            s.add_edge_type(a, b, "r"),
            Err(GraphError::DuplicateEdgeType(_))
        ));
        // Same label with a different signature is allowed.
        s.add_edge_type(b, a, "r").unwrap();
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut s = SchemaGraph::new();
        let a = s.add_node_type("A").unwrap();
        let bogus = NodeTypeId::new(7);
        assert!(matches!(
            s.add_edge_type(a, bogus, "r"),
            Err(GraphError::UnknownNodeType(_))
        ));
    }

    #[test]
    fn signature_lookup() {
        let s = dblp_like();
        let paper = s.node_type_by_label("Paper").unwrap();
        let author = s.node_type_by_label("Author").unwrap();
        let by = s.edge_type_by_signature(paper, author, "by").unwrap();
        assert_eq!(s.edge_type(by).label, "by");
        assert!(s.edge_type_by_signature(author, paper, "by").is_none());
    }

    #[test]
    fn iterators_cover_all_types() {
        let s = dblp_like();
        assert_eq!(s.node_types().count(), 4);
        assert_eq!(s.edge_types().count(), 4);
    }
}
