//! Strongly-typed identifiers for graph entities.
//!
//! All identifiers are thin `u32` newtypes: the paper's datasets top out
//! below a million nodes (Table 1), and `u32` keeps CSR arrays compact,
//! which matters for the power-iteration inner loop.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `raw` does not fit in `u32`.
            #[inline]
            pub fn from_usize(raw: usize) -> Self {
                Self(u32::try_from(raw).expect("id overflows u32"))
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize`, suitable for array indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a node in a [`crate::DataGraph`].
    NodeId,
    "n"
);
id_type!(
    /// Identifier of an edge in a [`crate::DataGraph`].
    EdgeId,
    "e"
);
id_type!(
    /// Identifier of a node type (label) in a [`crate::SchemaGraph`].
    NodeTypeId,
    "nt"
);
id_type!(
    /// Identifier of an edge type (role) in a [`crate::SchemaGraph`].
    EdgeTypeId,
    "et"
);

/// Direction of an authority-transfer edge relative to its schema edge.
///
/// Section 2 of the paper splits every schema edge `e_S = (u -> v)` into a
/// *forward* transfer edge `e_S^f = (u -> v)` and a *backward* transfer edge
/// `e_S^b = (v -> u)`, each carrying its own authority transfer rate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Direction {
    /// Along the schema edge (`e^f`), e.g. "paper cites paper".
    Forward,
    /// Against the schema edge (`e^b`), e.g. "paper is cited by paper".
    Backward,
}

impl Direction {
    /// Both directions, forward first.
    pub const BOTH: [Direction; 2] = [Direction::Forward, Direction::Backward];

    /// Returns the opposite direction.
    #[inline]
    pub fn reverse(self) -> Self {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }

    /// A compact index (0 = forward, 1 = backward) used to address
    /// per-direction arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::Forward => 0,
            Direction::Backward => 1,
        }
    }
}

/// A transfer-edge type: a schema edge type together with a direction.
///
/// This is the unit at which authority transfer rates are assigned
/// (Figure 3 of the paper) and at which structure-based reformulation
/// adjusts them (Equation 13).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransferTypeId {
    /// The underlying schema edge type.
    pub edge_type: EdgeTypeId,
    /// Whether authority flows along or against the schema edge.
    pub direction: Direction,
}

impl TransferTypeId {
    /// Forward transfer type for a schema edge type.
    #[inline]
    pub fn forward(edge_type: EdgeTypeId) -> Self {
        Self {
            edge_type,
            direction: Direction::Forward,
        }
    }

    /// Backward transfer type for a schema edge type.
    #[inline]
    pub fn backward(edge_type: EdgeTypeId) -> Self {
        Self {
            edge_type,
            direction: Direction::Backward,
        }
    }

    /// Dense index into a `2 * |edge types|` array: forward types first
    /// within each edge type.
    #[inline]
    pub fn dense_index(self) -> usize {
        self.edge_type.index() * 2 + self.direction.index()
    }

    /// Inverse of [`Self::dense_index`].
    #[inline]
    pub fn from_dense_index(idx: usize) -> Self {
        Self {
            edge_type: EdgeTypeId::from_usize(idx / 2),
            direction: if idx.is_multiple_of(2) {
                Direction::Forward
            } else {
                Direction::Backward
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from_usize(42), id);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    #[should_panic(expected = "id overflows u32")]
    fn from_usize_overflow_panics() {
        let _ = NodeId::from_usize(u64::MAX as usize);
    }

    #[test]
    fn direction_reverse_is_involution() {
        for d in Direction::BOTH {
            assert_eq!(d.reverse().reverse(), d);
            assert_ne!(d.reverse(), d);
        }
    }

    #[test]
    fn transfer_type_dense_index_roundtrip() {
        for et in 0..5u32 {
            for d in Direction::BOTH {
                let t = TransferTypeId {
                    edge_type: EdgeTypeId::new(et),
                    direction: d,
                };
                assert_eq!(TransferTypeId::from_dense_index(t.dense_index()), t);
            }
        }
    }

    #[test]
    fn transfer_type_dense_index_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for et in 0..8u32 {
            for d in Direction::BOTH {
                let t = TransferTypeId {
                    edge_type: EdgeTypeId::new(et),
                    direction: d,
                };
                assert!(seen.insert(t.dense_index()));
            }
        }
    }
}
