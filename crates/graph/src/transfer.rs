//! Authority transfer graphs (Section 2, Figures 3 and 5 of the paper).
//!
//! From the schema graph we derive the *authority transfer schema graph*:
//! every schema edge type `e_S = (u -> v)` is split into a forward transfer
//! type `e_S^f = (u -> v)` and a backward transfer type `e_S^b = (v -> u)`,
//! each annotated with an authority transfer rate `a(.) ∈ [0, 1]`. The rates
//! live in a [`TransferRates`] vector — the object that structure-based
//! reformulation (Section 5.2) adjusts and that the training experiments
//! (Figures 11, 13) compare against ground truth by cosine similarity.
//!
//! From a data graph conforming to the schema we derive the *authority
//! transfer data graph* [`TransferGraph`]: every data edge `u -> v` of type
//! `t` materializes a forward transfer edge `u -> v` of type `t^f` and a
//! backward transfer edge `v -> u` of type `t^b`. Equation 1 assigns each
//! transfer edge the weight
//!
//! ```text
//! alpha(e) = a(type(e)) / OutDeg(src(e), type(e))   if OutDeg > 0
//! ```
//!
//! where `OutDeg(u, tt)` counts `u`'s outgoing transfer edges of type `tt`.
//! The topology is built once; [`TransferGraph::weights`] re-derives the
//! `alpha` array for any rates vector, so reformulation iterations never
//! rebuild adjacency.

use crate::csr::Csr;
use crate::data::DataGraph;
use crate::error::{GraphError, Result};
use crate::ids::{EdgeId, NodeId, TransferTypeId};
use crate::schema::SchemaGraph;

/// The authority transfer rates of an authority transfer schema graph:
/// one rate per transfer-edge type (`2 * |schema edge types|` entries,
/// indexed by [`TransferTypeId::dense_index`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TransferRates {
    rates: Vec<f64>,
}

impl TransferRates {
    /// All rates set to `rate` (the experiments in Section 6.1 initialize
    /// every rate to 0.3 before training).
    pub fn uniform(schema: &SchemaGraph, rate: f64) -> Self {
        Self {
            rates: vec![rate; schema.edge_type_count() * 2],
        }
    }

    /// All rates zero.
    pub fn zero(schema: &SchemaGraph) -> Self {
        Self::uniform(schema, 0.0)
    }

    /// Builds from a dense vector (forward/backward interleaved per edge
    /// type, see [`TransferTypeId::dense_index`]).
    ///
    /// # Errors
    /// Returns [`GraphError::RatesDimensionMismatch`] on wrong length.
    pub fn from_dense(schema: &SchemaGraph, rates: Vec<f64>) -> Result<Self> {
        let expected = schema.edge_type_count() * 2;
        if rates.len() != expected {
            return Err(GraphError::RatesDimensionMismatch {
                expected,
                actual: rates.len(),
            });
        }
        Ok(Self { rates })
    }

    /// Number of transfer-edge types.
    #[inline]
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True when the schema has no edge types.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rate of a transfer-edge type.
    ///
    /// # Panics
    /// Panics if the type is out of range for the schema.
    #[inline]
    pub fn get(&self, tt: TransferTypeId) -> f64 {
        self.rates[tt.dense_index()]
    }

    /// Sets the rate of a transfer-edge type.
    ///
    /// # Errors
    /// Returns [`GraphError::RateOutOfRange`] for rates outside `[0, 1]`.
    pub fn set(&mut self, tt: TransferTypeId, rate: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
            return Err(GraphError::RateOutOfRange {
                transfer_type: tt,
                rate,
            });
        }
        self.rates[tt.dense_index()] = rate;
        Ok(())
    }

    /// Dense view of the rates.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.rates
    }

    /// Mutable dense view (used by reformulation's normalization passes,
    /// which re-validate afterwards).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.rates
    }

    /// Replaces every zero backward (or forward) rate with `epsilon`.
    ///
    /// Theorem 1 of the paper requires a non-zero reverse direction for
    /// every edge type so the explaining-subgraph fixpoint converges;
    /// "arbitrarily small flow rates can be assigned to the direction of
    /// small importance".
    pub fn ensure_bidirectional(&mut self, epsilon: f64) {
        for rate in &mut self.rates {
            if *rate == 0.0 {
                *rate = epsilon;
            }
        }
    }

    /// Per-schema-node-type sums of outgoing transfer rates.
    ///
    /// A forward rate of edge type `(u -> v)` is outgoing for `u`; the
    /// backward rate is outgoing for `v`.
    pub fn outgoing_sums(&self, schema: &SchemaGraph) -> Vec<f64> {
        let mut sums = vec![0.0; schema.node_type_count()];
        for et in schema.edge_types() {
            let sig = schema.edge_type(et);
            sums[sig.source.index()] += self.get(TransferTypeId::forward(et));
            sums[sig.target.index()] += self.get(TransferTypeId::backward(et));
        }
        sums
    }

    /// Validates that all rates are in `[0, 1]` and that every schema node
    /// type's outgoing rates sum to at most 1 (+ a small tolerance), the
    /// condition Section 5.2 step 4 enforces for ObjectRank2 convergence.
    pub fn validate(&self, schema: &SchemaGraph) -> Result<()> {
        let expected = schema.edge_type_count() * 2;
        if self.rates.len() != expected {
            return Err(GraphError::RatesDimensionMismatch {
                expected,
                actual: self.rates.len(),
            });
        }
        for (idx, &rate) in self.rates.iter().enumerate() {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(GraphError::RateOutOfRange {
                    transfer_type: TransferTypeId::from_dense_index(idx),
                    rate,
                });
            }
        }
        const TOL: f64 = 1e-9;
        for (nt_idx, &sum) in self.outgoing_sums(schema).iter().enumerate() {
            if sum > 1.0 + TOL {
                return Err(GraphError::OutgoingRatesExceedOne {
                    node_type: crate::ids::NodeTypeId::from_usize(nt_idx),
                    sum,
                });
            }
        }
        Ok(())
    }

    /// Rescales each schema node type's outgoing rates so they sum to at
    /// most 1 — step 4 of the Section 5.2 normalization, also needed when
    /// initializing "all rates to 0.3" as the training experiments do
    /// (Section 6.1.1): on schemas where a node type owns four transfer
    /// types, the raw uniform vector sums to 1.2 and would break
    /// ObjectRank2 convergence.
    pub fn rescale_outgoing(&mut self, schema: &SchemaGraph) {
        let sums = self.outgoing_sums(schema);
        for et in schema.edge_types() {
            let sig = schema.edge_type(et);
            for (tt, owner) in [
                (TransferTypeId::forward(et), sig.source),
                (TransferTypeId::backward(et), sig.target),
            ] {
                let sum = sums[owner.index()];
                if sum > 1.0 {
                    self.rates[tt.dense_index()] /= sum;
                }
            }
        }
    }

    /// A uniform rates vector rescaled to validity: every rate starts at
    /// `rate` and each node type's outgoing rates are scaled down to sum
    /// to at most 1.
    pub fn normalized_uniform(schema: &SchemaGraph, rate: f64) -> Self {
        let mut r = Self::uniform(schema, rate);
        r.rescale_outgoing(schema);
        debug_assert!(r.validate(schema).is_ok());
        r
    }

    /// Cosine similarity with another rates vector — the training-quality
    /// metric of Figures 11 and 13.
    ///
    /// Returns 0 when either vector is all-zero.
    pub fn cosine_similarity(&self, other: &TransferRates) -> f64 {
        assert_eq!(self.rates.len(), other.rates.len(), "dimension mismatch");
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for (&a, &b) in self.rates.iter().zip(&other.rates) {
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }
}

/// The authority transfer data graph: materialized forward + backward
/// transfer edges over a data graph, with weight derivation per Equation 1.
///
/// Topology is immutable; `alpha` weights are a function of a
/// [`TransferRates`] vector, recomputed in one pass by [`Self::weights`].
#[derive(Clone, Debug)]
pub struct TransferGraph {
    node_count: usize,
    /// Forward-orientation CSR (adjacency of the transfer graph itself).
    out_csr: Csr,
    /// For each out-CSR slot, the transfer-edge index it stores.
    out_slot_edge: Vec<u32>,
    /// Reverse CSR (in-adjacency of the transfer graph).
    in_csr: Csr,
    /// For each in-CSR slot, the transfer-edge index it stores.
    in_slot_edge: Vec<u32>,
    /// Per transfer edge: source node.
    edge_src: Vec<u32>,
    /// Per transfer edge: target node.
    edge_dst: Vec<u32>,
    /// Per transfer edge: dense transfer-type index.
    edge_type: Vec<u16>,
    /// Per transfer edge: the data edge it was derived from.
    edge_origin: Vec<u32>,
    /// Per transfer edge: `1 / OutDeg(src, type)` (Equation 1 denominator).
    inv_out_deg: Vec<f64>,
    transfer_type_count: usize,
}

impl TransferGraph {
    /// Builds the authority transfer data graph for `data`.
    pub fn build(data: &DataGraph) -> Self {
        let n = data.node_count();
        let m = data.edge_count();
        let tt_count = data.schema().edge_type_count() * 2;
        assert!(tt_count <= u16::MAX as usize + 1, "too many edge types");

        let mut edge_src = Vec::with_capacity(2 * m);
        let mut edge_dst = Vec::with_capacity(2 * m);
        let mut edge_type: Vec<u16> = Vec::with_capacity(2 * m);
        let mut edge_origin = Vec::with_capacity(2 * m);
        for eid in data.edges() {
            let rec = data.edge(eid);
            let fwd = TransferTypeId::forward(rec.edge_type).dense_index() as u16;
            let bwd = TransferTypeId::backward(rec.edge_type).dense_index() as u16;
            edge_src.push(rec.source.raw());
            edge_dst.push(rec.target.raw());
            edge_type.push(fwd);
            edge_origin.push(eid.raw());
            edge_src.push(rec.target.raw());
            edge_dst.push(rec.source.raw());
            edge_type.push(bwd);
            edge_origin.push(eid.raw());
        }

        // OutDeg(u, tt): count per (node, transfer type).
        let mut out_deg = vec![0u32; n * tt_count];
        for i in 0..edge_src.len() {
            out_deg[edge_src[i] as usize * tt_count + edge_type[i] as usize] += 1;
        }
        let inv_out_deg: Vec<f64> = (0..edge_src.len())
            .map(|i| {
                let d = out_deg[edge_src[i] as usize * tt_count + edge_type[i] as usize];
                1.0 / d as f64
            })
            .collect();
        drop(out_deg);

        let pairs: Vec<(u32, u32)> = edge_src
            .iter()
            .zip(&edge_dst)
            .map(|(&s, &d)| (s, d))
            .collect();
        let (out_csr, out_slot_edge) = Csr::from_edges(n, &pairs);
        let rev_pairs: Vec<(u32, u32)> = pairs.iter().map(|&(s, d)| (d, s)).collect();
        let (in_csr, in_slot_edge) = Csr::from_edges(n, &rev_pairs);

        Self {
            node_count: n,
            out_csr,
            out_slot_edge,
            in_csr,
            in_slot_edge,
            edge_src,
            edge_dst,
            edge_type,
            edge_origin,
            inv_out_deg,
            transfer_type_count: tt_count,
        }
    }

    /// Number of nodes (same as the data graph).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of transfer edges (`2 *` data-graph edges).
    #[inline]
    pub fn transfer_edge_count(&self) -> usize {
        self.edge_src.len()
    }

    /// Number of transfer-edge types (`2 *` schema edge types).
    #[inline]
    pub fn transfer_type_count(&self) -> usize {
        self.transfer_type_count
    }

    /// Derives the per-edge `alpha` weights for a rates vector (Equation 1).
    ///
    /// The returned vector is indexed by transfer-edge index.
    pub fn weights(&self, rates: &TransferRates) -> Vec<f64> {
        assert_eq!(
            rates.len(),
            self.transfer_type_count,
            "rates dimension mismatch"
        );
        let dense = rates.as_slice();
        self.edge_type
            .iter()
            .zip(&self.inv_out_deg)
            .map(|(&tt, &inv)| dense[tt as usize] * inv)
            .collect()
    }

    /// Outgoing transfer edges of `node`: `(target, transfer edge index)`.
    pub fn out_transfer(&self, node: NodeId) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.out_csr
            .neighbors(node.index())
            .map(|(t, slot)| (NodeId::new(t), self.out_slot_edge[slot] as usize))
    }

    /// Incoming transfer edges of `node`: `(source, transfer edge index)`.
    pub fn in_transfer(&self, node: NodeId) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.in_csr
            .neighbors(node.index())
            .map(|(s, slot)| (NodeId::new(s), self.in_slot_edge[slot] as usize))
    }

    /// Out-degree in the transfer graph.
    #[inline]
    pub fn out_transfer_degree(&self, node: NodeId) -> usize {
        self.out_csr.degree(node.index())
    }

    /// `(source, target)` of a transfer edge.
    #[inline]
    pub fn edge_endpoints(&self, edge: usize) -> (NodeId, NodeId) {
        (
            NodeId::new(self.edge_src[edge]),
            NodeId::new(self.edge_dst[edge]),
        )
    }

    /// Transfer type of a transfer edge.
    #[inline]
    pub fn edge_transfer_type(&self, edge: usize) -> TransferTypeId {
        TransferTypeId::from_dense_index(self.edge_type[edge] as usize)
    }

    /// The data edge a transfer edge was derived from.
    #[inline]
    pub fn edge_origin(&self, edge: usize) -> EdgeId {
        EdgeId::new(self.edge_origin[edge])
    }

    /// `1 / OutDeg(src, type)` of a transfer edge (Equation 1 denominator).
    #[inline]
    pub fn edge_inv_out_deg(&self, edge: usize) -> f64 {
        self.inv_out_deg[edge]
    }

    /// Raw CSR of the forward orientation, for hot loops (power iteration).
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out_csr
    }

    /// For each out-CSR slot, the transfer-edge index it stores.
    #[inline]
    pub fn out_slot_edges(&self) -> &[u32] {
        &self.out_slot_edge
    }

    /// Raw CSR of the reverse orientation (in-adjacency), for pull-based
    /// power iteration.
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.in_csr
    }

    /// For each in-CSR slot, the transfer-edge index it stores.
    #[inline]
    pub fn in_slot_edges(&self) -> &[u32] {
        &self.in_slot_edge
    }

    /// Checks the structural invariant that the per-node sum of outgoing
    /// `alpha` weights never exceeds the per-type rate sum (and hence 1 for
    /// validated rates): Equation 1 divides each type's rate evenly among
    /// same-type edges.
    pub fn verify_weight_invariant(&self, rates: &TransferRates) -> bool {
        let weights = self.weights(rates);
        let mut ok = true;
        for node in 0..self.node_count {
            let sum: f64 = self
                .out_transfer(NodeId::from_usize(node))
                .map(|(_, e)| weights[e])
                .sum();
            // Sum of rates over *distinct* types present is <= sum of all
            // rates; with validated rates that is <= 1 per schema node type.
            if sum > rates.as_slice().iter().sum::<f64>() + 1e-9 {
                ok = false;
            }
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataGraph, DataGraphBuilder};
    use crate::ids::EdgeTypeId;

    fn tiny_graph() -> DataGraph {
        // Schema: Paper -cites-> Paper, Paper -by-> Author.
        let mut schema = SchemaGraph::new();
        let paper = schema.add_node_type("Paper").unwrap();
        let author = schema.add_node_type("Author").unwrap();
        let cites = schema.add_edge_type(paper, paper, "cites").unwrap();
        let by = schema.add_edge_type(paper, author, "by").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let p0 = b.add_node(paper, vec![]).unwrap();
        let p1 = b.add_node(paper, vec![]).unwrap();
        let p2 = b.add_node(paper, vec![]).unwrap();
        let a0 = b.add_node(author, vec![]).unwrap();
        b.add_edge(p0, p1, cites).unwrap();
        b.add_edge(p0, p2, cites).unwrap();
        b.add_edge(p0, a0, by).unwrap();
        b.add_edge(p1, a0, by).unwrap();
        b.freeze()
    }

    fn dblp_rates(schema: &SchemaGraph) -> TransferRates {
        // cites: fwd 0.7, bwd 0.0; by: fwd (PA) 0.2, bwd (AP) 0.2
        let mut r = TransferRates::zero(schema);
        let cites = EdgeTypeId::new(0);
        let by = EdgeTypeId::new(1);
        r.set(TransferTypeId::forward(cites), 0.7).unwrap();
        r.set(TransferTypeId::backward(cites), 0.0).unwrap();
        r.set(TransferTypeId::forward(by), 0.2).unwrap();
        r.set(TransferTypeId::backward(by), 0.2).unwrap();
        r
    }

    #[test]
    fn transfer_graph_doubles_edges() {
        let g = tiny_graph();
        let tg = TransferGraph::build(&g);
        assert_eq!(tg.transfer_edge_count(), 2 * g.edge_count());
        assert_eq!(tg.node_count(), g.node_count());
    }

    #[test]
    fn equation1_divides_rate_by_type_outdegree() {
        let g = tiny_graph();
        let tg = TransferGraph::build(&g);
        let rates = dblp_rates(g.schema());
        let w = tg.weights(&rates);
        // p0 has 2 outgoing "cites" edges: each forward weight = 0.7 / 2.
        let p0 = NodeId::new(0);
        let mut cites_fwd: Vec<f64> = tg
            .out_transfer(p0)
            .filter(|&(_, e)| {
                tg.edge_transfer_type(e) == TransferTypeId::forward(EdgeTypeId::new(0))
            })
            .map(|(_, e)| w[e])
            .collect();
        cites_fwd.sort_by(f64::total_cmp);
        assert_eq!(cites_fwd.len(), 2);
        assert!((cites_fwd[0] - 0.35).abs() < 1e-12);
        assert!((cites_fwd[1] - 0.35).abs() < 1e-12);
        // p0 has 1 outgoing "by" edge: forward weight = 0.2 / 1.
        let by_fwd: Vec<f64> = tg
            .out_transfer(p0)
            .filter(|&(_, e)| {
                tg.edge_transfer_type(e) == TransferTypeId::forward(EdgeTypeId::new(1))
            })
            .map(|(_, e)| w[e])
            .collect();
        assert_eq!(by_fwd, vec![0.2]);
    }

    #[test]
    fn backward_outdegree_counts_data_in_edges() {
        let g = tiny_graph();
        let tg = TransferGraph::build(&g);
        let rates = dblp_rates(g.schema());
        let w = tg.weights(&rates);
        // a0 has 2 incoming "by" edges, so 2 outgoing backward-"by"
        // transfer edges, each weighted 0.2 / 2 = 0.1.
        let a0 = NodeId::new(3);
        let back: Vec<f64> = tg.out_transfer(a0).map(|(_, e)| w[e]).collect();
        assert_eq!(back.len(), 2);
        for v in back {
            assert!((v - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn in_transfer_is_reverse_of_out_transfer() {
        let g = tiny_graph();
        let tg = TransferGraph::build(&g);
        for node in 0..tg.node_count() {
            let node = NodeId::from_usize(node);
            for (dst, e) in tg.out_transfer(node) {
                assert!(tg.in_transfer(dst).any(|(s, e2)| s == node && e2 == e));
            }
        }
    }

    #[test]
    fn zero_rate_yields_zero_weight() {
        let g = tiny_graph();
        let tg = TransferGraph::build(&g);
        let rates = dblp_rates(g.schema());
        let w = tg.weights(&rates);
        // Backward "cites" rate is 0 => the corresponding weights are 0.
        for (e, &weight) in w.iter().enumerate().take(tg.transfer_edge_count()) {
            if tg.edge_transfer_type(e) == TransferTypeId::backward(EdgeTypeId::new(0)) {
                assert_eq!(weight, 0.0);
            }
        }
    }

    #[test]
    fn rates_validation() {
        let g = tiny_graph();
        let schema = g.schema();
        let mut r = dblp_rates(schema);
        r.validate(schema).unwrap();
        // Papers' outgoing sum: cites_f 0.7 + by_f 0.2 + cites_b 0.0 = 0.9 ok.
        // Push cites forward to 0.9 => 1.1 > 1 => invalid.
        r.set(TransferTypeId::forward(EdgeTypeId::new(0)), 0.9)
            .unwrap();
        assert!(matches!(
            r.validate(schema),
            Err(GraphError::OutgoingRatesExceedOne { .. })
        ));
    }

    #[test]
    fn rate_bounds_enforced() {
        let g = tiny_graph();
        let mut r = TransferRates::zero(g.schema());
        assert!(r
            .set(TransferTypeId::forward(EdgeTypeId::new(0)), 1.5)
            .is_err());
        assert!(r
            .set(TransferTypeId::forward(EdgeTypeId::new(0)), -0.1)
            .is_err());
        assert!(r
            .set(TransferTypeId::forward(EdgeTypeId::new(0)), f64::NAN)
            .is_err());
    }

    #[test]
    fn cosine_similarity_basics() {
        let g = tiny_graph();
        let schema = g.schema();
        let a = dblp_rates(schema);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-12);
        let z = TransferRates::zero(schema);
        assert_eq!(a.cosine_similarity(&z), 0.0);
        let u = TransferRates::uniform(schema, 0.3);
        let sim = a.cosine_similarity(&u);
        assert!(sim > 0.0 && sim < 1.0);
    }

    #[test]
    fn ensure_bidirectional_fills_zeros() {
        let g = tiny_graph();
        let mut r = dblp_rates(g.schema());
        r.ensure_bidirectional(1e-4);
        assert_eq!(r.get(TransferTypeId::backward(EdgeTypeId::new(0))), 1e-4);
        // Non-zero rates untouched.
        assert_eq!(r.get(TransferTypeId::forward(EdgeTypeId::new(0))), 0.7);
    }

    #[test]
    fn outgoing_sums_split_by_endpoint_type() {
        let g = tiny_graph();
        let schema = g.schema();
        let r = dblp_rates(schema);
        let sums = r.outgoing_sums(schema);
        // Paper: cites_f 0.7 + cites_b 0.0 + by_f 0.2 = 0.9
        assert!((sums[0] - 0.9).abs() < 1e-12);
        // Author: by_b 0.2
        assert!((sums[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn weight_invariant_holds() {
        let g = tiny_graph();
        let tg = TransferGraph::build(&g);
        let rates = dblp_rates(g.schema());
        assert!(tg.verify_weight_invariant(&rates));
    }
}
