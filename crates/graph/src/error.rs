//! Error types for graph construction and validation.

use crate::ids::{EdgeTypeId, NodeId, NodeTypeId, TransferTypeId};
use std::fmt;

/// Errors raised while building or validating graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node type label was registered twice in a schema graph.
    DuplicateNodeType(String),
    /// An edge type with the same (source, label, target) triple already
    /// exists in the schema graph.
    DuplicateEdgeType(String),
    /// Referenced node type does not exist in the schema.
    UnknownNodeType(NodeTypeId),
    /// Referenced edge type does not exist in the schema.
    UnknownEdgeType(EdgeTypeId),
    /// Referenced data node does not exist.
    UnknownNode(NodeId),
    /// A data edge's endpoints do not match its edge type's signature,
    /// violating conformance (Section 2, condition 2).
    EdgeTypeMismatch {
        /// The offending edge type.
        edge_type: EdgeTypeId,
        /// Expected (source, target) node types.
        expected: (NodeTypeId, NodeTypeId),
        /// Actual (source, target) node types.
        actual: (NodeTypeId, NodeTypeId),
    },
    /// An authority transfer rate is outside `[0, 1]`.
    RateOutOfRange {
        /// The transfer-edge type whose rate is invalid.
        transfer_type: TransferTypeId,
        /// The offending rate.
        rate: f64,
    },
    /// The outgoing transfer rates of a schema node type sum to more
    /// than 1, which breaks the convergence guarantee of ObjectRank2.
    OutgoingRatesExceedOne {
        /// The schema node type whose outgoing rates are too large.
        node_type: NodeTypeId,
        /// The offending sum.
        sum: f64,
    },
    /// The rates vector has the wrong dimensionality for the schema.
    RatesDimensionMismatch {
        /// Expected number of transfer-edge types (`2 * |edge types|`).
        expected: usize,
        /// Provided number.
        actual: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateNodeType(label) => {
                write!(f, "node type '{label}' already registered")
            }
            GraphError::DuplicateEdgeType(label) => {
                write!(
                    f,
                    "edge type '{label}' already registered for this signature"
                )
            }
            GraphError::UnknownNodeType(id) => write!(f, "unknown node type {id}"),
            GraphError::UnknownEdgeType(id) => write!(f, "unknown edge type {id}"),
            GraphError::UnknownNode(id) => write!(f, "unknown node {id}"),
            GraphError::EdgeTypeMismatch {
                edge_type,
                expected,
                actual,
            } => write!(
                f,
                "edge of type {edge_type} expects ({} -> {}), got ({} -> {})",
                expected.0, expected.1, actual.0, actual.1
            ),
            GraphError::RateOutOfRange {
                transfer_type,
                rate,
            } => write!(
                f,
                "authority transfer rate {rate} for {transfer_type:?} outside [0, 1]"
            ),
            GraphError::OutgoingRatesExceedOne { node_type, sum } => write!(
                f,
                "outgoing transfer rates of node type {node_type} sum to {sum} > 1"
            ),
            GraphError::RatesDimensionMismatch { expected, actual } => write!(
                f,
                "rates vector has {actual} entries, schema requires {expected}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;

    #[test]
    fn display_messages_are_informative() {
        let err = GraphError::RateOutOfRange {
            transfer_type: TransferTypeId {
                edge_type: EdgeTypeId::new(1),
                direction: Direction::Backward,
            },
            rate: 1.5,
        };
        let msg = err.to_string();
        assert!(msg.contains("1.5"));
        assert!(msg.contains("outside"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&GraphError::UnknownNode(NodeId::new(3)));
    }
}
