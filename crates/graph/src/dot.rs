//! Graphviz DOT export for data graphs and schema graphs.
//!
//! The paper's online demo displays explaining subgraphs visually; DOT
//! export is the rendering backend for that (the explain crate layers
//! flow annotations on top via its own exporter).

use crate::data::DataGraph;
use crate::schema::SchemaGraph;
use std::fmt::Write as _;

/// Escapes a string for use inside a DOT double-quoted label.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a schema graph in DOT format.
pub fn schema_to_dot(schema: &SchemaGraph) -> String {
    let mut out = String::from("digraph schema {\n  rankdir=LR;\n");
    for nt in schema.node_types() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\", shape=box];",
            nt.index(),
            escape_label(schema.node_label(nt))
        );
    }
    for et in schema.edge_types() {
        let sig = schema.edge_type(et);
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            sig.source.index(),
            sig.target.index(),
            escape_label(&sig.label)
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a data graph in DOT format with display names as labels.
///
/// Intended for small graphs (examples, explanations); rendering a
/// million-node graph is the caller's own adventure.
pub fn data_to_dot(graph: &DataGraph) -> String {
    let mut out = String::from("digraph data {\n");
    for node in graph.nodes() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}: {}\"];",
            node.index(),
            escape_label(graph.node_label(node)),
            escape_label(&graph.node_display(node))
        );
    }
    for eid in graph.edges() {
        let rec = graph.edge(eid);
        let label = &graph.schema().edge_type(rec.edge_type).label;
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            rec.source.index(),
            rec.target.index(),
            escape_label(label)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataGraphBuilder;

    #[test]
    fn escape_handles_quotes_and_newlines() {
        assert_eq!(escape_label(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label("a\nb"), "a\\nb");
        assert_eq!(escape_label(r"a\b"), r"a\\b");
    }

    #[test]
    fn schema_dot_contains_all_types() {
        let mut s = SchemaGraph::new();
        let p = s.add_node_type("Paper").unwrap();
        s.add_edge_type(p, p, "cites").unwrap();
        let dot = schema_to_dot(&s);
        assert!(dot.contains("Paper"));
        assert!(dot.contains("cites"));
        assert!(dot.starts_with("digraph schema {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn data_dot_contains_nodes_and_edges() {
        let mut s = SchemaGraph::new();
        let p = s.add_node_type("Paper").unwrap();
        let cites = s.add_edge_type(p, p, "cites").unwrap();
        let mut b = DataGraphBuilder::new(s);
        let n0 = b
            .add_node_with(p, &[("Title", "A \"quoted\" title")])
            .unwrap();
        let n1 = b.add_node_with(p, &[("Title", "Other")]).unwrap();
        b.add_edge(n0, n1, cites).unwrap();
        let g = b.freeze();
        let dot = data_to_dot(&g);
        assert!(dot.contains(r#"A \"quoted\" title"#));
        assert!(dot.contains("0 -> 1"));
    }
}
