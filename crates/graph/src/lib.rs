//! # orex-graph — labeled graph substrate for authority-flow ranking
//!
//! Implements the data model of Section 2 of *"Explaining and Reformulating
//! Authority Flow Queries"* (Varadarajan, Hristidis, Raschid; ICDE 2008):
//!
//! - [`SchemaGraph`]: node types and edge types (Figures 2 and 4);
//! - [`DataGraph`]: labeled data graphs of attributed objects, with
//!   conformance checking and CSR adjacency;
//! - [`TransferRates`]: authority transfer rates of the authority transfer
//!   schema graph (Figure 3) — the vector structure-based reformulation
//!   learns;
//! - [`TransferGraph`]: the authority transfer data graph (Figure 5) with
//!   per-edge weights derived by Equation 1.
//!
//! The crate is dependency-free; all storage is flat CSR arrays tuned for
//! the power-iteration workloads of the downstream crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod csr;
mod data;
mod dot;
mod error;
mod ids;
mod schema;
mod stats;
mod subgraph;
mod transfer;

pub use csr::Csr;
pub use data::{Attribute, DataGraph, DataGraphBuilder, EdgeRecord, NodeRecord};
pub use dot::{data_to_dot, escape_label, schema_to_dot};
pub use error::{GraphError, Result};
pub use ids::{Direction, EdgeId, EdgeTypeId, NodeId, NodeTypeId, TransferTypeId};
pub use schema::{EdgeType, SchemaGraph};
pub use stats::GraphStats;
pub use subgraph::{induced_subgraph, neighborhood, SubgraphResult};
pub use transfer::{TransferGraph, TransferRates};
