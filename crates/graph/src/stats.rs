//! Structural statistics of data graphs: per-type counts and degree
//! distributions.
//!
//! Table 1 of the paper reports raw sizes; validating a *synthetic*
//! stand-in additionally needs shape checks — the citation in-degree must
//! be heavy-tailed like real DBLP, node-type proportions must be sane.
//! These statistics power the `info` CLI command and the generator tests.

use crate::data::DataGraph;
use crate::ids::{EdgeTypeId, NodeTypeId};

/// Per-node-type and per-edge-type counts plus degree statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count per node type (indexed by [`NodeTypeId`]).
    pub nodes_per_type: Vec<usize>,
    /// Edge count per edge type (indexed by [`EdgeTypeId`]).
    pub edges_per_type: Vec<usize>,
    /// Maximum in-degree over all nodes.
    pub max_in_degree: usize,
    /// Maximum out-degree over all nodes.
    pub max_out_degree: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Gini coefficient of the in-degree distribution (0 = uniform,
    /// -> 1 = concentrated on few hubs). Power-law citation graphs land
    /// well above random graphs here.
    pub in_degree_gini: f64,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(graph: &DataGraph) -> Self {
        let schema = graph.schema();
        let mut nodes_per_type = vec![0usize; schema.node_type_count()];
        let mut in_degrees = Vec::with_capacity(graph.node_count());
        let mut max_in = 0usize;
        let mut max_out = 0usize;
        for node in graph.nodes() {
            nodes_per_type[graph.node_type(node).index()] += 1;
            let din = graph.in_degree(node);
            let dout = graph.out_degree(node);
            in_degrees.push(din);
            max_in = max_in.max(din);
            max_out = max_out.max(dout);
        }
        let mut edges_per_type = vec![0usize; schema.edge_type_count()];
        for edge in graph.edges() {
            edges_per_type[graph.edge(edge).edge_type.index()] += 1;
        }
        let mean_degree = if graph.node_count() > 0 {
            2.0 * graph.edge_count() as f64 / graph.node_count() as f64
        } else {
            0.0
        };
        Self {
            nodes_per_type,
            edges_per_type,
            max_in_degree: max_in,
            max_out_degree: max_out,
            mean_degree,
            in_degree_gini: gini(&mut in_degrees),
        }
    }

    /// Node count of a type.
    pub fn nodes_of(&self, t: NodeTypeId) -> usize {
        self.nodes_per_type[t.index()]
    }

    /// Edge count of a type.
    pub fn edges_of(&self, t: EdgeTypeId) -> usize {
        self.edges_per_type[t.index()]
    }
}

/// Gini coefficient of a non-negative sample (sorted in place).
fn gini(values: &mut [usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable();
    let n = values.len() as f64;
    let total: f64 = values.iter().map(|&v| v as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataGraphBuilder;
    use crate::schema::SchemaGraph;

    fn star(n: usize) -> DataGraph {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let hub = b.add_node(p, vec![]).unwrap();
        for _ in 0..n {
            let leaf = b.add_node(p, vec![]).unwrap();
            b.add_edge(leaf, hub, r).unwrap();
        }
        b.freeze()
    }

    #[test]
    fn counts_and_degrees() {
        let g = star(5);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes_per_type, vec![6]);
        assert_eq!(s.edges_per_type, vec![5]);
        assert_eq!(s.max_in_degree, 5);
        assert_eq!(s.max_out_degree, 1);
        assert!((s.mean_degree - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn star_gini_is_high() {
        let g = star(20);
        let s = GraphStats::compute(&g);
        // All in-degree concentrated on one node of 21.
        assert!(s.in_degree_gini > 0.9, "gini {}", s.in_degree_gini);
    }

    #[test]
    fn uniform_gini_is_low() {
        // Ring: every node has in-degree 1.
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..10).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        for i in 0..10 {
            b.add_edge(nodes[i], nodes[(i + 1) % 10], r).unwrap();
        }
        let s = GraphStats::compute(&b.freeze());
        assert!(s.in_degree_gini.abs() < 1e-9, "gini {}", s.in_degree_gini);
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&mut []), 0.0);
        assert_eq!(gini(&mut [0, 0, 0]), 0.0);
        assert_eq!(gini(&mut [7]), 0.0);
    }
}
