//! Induced subgraph extraction.
//!
//! The paper's DS7cancer dataset is "a subset of DS7 consisting of PubMed
//! publications related to 'cancer' and all biological entities related
//! to these publications" (Section 6) — i.e. an induced neighborhood
//! subgraph of a seed set. [`induced_subgraph`] implements the general
//! operation: keep a node set, renumber, and keep every edge whose
//! endpoints survive; [`neighborhood`] computes hop-limited closures of a
//! seed set for the DS7cancer-style construction.

use crate::data::{DataGraph, DataGraphBuilder};
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Result of an extraction: the new graph plus the mapping from new node
/// ids to the original ones.
#[derive(Debug)]
pub struct SubgraphResult {
    /// The extracted graph (same schema, renumbered nodes).
    pub graph: DataGraph,
    /// For each new node id (by index), the original node id.
    pub original_ids: Vec<NodeId>,
}

/// Extracts the subgraph induced by the nodes satisfying `keep`,
/// preserving attribute data and the schema. Node ids are renumbered
/// densely in ascending original order.
pub fn induced_subgraph(graph: &DataGraph, keep: impl Fn(NodeId) -> bool) -> SubgraphResult {
    let mut original_ids = Vec::new();
    let mut new_id = vec![u32::MAX; graph.node_count()];
    for node in graph.nodes() {
        if keep(node) {
            new_id[node.index()] = original_ids.len() as u32;
            original_ids.push(node);
        }
    }
    let mut builder = DataGraphBuilder::with_capacity(
        graph.schema().clone(),
        original_ids.len(),
        graph.edge_count() / 2,
    );
    for &orig in &original_ids {
        let rec = graph.node(orig);
        builder
            .add_node(rec.node_type, rec.attributes.clone())
            .expect("schema unchanged");
    }
    for edge in graph.edges() {
        let rec = graph.edge(edge);
        let s = new_id[rec.source.index()];
        let t = new_id[rec.target.index()];
        if s != u32::MAX && t != u32::MAX {
            builder
                .add_edge(NodeId::new(s), NodeId::new(t), rec.edge_type)
                .expect("endpoints kept, types unchanged");
        }
    }
    SubgraphResult {
        graph: builder.freeze(),
        original_ids,
    }
}

/// The set of nodes within `hops` undirected hops of the seed set
/// (including the seeds), as a boolean mask over the original graph.
pub fn neighborhood(graph: &DataGraph, seeds: &[NodeId], hops: usize) -> Vec<bool> {
    let mut keep = vec![false; graph.node_count()];
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    for &s in seeds {
        if !keep[s.index()] {
            keep[s.index()] = true;
            queue.push_back((s, 0));
        }
    }
    while let Some((node, depth)) = queue.pop_front() {
        if depth == hops {
            continue;
        }
        for (_, next) in graph.out_edges(node) {
            if !keep[next.index()] {
                keep[next.index()] = true;
                queue.push_back((next, depth + 1));
            }
        }
        for (_, prev) in graph.in_edges(node) {
            if !keep[prev.index()] {
                keep[prev.index()] = true;
                queue.push_back((prev, depth + 1));
            }
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaGraph;

    /// Chain a -> b -> c -> d with an isolated node e.
    fn chain() -> DataGraph {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..5)
            .map(|i| {
                b.add_node_with(p, &[("Name", format!("n{i}").as_str())])
                    .unwrap()
            })
            .collect();
        for i in 0..3 {
            b.add_edge(nodes[i], nodes[i + 1], r).unwrap();
        }
        b.freeze()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = chain();
        // Keep b, c, e (ids 1, 2, 4).
        let sub = induced_subgraph(&g, |n| matches!(n.raw(), 1 | 2 | 4));
        assert_eq!(sub.graph.node_count(), 3);
        assert_eq!(sub.graph.edge_count(), 1); // only b -> c survives
        assert_eq!(
            sub.original_ids,
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(4)]
        );
        // Attributes preserved under the new numbering.
        assert_eq!(sub.graph.node_display(NodeId::new(0)), "n1");
        sub.graph.verify_conformance().unwrap();
    }

    #[test]
    fn keep_all_is_isomorphic() {
        let g = chain();
        let sub = induced_subgraph(&g, |_| true);
        assert_eq!(sub.graph.node_count(), g.node_count());
        assert_eq!(sub.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn keep_none_is_empty() {
        let g = chain();
        let sub = induced_subgraph(&g, |_| false);
        assert_eq!(sub.graph.node_count(), 0);
        assert_eq!(sub.graph.edge_count(), 0);
    }

    #[test]
    fn neighborhood_respects_hops_and_direction_blindness() {
        let g = chain();
        // From c (id 2), 1 hop reaches b and d in either direction.
        let mask = neighborhood(&g, &[NodeId::new(2)], 1);
        assert_eq!(mask, vec![false, true, true, true, false]);
        // 0 hops: seeds only.
        let mask = neighborhood(&g, &[NodeId::new(2)], 0);
        assert_eq!(mask, vec![false, false, true, false, false]);
        // 3 hops: whole chain, never the isolated node.
        let mask = neighborhood(&g, &[NodeId::new(0)], 3);
        assert_eq!(mask, vec![true, true, true, true, false]);
    }

    #[test]
    fn ds7cancer_style_extraction() {
        // Seeds = nodes whose name contains "2"; subset = 1-hop closure.
        let g = chain();
        let seeds: Vec<NodeId> = g
            .nodes()
            .filter(|&n| g.node_text(n).contains('2'))
            .collect();
        let mask = neighborhood(&g, &seeds, 1);
        let sub = induced_subgraph(&g, |n| mask[n.index()]);
        assert_eq!(sub.graph.node_count(), 3);
        sub.graph.verify_conformance().unwrap();
    }
}
