//! Property-based tests for the graph substrate: CSR round-trips,
//! transfer-graph structural invariants, and Equation 1 conservation laws.

use orex_graph::{
    Csr, DataGraph, DataGraphBuilder, NodeId, SchemaGraph, TransferGraph, TransferRates,
    TransferTypeId,
};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` nodes.
fn edges_strategy(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (1..max_nodes).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..max_edges))
    })
}

proptest! {
    /// Every input edge appears exactly once in the CSR, under its source.
    #[test]
    fn csr_preserves_all_edges((n, edges) in edges_strategy(50, 200)) {
        let (csr, perm) = Csr::from_edges(n, &edges);
        prop_assert_eq!(csr.edge_count(), edges.len());
        let mut seen = vec![false; edges.len()];
        for node in 0..n {
            for (target, slot) in csr.neighbors(node) {
                let input = perm[slot] as usize;
                prop_assert!(!seen[input]);
                seen[input] = true;
                prop_assert_eq!(edges[input], (node as u32, target));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Degrees sum to the edge count.
    #[test]
    fn csr_degrees_sum_to_edge_count((n, edges) in edges_strategy(50, 200)) {
        let (csr, _) = Csr::from_edges(n, &edges);
        let total: usize = (0..n).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(total, edges.len());
    }
}

/// Builds a random two-type data graph: papers citing papers and written
/// by authors.
fn random_data_graph(
    papers: usize,
    authors: usize,
    cite_pairs: &[(u32, u32)],
    by_pairs: &[(u32, u32)],
) -> DataGraph {
    let mut schema = SchemaGraph::new();
    let paper = schema.add_node_type("Paper").unwrap();
    let author = schema.add_node_type("Author").unwrap();
    let cites = schema.add_edge_type(paper, paper, "cites").unwrap();
    let by = schema.add_edge_type(paper, author, "by").unwrap();
    let mut b = DataGraphBuilder::new(schema);
    let pids: Vec<_> = (0..papers)
        .map(|_| b.add_node(paper, vec![]).unwrap())
        .collect();
    let aids: Vec<_> = (0..authors)
        .map(|_| b.add_node(author, vec![]).unwrap())
        .collect();
    for &(s, t) in cite_pairs {
        b.add_edge(pids[s as usize % papers], pids[t as usize % papers], cites)
            .unwrap();
    }
    for &(s, t) in by_pairs {
        b.add_edge(pids[s as usize % papers], aids[t as usize % authors], by)
            .unwrap();
    }
    b.freeze()
}

proptest! {
    /// The transfer graph always has exactly twice the data edges, and the
    /// per-node, per-type outgoing alphas of each node sum to the type's
    /// rate whenever the node has any edge of that type (Equation 1).
    #[test]
    fn transfer_weights_sum_to_rate_per_type(
        papers in 1usize..20,
        authors in 1usize..10,
        cite_pairs in proptest::collection::vec((0u32..100, 0u32..100), 0..60),
        by_pairs in proptest::collection::vec((0u32..100, 0u32..100), 0..40),
        rate_seed in 0u64..1000,
    ) {
        let g = random_data_graph(papers, authors, &cite_pairs, &by_pairs);
        let tg = TransferGraph::build(&g);
        prop_assert_eq!(tg.transfer_edge_count(), 2 * g.edge_count());

        // Derive four pseudo-random rates in [0, 0.25] so sums stay <= 1.
        let mut rates = TransferRates::zero(g.schema());
        let mut x = rate_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for et in g.schema().edge_types() {
            for tt in [TransferTypeId::forward(et), TransferTypeId::backward(et)] {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = ((x >> 33) % 1000) as f64 / 4000.0;
                rates.set(tt, r).unwrap();
            }
        }
        rates.validate(g.schema()).unwrap();
        let w = tg.weights(&rates);

        for node in 0..tg.node_count() {
            let node = NodeId::from_usize(node);
            let mut per_type = std::collections::HashMap::new();
            for (_, e) in tg.out_transfer(node) {
                *per_type.entry(tg.edge_transfer_type(e)).or_insert(0.0) += w[e];
            }
            for (tt, sum) in per_type {
                prop_assert!((sum - rates.get(tt)).abs() < 1e-9,
                    "type {:?} sums to {} not {}", tt, sum, rates.get(tt));
            }
        }
    }

    /// In-transfer adjacency is the exact reverse of out-transfer adjacency.
    #[test]
    fn transfer_in_is_reverse_of_out(
        papers in 1usize..15,
        cite_pairs in proptest::collection::vec((0u32..50, 0u32..50), 0..40),
    ) {
        let g = random_data_graph(papers, 1, &cite_pairs, &[]);
        let tg = TransferGraph::build(&g);
        let mut out_set = std::collections::HashSet::new();
        let mut in_set = std::collections::HashSet::new();
        for v in 0..tg.node_count() {
            let v = NodeId::from_usize(v);
            for (dst, e) in tg.out_transfer(v) {
                out_set.insert((v, dst, e));
            }
            for (src, e) in tg.in_transfer(v) {
                in_set.insert((src, v, e));
            }
        }
        prop_assert_eq!(out_set, in_set);
    }

    /// Conformance re-verification succeeds for builder-constructed graphs.
    #[test]
    fn builder_graphs_conform(
        papers in 1usize..15,
        authors in 1usize..8,
        cite_pairs in proptest::collection::vec((0u32..50, 0u32..50), 0..30),
        by_pairs in proptest::collection::vec((0u32..50, 0u32..50), 0..20),
    ) {
        let g = random_data_graph(papers, authors, &cite_pairs, &by_pairs);
        prop_assert!(g.verify_conformance().is_ok());
    }
}
