//! Property-based tests for the ranking engines: Equation 4 fixpoint
//! identities, damping behaviour, top-k consistency, HITS invariants.

use orex_authority::{
    base_subgraph, hits, power_iteration, power_iteration_batch, top_k, BaseSet, HitsParams,
    RankParams, TransitionMatrix,
};
use orex_graph::{
    DataGraphBuilder, NodeId, SchemaGraph, TransferGraph, TransferRates, TransferTypeId,
};
use proptest::prelude::*;

fn build_graph(
    n: usize,
    edges: &[(u32, u32)],
    fwd: f64,
    bwd: f64,
) -> (TransferGraph, TransferRates) {
    let mut schema = SchemaGraph::new();
    let p = schema.add_node_type("P").unwrap();
    let r = schema.add_edge_type(p, p, "r").unwrap();
    let mut b = DataGraphBuilder::new(schema);
    let nodes: Vec<_> = (0..n).map(|_| b.add_node(p, vec![]).unwrap()).collect();
    for &(s, t) in edges {
        b.add_edge(nodes[s as usize % n], nodes[t as usize % n], r)
            .unwrap();
    }
    let g = b.freeze();
    let mut rates = TransferRates::zero(g.schema());
    rates.set(TransferTypeId::forward(r), fwd).unwrap();
    rates.set(TransferTypeId::backward(r), bwd).unwrap();
    (TransferGraph::build(&g), rates)
}

fn tight() -> RankParams {
    RankParams {
        epsilon: 1e-13,
        max_iterations: 10_000,
        threads: 1,
        ..RankParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// At the fixpoint, every component satisfies Equation 4 and the
    /// total mass is in (0, 1].
    #[test]
    fn equation4_holds_componentwise(
        n in 2usize..20,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..60),
        base_node in 0u32..20,
        fwd_pct in 10u8..=45,
        bwd_pct in 0u8..=45,
    ) {
        let fwd = fwd_pct as f64 / 100.0;
        let bwd = bwd_pct as f64 / 100.0;
        let (tg, rates) = build_graph(n, &edges, fwd, bwd);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([base_node % n as u32]).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        prop_assert!(res.converged);
        let w = m.edge_weights();
        let d = 0.85;
        for i in 0..n {
            let mut acc = 0.0;
            for (src, e) in tg.in_transfer(NodeId::from_usize(i)) {
                acc += w[e] * res.scores[src.index()];
            }
            let expect = d * acc + (1.0 - d) * base.probability(i as u32);
            prop_assert!((res.scores[i] - expect).abs() < 1e-9,
                "node {i}: {} vs {}", res.scores[i], expect);
        }
        let sum: f64 = res.scores.iter().sum();
        prop_assert!(sum > 0.0 && sum <= 1.0 + 1e-9, "mass {sum}");
    }

    /// Lower damping keeps more mass at the base set.
    #[test]
    fn damping_controls_base_concentration(
        n in 2usize..15,
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..40),
    ) {
        let (tg, rates) = build_graph(n, &edges, 0.4, 0.1);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let low = power_iteration(&m, &base, &RankParams { damping: 0.3, ..tight() }, None);
        let high = power_iteration(&m, &base, &RankParams { damping: 0.9, ..tight() }, None);
        prop_assert!(low.scores[0] >= high.scores[0] - 1e-9,
            "base mass should grow as damping falls: {} vs {}",
            low.scores[0], high.scores[0]);
    }

    /// top_k is consistent with the raw scores for any k.
    #[test]
    fn top_k_agrees_with_scores(
        n in 1usize..15,
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..40),
        k in 0usize..20,
    ) {
        let (tg, rates) = build_graph(n, &edges, 0.5, 0.1);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::global(n).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        let ranked = top_k(&res.scores, k, 0.0);
        prop_assert!(ranked.len() <= k);
        // Every reported entry outranks every non-reported node.
        let reported: std::collections::HashSet<u32> =
            ranked.iter().map(|r| r.node).collect();
        if let Some(worst) = ranked.last() {
            for (node, &score) in res.scores.iter().enumerate() {
                if !reported.contains(&(node as u32)) && score > 0.0 {
                    prop_assert!(
                        score < worst.score
                            || (score == worst.score && node as u32 > worst.node)
                            || ranked.len() < k,
                        "missed better node {node}"
                    );
                }
            }
        }
    }

    /// HITS vectors stay L2-normalized and non-negative on any graph
    /// with at least one edge.
    #[test]
    fn hits_invariants(
        n in 2usize..15,
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..40),
    ) {
        let (tg, _) = build_graph(n, &edges, 0.5, 0.0);
        let res = hits(&tg, None, &HitsParams::default());
        for &a in res.authorities.iter().chain(&res.hubs) {
            prop_assert!(a >= 0.0 && a.is_finite());
        }
        let na: f64 = res.authorities.iter().map(|x| x * x).sum();
        // Norm is 1 unless the graph has no intact edge structure.
        prop_assert!((na - 1.0).abs() < 1e-6 || na == 0.0);
    }

    /// The batched kernel is bit-identical to running each base set
    /// through its own power iteration, for any graph, base-set mix and
    /// thread count: same scores, same iteration counts, same residuals.
    #[test]
    fn batch_bitwise_equals_independent_runs(
        n in 2usize..16,
        edges in proptest::collection::vec((0u32..16, 0u32..16), 1..40),
        bases in proptest::collection::vec(
            proptest::collection::vec((0u32..16, 0.1f64..10.0), 1..4),
            1..5,
        ),
        threads in 1usize..4,
        fwd_pct in 10u8..=45,
        bwd_pct in 0u8..=45,
    ) {
        let (tg, rates) = build_graph(n, &edges, fwd_pct as f64 / 100.0, bwd_pct as f64 / 100.0);
        let m = TransitionMatrix::new(&tg, &rates);
        let params = RankParams {
            threads,
            ..RankParams::default()
        };
        let base_sets: Vec<BaseSet> = bases
            .iter()
            .map(|ws| {
                BaseSet::weighted(ws.iter().map(|&(i, w)| (i % n as u32, w))).unwrap()
            })
            .collect();
        let batched = power_iteration_batch(&m, &base_sets, &params, None);
        prop_assert_eq!(batched.len(), base_sets.len());
        for (base, batch) in base_sets.iter().zip(&batched) {
            let solo = power_iteration(&m, base, &params, None);
            prop_assert_eq!(batch.iterations, solo.iterations);
            prop_assert_eq!(batch.converged, solo.converged);
            prop_assert_eq!(batch.residuals.len(), solo.residuals.len());
            for (b, s) in batch.residuals.iter().zip(&solo.residuals) {
                prop_assert_eq!(b.to_bits(), s.to_bits());
            }
            for (b, s) in batch.scores.iter().zip(&solo.scores) {
                prop_assert_eq!(b.to_bits(), s.to_bits());
            }
        }
    }

    /// The base subgraph always contains its roots and only valid nodes.
    #[test]
    fn base_subgraph_sane(
        n in 1usize..15,
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..30),
        root in 0u32..15,
    ) {
        let (tg, _) = build_graph(n, &edges, 0.5, 0.1);
        let root = root % n as u32;
        let sub = base_subgraph(&tg, &[root]);
        prop_assert!(sub.contains(&root));
        for &node in &sub {
            prop_assert!((node as usize) < n);
        }
        // Sorted and unique.
        for w in sub.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
