//! Topic-sensitive PageRank (Haveliwala, WWW 2002): the Web-side
//! precomputation baseline the paper's related work discusses.
//!
//! One rank vector is precomputed per topic (base set = the topic's
//! representative nodes); at query time the vectors are combined with the
//! query's topic-affinity weights. The paper contrasts this with
//! ObjectRank's fully query-specific base sets; implementing both makes
//! the trade-off measurable (precomputation cost vs per-query fidelity).

use crate::base_set::BaseSet;
use crate::power::{power_iteration, RankParams, TransitionMatrix};

/// Precomputed topic-specific rank vectors.
#[derive(Clone, Debug)]
pub struct TopicRanks {
    vectors: Vec<Vec<f64>>,
    node_count: usize,
}

impl TopicRanks {
    /// Precomputes one rank vector per topic base set. Empty topic sets
    /// produce zero vectors.
    pub fn precompute(
        matrix: &TransitionMatrix<'_>,
        topics: &[BaseSet],
        params: &RankParams,
    ) -> Self {
        let node_count = matrix.node_count();
        let vectors = topics
            .iter()
            .map(|base| power_iteration(matrix, base, params, None).scores)
            .collect();
        Self {
            vectors,
            node_count,
        }
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.vectors.len()
    }

    /// The rank vector of one topic.
    pub fn topic_vector(&self, topic: usize) -> &[f64] {
        &self.vectors[topic]
    }

    /// Query-time combination: `Σ_k w_k · r_k`, with the weights
    /// normalized to sum to 1 (Haveliwala's class-probability weighting).
    ///
    /// # Panics
    /// Panics if `weights` has the wrong dimension or no positive entry.
    pub fn combine(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.vectors.len(), "weight dimension");
        let total: f64 = weights.iter().filter(|&&w| w > 0.0).sum();
        assert!(total > 0.0, "at least one positive topic weight required");
        let mut out = vec![0.0; self.node_count];
        for (w, v) in weights.iter().zip(&self.vectors) {
            if *w <= 0.0 {
                continue;
            }
            let w = w / total;
            for (o, &x) in out.iter_mut().zip(v) {
                *o += w * x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_graph::{DataGraphBuilder, SchemaGraph, TransferGraph, TransferRates, TransferTypeId};

    /// Two communities (0-2 and 3-5) with internal links only.
    fn communities() -> (TransferGraph, TransferRates) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..6).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        for base in [0usize, 3] {
            for i in 0..3 {
                b.add_edge(nodes[base + i], nodes[base + (i + 1) % 3], r)
                    .unwrap();
            }
        }
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.8).unwrap();
        (TransferGraph::build(&g), rates)
    }

    fn params() -> RankParams {
        RankParams {
            epsilon: 1e-12,
            max_iterations: 2000,
            threads: 1,
            ..RankParams::default()
        }
    }

    #[test]
    fn topic_vectors_localize_mass() {
        let (tg, rates) = communities();
        let m = TransitionMatrix::new(&tg, &rates);
        let topics = vec![
            BaseSet::uniform([0u32, 1, 2]).unwrap(),
            BaseSet::uniform([3u32, 4, 5]).unwrap(),
        ];
        let tr = TopicRanks::precompute(&m, &topics, &params());
        assert_eq!(tr.topic_count(), 2);
        // Topic 0's mass stays in community 0.
        let v0 = tr.topic_vector(0);
        assert!(v0[..3].iter().sum::<f64>() > 0.0);
        assert_eq!(v0[3..].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn combine_interpolates() {
        let (tg, rates) = communities();
        let m = TransitionMatrix::new(&tg, &rates);
        let topics = vec![
            BaseSet::uniform([0u32, 1, 2]).unwrap(),
            BaseSet::uniform([3u32, 4, 5]).unwrap(),
        ];
        let tr = TopicRanks::precompute(&m, &topics, &params());
        let half = tr.combine(&[1.0, 1.0]);
        let left = tr.combine(&[1.0, 0.0]);
        for i in 0..3 {
            assert!((half[i] - left[i] / 2.0).abs() < 1e-12);
        }
        // Weights normalize: [2, 2] == [1, 1].
        let double = tr.combine(&[2.0, 2.0]);
        for (a, b) in half.iter().zip(&double) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive topic weight")]
    fn all_zero_weights_panic() {
        let (tg, rates) = communities();
        let m = TransitionMatrix::new(&tg, &rates);
        let topics = vec![BaseSet::uniform([0u32]).unwrap()];
        let tr = TopicRanks::precompute(&m, &topics, &params());
        let _ = tr.combine(&[0.0]);
    }
}
