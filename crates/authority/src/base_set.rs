//! Weighted base sets (Section 3 of the paper).
//!
//! The base set `S(Q)` is the set of nodes the random surfer jumps back to.
//! ObjectRank2's key change over ObjectRank is that the jump probability is
//! *proportional to the node's IR score* rather than uniform; the paper
//! normalizes the IR scores of the base-set nodes to sum to one "since they
//! represent probabilities". [`BaseSet`] stores exactly that normalized
//! sparse probability vector.

use std::fmt;

/// Errors raised while constructing a base set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseSetError {
    /// The base set is empty — the query matched nothing.
    Empty,
    /// All provided weights were zero or negative (or NaN).
    DegenerateWeights,
}

impl fmt::Display for BaseSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseSetError::Empty => write!(f, "base set is empty"),
            BaseSetError::DegenerateWeights => {
                write!(f, "base set weights are all zero, negative, or NaN")
            }
        }
    }
}

impl std::error::Error for BaseSetError {}

/// A normalized sparse probability vector over graph nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct BaseSet {
    /// `(node, probability)` pairs, sorted by node, probabilities > 0 and
    /// summing to 1.
    entries: Vec<(u32, f64)>,
}

impl BaseSet {
    /// Builds a weighted base set from `(node, weight)` pairs, dropping
    /// non-positive entries and normalizing the rest to sum to one.
    ///
    /// # Errors
    /// [`BaseSetError::Empty`] when no pairs are given;
    /// [`BaseSetError::DegenerateWeights`] when no weight is positive.
    pub fn weighted(pairs: impl IntoIterator<Item = (u32, f64)>) -> Result<Self, BaseSetError> {
        let mut entries: Vec<(u32, f64)> = pairs
            .into_iter()
            .filter(|&(_, w)| w > 0.0 && w.is_finite())
            .collect();
        if entries.is_empty() {
            // Distinguish "no input" from "all weights degenerate" only
            // when it matters: both are unusable, but the caller's fix
            // differs (no results vs bad scorer).
            return Err(BaseSetError::Empty);
        }
        entries.sort_unstable_by_key(|&(n, _)| n);
        // Merge duplicates.
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (n, w) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == n => last.1 += w,
                _ => merged.push((n, w)),
            }
        }
        let total: f64 = merged.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(BaseSetError::DegenerateWeights);
        }
        for (_, w) in &mut merged {
            *w /= total;
        }
        Ok(Self { entries: merged })
    }

    /// The original ObjectRank base set: uniform probability over the
    /// given nodes (each weight `1/|S|`).
    pub fn uniform(nodes: impl IntoIterator<Item = u32>) -> Result<Self, BaseSetError> {
        Self::weighted(nodes.into_iter().map(|n| (n, 1.0)))
    }

    /// The global base set: every node of an `n`-node graph, uniformly —
    /// used by global ObjectRank / PageRank.
    ///
    /// # Errors
    /// [`BaseSetError::Empty`] when `n == 0`.
    pub fn global(n: usize) -> Result<Self, BaseSetError> {
        Self::uniform(0..u32::try_from(n).expect("node count overflows u32"))
    }

    /// Number of base-set nodes (`|S(Q)|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false (construction rejects empty sets); present for API
    /// completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(node, probability)` pairs sorted by node.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// The probability of a node (0 if outside the base set).
    pub fn probability(&self, node: u32) -> f64 {
        self.entries
            .binary_search_by_key(&node, |&(n, _)| n)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// True if `node` is in the base set.
    pub fn contains(&self, node: u32) -> bool {
        self.entries
            .binary_search_by_key(&node, |&(n, _)| n)
            .is_ok()
    }

    /// The node ids of the base set, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|&(n, _)| n)
    }

    /// Materializes the dense `s` vector of Equation 4 over `n` nodes.
    ///
    /// # Panics
    /// Panics if any base-set node is `>= n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut dense = vec![0.0; n];
        for &(node, p) in &self.entries {
            dense[node as usize] = p;
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_normalizes_to_one() {
        let b = BaseSet::weighted([(3, 2.0), (1, 1.0), (7, 1.0)]).unwrap();
        let sum: f64 = b.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(b.probability(3), 0.5);
        assert_eq!(b.probability(1), 0.25);
        assert_eq!(b.probability(99), 0.0);
    }

    #[test]
    fn entries_sorted_by_node() {
        let b = BaseSet::weighted([(9, 1.0), (2, 1.0), (5, 1.0)]).unwrap();
        let nodes: Vec<u32> = b.nodes().collect();
        assert_eq!(nodes, vec![2, 5, 9]);
    }

    #[test]
    fn duplicates_merge() {
        let b = BaseSet::weighted([(1, 1.0), (1, 3.0)]).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.probability(1), 1.0);
    }

    #[test]
    fn non_positive_weights_dropped() {
        let b = BaseSet::weighted([(1, 1.0), (2, 0.0), (3, -5.0), (4, f64::NAN)]).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.contains(1));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(BaseSet::weighted([]), Err(BaseSetError::Empty));
        assert_eq!(BaseSet::weighted([(1, 0.0)]), Err(BaseSetError::Empty));
    }

    #[test]
    fn uniform_gives_equal_probabilities() {
        let b = BaseSet::uniform([4, 8, 2, 6]).unwrap();
        for (_, p) in b.iter() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn global_covers_all_nodes() {
        let b = BaseSet::global(5).unwrap();
        assert_eq!(b.len(), 5);
        assert!((b.probability(4) - 0.2).abs() < 1e-12);
        assert!(BaseSet::global(0).is_err());
    }

    #[test]
    fn to_dense_roundtrip() {
        let b = BaseSet::weighted([(0, 1.0), (3, 3.0)]).unwrap();
        let dense = b.to_dense(5);
        assert_eq!(dense.len(), 5);
        assert_eq!(dense[0], 0.25);
        assert_eq!(dense[3], 0.75);
        assert_eq!(dense[1], 0.0);
    }
}
