//! # orex-authority — authority-flow ranking engines
//!
//! The ranking layer of *"Explaining and Reformulating Authority Flow
//! Queries"*: a pull-based, deterministic power-iteration engine over the
//! authority transfer data graph (Equation 4), weighted base sets
//! (ObjectRank2, Section 3), and the baselines the paper compares against
//! (original ObjectRank, the Equation 16 modified ObjectRank, global
//! ObjectRank, and PageRank).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod base_set;
mod hits;
mod objectrank;
mod power;
mod topics;
mod topk;
mod topk_iteration;

pub use base_set::{BaseSet, BaseSetError};
pub use hits::{base_subgraph, hits, HitsParams, HitsResult};
pub use objectrank::{
    global_object_rank, modified_object_rank, object_rank, object_rank2, page_rank, RankingError,
};
pub use power::{power_iteration, power_iteration_batch, RankParams, RankResult, TransitionMatrix};
pub use topics::TopicRanks;
pub use topk::{top_k, Ranked};
pub use topk_iteration::{power_iteration_topk, TopKParams, TopKResult};
