//! Top-k selection over dense score vectors.
//!
//! Every experiment in the paper reports top-k result lists (k = 10 in the
//! surveys). Selection is O(n log k) via a bounded min-heap, with a
//! deterministic tie-break: higher score first, then smaller node id.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in a ranked result list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ranked {
    /// Node id.
    pub node: u32,
    /// Score.
    pub score: f64,
}

/// Wrapper giving `Ranked` the ordering "worse first" so the max-heap
/// becomes a min-heap over result quality.
#[derive(PartialEq)]
struct Worst(Ranked);

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // A result is "greater" (popped/evicted first) when it is
        // *worse*: lower score, or equal score with a larger node id.
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then_with(|| self.0.node.cmp(&other.0.node))
    }
}

/// Returns the `k` highest-scoring nodes (score > `min_score`), best first.
pub fn top_k(scores: &[f64], k: usize, min_score: f64) -> Vec<Ranked> {
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    for (node, &score) in scores.iter().enumerate() {
        if score <= min_score {
            continue;
        }
        let entry = Ranked {
            node: node as u32,
            score,
        };
        if heap.len() < k {
            heap.push(Worst(entry));
        } else if let Some(worst) = heap.peek() {
            let better = entry.score > worst.0.score
                || (entry.score == worst.0.score && entry.node < worst.0.node);
            if better {
                heap.pop();
                heap.push(Worst(entry));
            }
        }
    }
    let mut out: Vec<Ranked> = heap.into_iter().map(|w| w.0).collect();
    out.sort_unstable_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.node.cmp(&b.node))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_best_k_in_order() {
        let scores = [0.1, 0.5, 0.3, 0.9, 0.2];
        let top = top_k(&scores, 3, 0.0);
        let nodes: Vec<u32> = top.iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![3, 1, 2]);
    }

    #[test]
    fn ties_break_by_node_id() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let top = top_k(&scores, 2, 0.0);
        let nodes: Vec<u32> = top.iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![0, 1]);
    }

    #[test]
    fn eviction_removes_largest_id_among_ties() {
        // Regression: when a better candidate evicts a tied pair, the
        // *larger* node id must leave the heap, not the smaller.
        let scores = [0.5, 0.5, 0.9];
        let top = top_k(&scores, 2, 0.0);
        let nodes: Vec<u32> = top.iter().map(|r| r.node).collect();
        assert_eq!(nodes, vec![2, 0]);
    }

    #[test]
    fn fewer_than_k_results() {
        let scores = [0.0, 0.7, 0.0];
        let top = top_k(&scores, 10, 0.0);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].node, 1);
    }

    #[test]
    fn min_score_filters() {
        let scores = [0.1, 0.2, 0.3];
        let top = top_k(&scores, 10, 0.15);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k(&[1.0, 2.0], 0, 0.0).is_empty());
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        // Deterministic pseudo-random scores.
        let mut x = 0x9E3779B97F4A7C15u64;
        let scores: Vec<f64> = (0..500)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 97) as f64 / 97.0
            })
            .collect();
        let top = top_k(&scores, 25, 0.0);
        let mut full: Vec<Ranked> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s > 0.0)
            .map(|(n, &s)| Ranked {
                node: n as u32,
                score: s,
            })
            .collect();
        full.sort_unstable_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.node.cmp(&b.node))
        });
        full.truncate(25);
        assert_eq!(top, full);
    }
}
