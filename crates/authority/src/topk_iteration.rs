//! Top-k early termination for the power iteration.
//!
//! Interactive search only displays the top-k results (k = 10 in the
//! paper's surveys), so iterating until the *entire* score vector meets
//! the threshold wastes work: BHP04 observes that the top of the ranking
//! stabilizes well before full convergence. [`power_iteration_topk`]
//! stops once the top-k *membership and order* have been identical for a
//! configurable number of consecutive iterations and the residual has at
//! least entered a sanity bound — a pragmatic version of BHP04's
//! threshold-based termination, evaluated in the ablation harness.
//!
//! A second, *guaranteed* criterion rides on the contraction property of
//! Equation 4: with `‖A‖₁ ≤ 1` (transfer rates sum to at most 1 per
//! node) the iteration contracts in L1 with factor `d`, so
//! `‖r* − r_t‖₁ ≤ d/(1−d) · ‖r_t − r_{t−1}‖₁`. Once every consecutive
//! score gap among the top k+1 entries exceeds twice that bound, no pair
//! can swap on the way to the fixpoint — the current top-k membership
//! *and order* are provably final and the run stops with
//! [`TopKResult::guaranteed`] set.

use crate::base_set::BaseSet;
use crate::power::{power_iteration, RankParams, RankResult, TransitionMatrix};
use crate::topk::{top_k, Ranked};

/// Parameters for top-k early termination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopKParams {
    /// How many leading results must stabilize.
    pub k: usize,
    /// Consecutive iterations the top-k must stay identical.
    pub stable_iterations: usize,
    /// Residual sanity bound: never stop while the L1 residual is above
    /// this (guards against declaring victory inside a transient).
    pub max_residual: f64,
    /// Enable the guaranteed stop: terminate as soon as the worst-case
    /// error bound `d/(1−d)·residual` proves the current top-k order can
    /// no longer change (every consecutive gap among the top k+1 scores
    /// exceeds twice the bound).
    pub residual_bound: bool,
}

impl Default for TopKParams {
    fn default() -> Self {
        Self {
            k: 10,
            stable_iterations: 3,
            max_residual: 0.05,
            residual_bound: true,
        }
    }
}

/// Outcome of a top-k run.
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The (possibly early-terminated) score vector.
    pub result: RankResult,
    /// The stabilized top-k at termination.
    pub top: Vec<Ranked>,
    /// True when the run stopped via top-k stability rather than the full
    /// convergence threshold.
    pub early_terminated: bool,
    /// Worst-case L1 distance to the fixpoint at termination,
    /// `d/(1−d) · residual` (0 when the iteration never ran).
    pub error_bound: f64,
    /// True when the stop was *provably* safe: the top-k order is
    /// guaranteed to match full convergence, not merely stable.
    pub guaranteed: bool,
}

/// Runs the power iteration with top-k early termination.
///
/// Semantics: identical to [`power_iteration`] except that the run may
/// stop as soon as the top-`k` ranking has been stable for
/// `stable_iterations` consecutive iterations (with the residual below
/// `max_residual`). The returned scores are then approximations whose
/// *leading ranking* matches what full convergence would produce in the
/// overwhelmingly common case — the trade the paper's interactive
/// deployment makes.
pub fn power_iteration_topk(
    matrix: &TransitionMatrix<'_>,
    base: &BaseSet,
    params: &RankParams,
    topk: &TopKParams,
    warm_start: Option<&[f64]>,
) -> TopKResult {
    // Reuse the engine one iteration at a time: run with max_iterations
    // budget split into single steps, carrying the scores as warm starts.
    // The per-call overhead (dense jump vector rebuild) is negligible
    // next to the edge scan.
    let mut scores: Option<Vec<f64>> = warm_start.map(<[f64]>::to_vec);
    let mut last_top: Option<Vec<u32>> = None;
    let mut stable = 0usize;
    let mut iterations = 0usize;
    let mut residuals = Vec::new();

    let telemetry = orex_telemetry::global();
    telemetry.counter("authority.topk.runs").incr();
    let iterations_metric = telemetry.counter("authority.topk.iterations");
    let early_metric = telemetry.counter("authority.topk.early_terminated");
    let guaranteed_metric = telemetry.counter("authority.topk.guaranteed");
    let mut topk_span = orex_telemetry::tracer().span("authority.power.topk");
    if topk_span.is_recording() {
        topk_span.attr_u64("k", topk.k as u64);
        topk_span.attr_u64("stable_iterations", topk.stable_iterations as u64);
    }

    while iterations < params.max_iterations {
        let step = power_iteration(
            matrix,
            base,
            &RankParams {
                max_iterations: 1,
                ..*params
            },
            scores.as_deref(),
        );
        iterations += 1;
        let residual = step.residuals.last().copied().unwrap_or(0.0);
        residuals.push(residual);
        let top = top_k(&step.scores, topk.k, 0.0);
        let ids: Vec<u32> = top.iter().map(|r| r.node).collect();
        if last_top.as_deref() == Some(&ids) {
            stable += 1;
        } else {
            if last_top.is_some() {
                // The stabilized prefix got pruned back: record the churn.
                topk_span.event("topk.order_changed");
            }
            stable = 0;
            last_top = Some(ids);
        }
        scores = Some(step.scores);
        // Worst-case L1 distance to the fixpoint, by contraction:
        // ‖r* − r_t‖₁ ≤ d/(1−d) · ‖r_t − r_{t−1}‖₁.
        let error_bound = params.damping / (1.0 - params.damping) * residual;

        if residual < params.epsilon {
            // Fully converged the ordinary way.
            let scores = scores.expect("at least one iteration ran");
            let top = top_k(&scores, topk.k, 0.0);
            iterations_metric.add(iterations as u64);
            topk_span.event("topk.full_convergence");
            return TopKResult {
                result: RankResult {
                    scores,
                    iterations,
                    converged: true,
                    residuals,
                },
                top,
                early_terminated: false,
                error_bound,
                guaranteed: true,
            };
        }
        if topk.residual_bound && error_bound.is_finite() {
            // Per-node error is at most `error_bound`, so two entries can
            // still swap only if their score gap is ≤ 2× the bound. Check
            // every consecutive gap among the top k+1 — including the
            // membership boundary between rank k and k+1.
            let guard = top_k(step_scores_ref(&scores), topk.k + 1, 0.0);
            let settled = guard.len() > 1
                && guard
                    .windows(2)
                    .all(|p| p[0].score - p[1].score > 2.0 * error_bound);
            if settled {
                let scores = scores.expect("at least one iteration ran");
                let top = top_k(&scores, topk.k, 0.0);
                iterations_metric.add(iterations as u64);
                early_metric.incr();
                guaranteed_metric.incr();
                topk_span.event("topk.bound_stop");
                topk_span.attr_f64("error_bound", error_bound);
                return TopKResult {
                    result: RankResult {
                        scores,
                        iterations,
                        converged: false,
                        residuals,
                    },
                    top,
                    early_terminated: true,
                    error_bound,
                    guaranteed: true,
                };
            }
        }
        if stable >= topk.stable_iterations && residual < topk.max_residual {
            let scores = scores.expect("at least one iteration ran");
            let top = top_k(&scores, topk.k, 0.0);
            iterations_metric.add(iterations as u64);
            early_metric.incr();
            topk_span.event("topk.early_stop");
            topk_span.attr_u64(
                "pruned_iterations_bound",
                (params.max_iterations - iterations) as u64,
            );
            return TopKResult {
                result: RankResult {
                    scores,
                    iterations,
                    converged: false,
                    residuals,
                },
                top,
                early_terminated: true,
                error_bound,
                guaranteed: false,
            };
        }
    }

    let error_bound = residuals
        .last()
        .map(|&r| params.damping / (1.0 - params.damping) * r)
        .unwrap_or(0.0);
    let scores = scores.unwrap_or_else(|| base.to_dense(matrix.node_count()));
    let top = top_k(&scores, topk.k, 0.0);
    iterations_metric.add(iterations as u64);
    TopKResult {
        result: RankResult {
            scores,
            iterations,
            converged: false,
            residuals,
        },
        top,
        early_terminated: false,
        error_bound,
        guaranteed: false,
    }
}

/// Borrow helper: the loop stores the current scores in an `Option`.
fn step_scores_ref(scores: &Option<Vec<f64>>) -> &[f64] {
    scores.as_deref().expect("at least one iteration ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_graph::{DataGraphBuilder, SchemaGraph, TransferGraph, TransferRates, TransferTypeId};

    /// A 60-node preferential-ish chain graph where the top-k stabilizes
    /// quickly but full convergence takes longer.
    fn graph() -> (TransferGraph, TransferRates) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..60).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        for i in 1..60 {
            // Everyone cites node 0 and their predecessor.
            b.add_edge(nodes[i], nodes[0], r).unwrap();
            b.add_edge(nodes[i], nodes[i - 1], r).unwrap();
        }
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.8).unwrap();
        rates.set(TransferTypeId::backward(r), 0.05).unwrap();
        (TransferGraph::build(&g), rates)
    }

    fn tight() -> RankParams {
        RankParams {
            epsilon: 1e-12,
            max_iterations: 500,
            threads: 1,
            ..RankParams::default()
        }
    }

    #[test]
    fn early_termination_saves_iterations_and_keeps_topk() {
        let (tg, rates) = graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::global(60).unwrap();
        let full = power_iteration(&m, &base, &tight(), None);
        let early = power_iteration_topk(&m, &base, &tight(), &TopKParams::default(), None);
        assert!(early.early_terminated, "should stop early");
        assert!(
            early.result.iterations < full.iterations,
            "{} vs {}",
            early.result.iterations,
            full.iterations
        );
        // Same top-k as full convergence.
        let full_top: Vec<u32> = top_k(&full.scores, 10, 0.0)
            .iter()
            .map(|r| r.node)
            .collect();
        let early_top: Vec<u32> = early.top.iter().map(|r| r.node).collect();
        assert_eq!(full_top, early_top);
    }

    #[test]
    fn bound_stop_is_guaranteed_and_matches_full_convergence() {
        let (tg, rates) = graph();
        let m = TransitionMatrix::new(&tg, &rates);
        // Well-separated base weights give the top entries distinct score
        // gaps, which is what the error bound certifies against.
        let base =
            BaseSet::weighted([(0, 16.0), (10, 8.0), (20, 4.0), (30, 2.0), (40, 1.0)]).unwrap();
        let full = power_iteration(&m, &base, &tight(), None);
        // Disable the stability heuristic entirely: any early stop must
        // come from the residual error bound.
        let res = power_iteration_topk(
            &m,
            &base,
            &tight(),
            &TopKParams {
                k: 3,
                stable_iterations: usize::MAX,
                max_residual: 0.0,
                residual_bound: true,
            },
            None,
        );
        assert!(res.early_terminated, "bound stop should fire");
        assert!(res.guaranteed);
        assert!(res.error_bound > 0.0 && res.error_bound.is_finite());
        assert!(res.result.iterations < full.iterations);
        let full_top: Vec<u32> = top_k(&full.scores, 3, 0.0).iter().map(|r| r.node).collect();
        let early_top: Vec<u32> = res.top.iter().map(|r| r.node).collect();
        assert_eq!(full_top, early_top, "guaranteed stop must preserve order");
    }

    #[test]
    fn tight_max_residual_defers_to_full_convergence() {
        let (tg, rates) = graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::global(60).unwrap();
        let params = RankParams {
            epsilon: 1e-6,
            ..tight()
        };
        let res = power_iteration_topk(
            &m,
            &base,
            &params,
            &TopKParams {
                max_residual: 0.0,     // never early-terminate heuristically
                residual_bound: false, // nor via the guaranteed bound
                ..TopKParams::default()
            },
            None,
        );
        assert!(!res.early_terminated);
        assert!(res.result.converged);
    }

    #[test]
    fn iteration_budget_respected() {
        let (tg, rates) = graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::global(60).unwrap();
        let res = power_iteration_topk(
            &m,
            &base,
            &RankParams {
                epsilon: 0.0,
                max_iterations: 4,
                threads: 1,
                ..RankParams::default()
            },
            &TopKParams {
                stable_iterations: 100,
                residual_bound: false,
                ..TopKParams::default()
            },
            None,
        );
        assert_eq!(res.result.iterations, 4);
        assert!(!res.result.converged);
    }

    #[test]
    fn stepwise_matches_monolithic_fixpoint() {
        // Running 1-iteration steps chained by warm starts must land on
        // the same fixpoint as a single long run.
        let (tg, rates) = graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([3, 7]).unwrap();
        let full = power_iteration(&m, &base, &tight(), None);
        let stepped = power_iteration_topk(
            &m,
            &base,
            &tight(),
            &TopKParams {
                max_residual: 0.0,
                residual_bound: false,
                ..TopKParams::default()
            },
            None,
        );
        for (a, b) in full.scores.iter().zip(&stepped.result.scores) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
