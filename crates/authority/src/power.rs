//! The power-iteration engine behind every ranking in the paper
//! (Equation 4):
//!
//! ```text
//! r = d · A · r + (1 - d) · s
//! ```
//!
//! where `A[i][j] = alpha(e)` for transfer edges `e = (v_j -> v_i)`, `d` is
//! the damping factor, and `s` is the (normalized) base-set vector. The
//! engine is *pull-based*: each node gathers from its in-neighbors, so
//! iterations parallelize over disjoint output ranges with no write
//! contention and bitwise-deterministic results for any thread count.
//!
//! The CSR kernel is organized around *cache blocks*: contiguous row
//! groups bounded by edge count, so the `targets`/`alpha` slices one block
//! touches stay cache-resident while it is swept. Blocks are also the
//! unit of thread partitioning — threads claim contiguous block runs
//! balanced by **edge** count rather than row count, which keeps skewed
//! in-degree distributions (DBLP's papers-vs-years) from serializing on
//! one unlucky worker. [`power_iteration_batch`] advances many base-set
//! vectors through one shared sweep of that structure, reading the CSR
//! topology once per iteration for the whole batch.

use crate::base_set::BaseSet;
use orex_graph::{TransferGraph, TransferRates};
use orex_telemetry::{logger, CounterHandle, HistogramHandle, Level, RateLimit};
use std::ops::Range;
use std::sync::OnceLock;

/// Log target of the power-iteration engine.
const LOG_TARGET: &str = "authority.power";

/// The per-iteration residual is logged (at `Level::Trace`) at most once
/// every this many iterations, so turning residual logging on cannot
/// flood the ring on large graphs.
const RESIDUAL_LOG_EVERY: u64 = 32;

/// Edge budget of one cache block. At 12 bytes of CSR structure per edge
/// (u32 target + f64 alpha) a full block touches ~96 KiB — comfortably
/// inside L2 — so re-walking a block for every column of a batched sweep
/// hits warm lines instead of DRAM.
const BLOCK_EDGES: u32 = 8192;

/// Pre-resolved handles for the per-iteration metrics: the power loop is
/// the system's hottest path, so it must not pay the registry's RwLock
/// read + string hash on every iteration. Resolved once per process from
/// the global recorder.
struct PowerMetrics {
    iter_us: HistogramHandle,
    batch_sweep_us: HistogramHandle,
    runs: CounterHandle,
    iterations: CounterHandle,
    converged: CounterHandle,
    batch_runs: CounterHandle,
    batch_vectors: CounterHandle,
    batch_sweeps: CounterHandle,
}

fn power_metrics() -> &'static PowerMetrics {
    static METRICS: OnceLock<PowerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let t = orex_telemetry::global();
        PowerMetrics {
            iter_us: t.histogram("authority.power.iteration_us"),
            batch_sweep_us: t.histogram("authority.power.batch_sweep_us"),
            runs: t.counter_handle("authority.power.runs"),
            iterations: t.counter_handle("authority.power.iterations"),
            converged: t.counter_handle("authority.power.converged"),
            batch_runs: t.counter_handle("authority.power.batch_runs"),
            batch_vectors: t.counter_handle("authority.power.batch_vectors"),
            batch_sweeps: t.counter_handle("authority.power.batch_sweeps"),
        }
    })
}

/// Parameters of a power-iteration run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankParams {
    /// Damping factor `d` (the paper uses 0.85; `1 - d` is the random-jump
    /// probability).
    pub damping: f64,
    /// Convergence threshold on the L1 residual `Σ|r_new - r_old|`.
    /// The paper's performance experiments use 0.002 (Section 6.2).
    pub epsilon: f64,
    /// Iteration cap; the run reports `converged = false` when hit.
    pub max_iterations: usize,
    /// Worker threads; 0 selects automatically (1 for small graphs).
    pub threads: usize,
}

impl Default for RankParams {
    fn default() -> Self {
        Self {
            damping: 0.85,
            epsilon: 0.002,
            max_iterations: 200,
            threads: 0,
        }
    }
}

/// Outcome of a power-iteration run.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// The score vector `r` at termination (one entry per node).
    pub scores: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the L1 residual dropped below `epsilon`.
    pub converged: bool,
    /// L1 residual after each iteration (for convergence plots).
    pub residuals: Vec<f64>,
}

/// The transition structure `d`-independent part of Equation 4: the
/// transfer-graph topology with per-edge `alpha` weights derived from a
/// rates vector, pre-aligned to the in-CSR slots for the pull loop, plus
/// the cache-block boundaries the sweeps iterate over.
pub struct TransitionMatrix<'g> {
    graph: &'g TransferGraph,
    /// Per transfer-edge `alpha` (Equation 1), edge-indexed.
    edge_weights: Vec<f64>,
    /// `alpha` aligned with the in-CSR slots.
    in_slot_weights: Vec<f64>,
    /// Cache-block row boundaries: `blocks[0] = 0`, `blocks.last() = n`,
    /// each block spanning at most [`BLOCK_EDGES`] in-edges (single rows
    /// over the budget get a block of their own).
    blocks: Vec<u32>,
}

impl<'g> TransitionMatrix<'g> {
    /// Builds the matrix for a rates vector.
    pub fn new(graph: &'g TransferGraph, rates: &TransferRates) -> Self {
        Self::from_edge_weights(graph, graph.weights(rates))
    }

    /// Builds the matrix from precomputed per-edge weights (edge-indexed).
    ///
    /// # Panics
    /// Panics if `edge_weights` does not have one entry per transfer edge.
    pub fn from_edge_weights(graph: &'g TransferGraph, edge_weights: Vec<f64>) -> Self {
        assert_eq!(
            edge_weights.len(),
            graph.transfer_edge_count(),
            "edge weight vector length mismatch"
        );
        let in_slot_weights = graph
            .in_slot_edges()
            .iter()
            .map(|&e| edge_weights[e as usize])
            .collect();
        let blocks = cache_blocks(graph.in_csr().row_offsets(), graph.node_count());
        Self {
            graph,
            edge_weights,
            in_slot_weights,
            blocks,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying transfer graph.
    #[inline]
    pub fn graph(&self) -> &'g TransferGraph {
        self.graph
    }

    /// Per-transfer-edge `alpha` weights (edge-indexed).
    #[inline]
    pub fn edge_weights(&self) -> &[f64] {
        &self.edge_weights
    }

    /// Number of cache blocks the row space is partitioned into.
    #[inline]
    pub fn cache_block_count(&self) -> usize {
        self.blocks.len() - 1
    }

    /// Computes `out[i] = damping * Σ_{j -> i} alpha(j -> i) * r[j] + add[i]`
    /// for `i` in `range`, writing into `out` (which must be the slice for
    /// exactly that range).
    fn pull_range(
        &self,
        r: &[f64],
        out: &mut [f64],
        range: Range<usize>,
        damping: f64,
        add: &[f64],
    ) {
        let csr = self.graph.in_csr();
        let offsets = csr.row_offsets();
        let targets = csr.targets();
        for (local, i) in range.clone().enumerate() {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            let mut acc = 0.0;
            for slot in lo..hi {
                // `targets` of the in-CSR are the *sources* j of edges j->i.
                acc += self.in_slot_weights[slot] * r[targets[slot] as usize];
            }
            out[local] = damping * acc + add[i];
        }
    }

    /// [`Self::pull_range`] over `rows`, walking the cache blocks that
    /// cover it one at a time so each block's CSR slice stays resident.
    /// `rows` must be block-aligned (it comes from [`Self::thread_ranges`]).
    fn pull_rows(&self, r: &[f64], out: &mut [f64], rows: Range<usize>, damping: f64, add: &[f64]) {
        let mut row = rows.start;
        let mut bi = self.blocks.partition_point(|&b| (b as usize) <= rows.start);
        while row < rows.end {
            let block_end = (self.blocks[bi] as usize).min(rows.end);
            let lo = row - rows.start;
            let hi = block_end - rows.start;
            self.pull_range(r, &mut out[lo..hi], row..block_end, damping, add);
            row = block_end;
            bi += 1;
        }
    }

    /// One shared sweep over the rows in `rows` for *all* columns: the CSR
    /// structure of each row is read once, and every column's accumulator
    /// advances in in-slot order — the identical floating-point op
    /// sequence a single-vector sweep performs, so batching cannot perturb
    /// results. `acc` is a scratch buffer of at least `cols.len()`.
    fn pull_rows_batch(
        &self,
        cols: &mut [BatchColumn<'_>],
        rows: Range<usize>,
        damping: f64,
        acc: &mut [f64],
    ) {
        let csr = self.graph.in_csr();
        let offsets = csr.row_offsets();
        let targets = csr.targets();
        let width = cols.len();
        for (local, i) in rows.clone().enumerate() {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            acc[..width].fill(0.0);
            for (&w, &src) in self.in_slot_weights[lo..hi].iter().zip(&targets[lo..hi]) {
                let src = src as usize;
                for (a, col) in acc[..width].iter_mut().zip(cols.iter()) {
                    *a += w * col.r[src];
                }
            }
            for (a, col) in acc[..width].iter().zip(cols.iter_mut()) {
                col.out[local] = damping * *a + col.add[i];
            }
        }
    }

    /// Splits the row space into at most `threads` contiguous,
    /// block-aligned ranges with balanced **edge** counts. Row-count
    /// chunking is what it replaces: on skewed in-degree distributions a
    /// uniform row split leaves one thread holding most of the edges.
    fn thread_ranges(&self, threads: usize) -> Vec<Range<usize>> {
        let n = self.node_count();
        if threads <= 1 || n == 0 {
            return std::iter::once(0..n).collect();
        }
        let offsets = self.graph.in_csr().row_offsets();
        let total = offsets[n] as usize;
        let target = total.div_ceil(threads).max(1);
        let mut ranges = Vec::with_capacity(threads);
        let mut row_start = 0usize;
        for w in self.blocks.windows(2) {
            if ranges.len() + 1 == threads {
                break;
            }
            let block_end = w[1] as usize;
            if (offsets[block_end] - offsets[row_start]) as usize >= target {
                ranges.push(row_start..block_end);
                row_start = block_end;
            }
        }
        if row_start < n || ranges.is_empty() {
            ranges.push(row_start..n);
        }
        ranges
    }

    /// One full iteration `r_new = d·A·r + add` across the configured
    /// thread ranges (single-threaded when only one range exists).
    fn sweep(
        &self,
        r: &[f64],
        r_new: &mut [f64],
        damping: f64,
        add: &[f64],
        ranges: &[Range<usize>],
    ) {
        if ranges.len() <= 1 {
            self.pull_rows(r, r_new, 0..self.node_count(), damping, add);
            return;
        }
        std::thread::scope(|scope| {
            let mut rest: &mut [f64] = r_new;
            for range in ranges {
                let (head, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let range = range.clone();
                scope.spawn(move || self.pull_rows(r, head, range, damping, add));
            }
        });
    }
}

/// Greedy row grouping: close a block as soon as adding the next row would
/// push it past [`BLOCK_EDGES`] (rows bigger than the budget get their own
/// block).
fn cache_blocks(offsets: &[u32], n: usize) -> Vec<u32> {
    let mut blocks = Vec::with_capacity(n / 64 + 2);
    blocks.push(0u32);
    let mut i = 0usize;
    while i < n {
        let start = offsets[i];
        let mut j = i + 1;
        while j < n && offsets[j + 1] - start <= BLOCK_EDGES {
            j += 1;
        }
        blocks.push(j as u32);
        i = j;
    }
    blocks
}

/// One thread's view of one batch column over a row range.
struct BatchColumn<'a> {
    r: &'a [f64],
    out: &'a mut [f64],
    add: &'a [f64],
}

/// Full per-column state of an in-flight batched run.
struct BatchState {
    r: Vec<f64>,
    r_new: Vec<f64>,
    jump: Vec<f64>,
}

fn resolve_threads(requested: usize, n: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if n < 50_000 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|p| p.get().min(16))
        .unwrap_or(1)
}

/// Validates a warm-start vector like [`power_iteration`] does, falling
/// back to the base-set dense vector on degenerate mass.
fn initial_vector(base: &BaseSet, n: usize, warm_start: Option<&[f64]>) -> Vec<f64> {
    match warm_start {
        Some(w) => {
            assert_eq!(w.len(), n, "warm-start vector length mismatch");
            // Use the previous scores verbatim: the fixpoint of Equation 4
            // generally sums to less than 1 (authority leaks at nodes whose
            // outgoing rates sum below 1), so renormalizing would move a
            // perfect warm start *away* from the fixpoint.
            let sum: f64 = w.iter().sum();
            if sum > 0.0 && sum.is_finite() {
                logger()
                    .info(LOG_TARGET, "warm start reused")
                    .field_u64("nodes", n as u64)
                    .field_f64("mass", sum)
                    .emit();
                w.to_vec()
            } else {
                logger()
                    .warn(LOG_TARGET, "warm start rejected, falling back to base set")
                    .field_f64("mass", sum)
                    .emit();
                base.to_dense(n)
            }
        }
        None => base.to_dense(n),
    }
}

/// Runs Equation 4 to convergence.
///
/// `warm_start` seeds the iteration with a previous score vector — the
/// Section 6.2 optimization ("Manipulating Initial ObjectRank values"):
/// the initial query starts from global ObjectRank scores, reformulated
/// queries from the previous query's scores, which Figures 14(b)–17(b)
/// show cuts the iteration count sharply. Without it the iteration starts
/// from the base-set vector itself.
pub fn power_iteration(
    matrix: &TransitionMatrix<'_>,
    base: &BaseSet,
    params: &RankParams,
    warm_start: Option<&[f64]>,
) -> RankResult {
    let n = matrix.node_count();
    assert!(n > 0, "empty graph");
    assert!(
        (0.0..1.0).contains(&params.damping),
        "damping must be in [0, 1)"
    );
    let d = params.damping;
    let mut jump = base.to_dense(n);
    for p in &mut jump {
        *p *= 1.0 - d;
    }

    let mut r = initial_vector(base, n, warm_start);
    let mut r_new = vec![0.0; n];

    let threads = resolve_threads(params.threads, n);
    let ranges = matrix.thread_ranges(threads);
    let mut residuals = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    let metrics = power_metrics();
    let iter_us = &metrics.iter_us;
    let tracer = orex_telemetry::tracer();
    let mut run_span = tracer.span("authority.power");
    if run_span.is_recording() {
        run_span.attr_u64("nodes", n as u64);
        run_span.attr_u64("warm_start", u64::from(warm_start.is_some()));
    }

    for _ in 0..params.max_iterations {
        iterations += 1;
        let mut iter_span = tracer.span("authority.power.iteration");
        let iter_start = iter_us.is_recording().then(std::time::Instant::now);
        matrix.sweep(&r, &mut r_new, d, &jump, &ranges);
        let residual: f64 = r_new.iter().zip(&r).map(|(&a, &b)| (a - b).abs()).sum();
        residuals.push(residual);
        if let Some(start) = iter_start {
            iter_us.record(start.elapsed().as_secs_f64() * 1e6);
        }
        if iter_span.is_recording() {
            iter_span.attr_f64("residual", residual);
            let active = r_new.iter().filter(|&&v| v > 0.0).count();
            iter_span.attr_u64("active_nodes", active as u64);
        }
        // Rate-limited so even OREX_LOG=trace stays bounded on the
        // hottest loop in the system.
        static RESIDUAL_LOG: RateLimit = RateLimit::new();
        if logger().enabled(Level::Trace, LOG_TARGET) && RESIDUAL_LOG.admit(RESIDUAL_LOG_EVERY) {
            logger()
                .trace(LOG_TARGET, "residual")
                .field_u64("iteration", iterations as u64)
                .field_f64("residual", residual)
                .emit();
        }
        drop(iter_span);
        std::mem::swap(&mut r, &mut r_new);
        if residual < params.epsilon {
            converged = true;
            break;
        }
    }

    metrics.runs.incr();
    metrics.iterations.add(iterations as u64);
    if converged {
        metrics.converged.incr();
    }
    orex_telemetry::global()
        .gauge("authority.power.last_residual")
        .set(residuals.last().copied().unwrap_or(0.0));
    if run_span.is_recording() {
        run_span.attr_u64("iterations", iterations as u64);
        run_span.attr_u64("converged", u64::from(converged));
    }
    let last_residual = residuals.last().copied().unwrap_or(0.0);
    if converged {
        logger()
            .info(LOG_TARGET, "converged")
            .field_u64("iterations", iterations as u64)
            .field_u64("nodes", n as u64)
            .field_f64("residual", last_residual)
            .field_bool("warm_start", warm_start.is_some())
            .emit();
    } else {
        logger()
            .warn(LOG_TARGET, "did not converge within iteration cap")
            .field_u64("iterations", iterations as u64)
            .field_u64("nodes", n as u64)
            .field_f64("residual", last_residual)
            .field_f64("epsilon", params.epsilon)
            .emit();
    }

    RankResult {
        scores: r,
        iterations,
        converged,
        residuals,
    }
}

/// Runs Equation 4 for many base sets through **one shared matrix sweep
/// per iteration**: each row's CSR slots are read once and every column's
/// accumulator advances in the same in-slot order a dedicated
/// single-vector run would use, so each returned [`RankResult`] is
/// *bitwise identical* to `power_iteration(matrix, &bases[k], params,
/// warm_start)` — batching only amortizes the CSR structure traffic (u32
/// target + f64 alpha per edge) across the batch.
///
/// Columns converge independently: once a column's residual drops under
/// `epsilon` it is frozen and later sweeps skip it, exactly as its
/// dedicated run would have stopped. `warm_start` (typically the global
/// ObjectRank vector) seeds every column.
///
/// Telemetry: each shared sweep records `authority.power.batch_sweep_us`;
/// runs/vectors/sweeps land in `authority.power.batch_*` counters.
pub fn power_iteration_batch(
    matrix: &TransitionMatrix<'_>,
    bases: &[BaseSet],
    params: &RankParams,
    warm_start: Option<&[f64]>,
) -> Vec<RankResult> {
    let n = matrix.node_count();
    assert!(n > 0, "empty graph");
    assert!(
        (0.0..1.0).contains(&params.damping),
        "damping must be in [0, 1)"
    );
    if bases.is_empty() {
        return Vec::new();
    }
    let d = params.damping;

    let metrics = power_metrics();
    metrics.batch_runs.incr();
    metrics.batch_vectors.add(bases.len() as u64);
    let tracer = orex_telemetry::tracer();
    let mut run_span = tracer.span("authority.power.batch");
    if run_span.is_recording() {
        run_span.attr_u64("nodes", n as u64);
        run_span.attr_u64("vectors", bases.len() as u64);
    }

    let mut cols: Vec<BatchState> = bases
        .iter()
        .map(|base| {
            let mut jump = base.to_dense(n);
            for p in &mut jump {
                *p *= 1.0 - d;
            }
            BatchState {
                r: initial_vector(base, n, warm_start),
                r_new: vec![0.0; n],
                jump,
            }
        })
        .collect();

    let threads = resolve_threads(params.threads, n);
    let ranges = matrix.thread_ranges(threads);

    // Per-column bookkeeping; `active` holds indices of still-iterating
    // columns in ascending order.
    let mut active: Vec<usize> = (0..cols.len()).collect();
    let mut results: Vec<RankResult> = cols
        .iter()
        .map(|_| RankResult {
            scores: Vec::new(),
            iterations: 0,
            converged: false,
            residuals: Vec::new(),
        })
        .collect();

    let mut sweeps = 0usize;
    for iter in 0..params.max_iterations {
        if active.is_empty() {
            break;
        }
        sweeps += 1;
        let sweep_start = metrics
            .batch_sweep_us
            .is_recording()
            .then(std::time::Instant::now);
        {
            // Borrow the active columns as one contiguous working set for
            // this sweep. Selection preserves ascending column order.
            let mut views: Vec<&mut BatchState> = Vec::with_capacity(active.len());
            let mut rest: &mut [BatchState] = &mut cols;
            let mut consumed = 0usize;
            for &k in &active {
                let (_, tail) = rest.split_at_mut(k - consumed);
                let (head, tail) = tail.split_at_mut(1);
                views.push(&mut head[0]);
                rest = tail;
                consumed = k + 1;
            }
            sweep_batch_views(matrix, &mut views, d, &ranges);
        }
        if let Some(start) = sweep_start {
            metrics
                .batch_sweep_us
                .record(start.elapsed().as_secs_f64() * 1e6);
        }

        // Residuals, swaps and freezes — identical order and arithmetic to
        // the dedicated runs.
        let mut still_active = Vec::with_capacity(active.len());
        for &k in &active {
            let col = &mut cols[k];
            let residual: f64 = col
                .r_new
                .iter()
                .zip(&col.r)
                .map(|(&a, &b)| (a - b).abs())
                .sum();
            results[k].residuals.push(residual);
            results[k].iterations = iter + 1;
            std::mem::swap(&mut col.r, &mut col.r_new);
            if residual < params.epsilon {
                results[k].converged = true;
            } else {
                still_active.push(k);
            }
        }
        active = still_active;
    }

    metrics.batch_sweeps.add(sweeps as u64);
    for (k, col) in cols.into_iter().enumerate() {
        results[k].scores = col.r;
        metrics.iterations.add(results[k].iterations as u64);
    }
    let converged = results.iter().filter(|r| r.converged).count();
    if run_span.is_recording() {
        run_span.attr_u64("sweeps", sweeps as u64);
        run_span.attr_u64("converged", converged as u64);
    }
    logger()
        .info(LOG_TARGET, "batched run finished")
        .field_u64("vectors", results.len() as u64)
        .field_u64("sweeps", sweeps as u64)
        .field_u64("converged", converged as u64)
        .emit();
    results
}

/// Adapter: runs one shared sweep over a set of *views* into the column
/// states (the active subset of a batch).
fn sweep_batch_views(
    matrix: &TransitionMatrix<'_>,
    views: &mut [&mut BatchState],
    damping: f64,
    ranges: &[Range<usize>],
) {
    let width = views.len();
    if ranges.len() <= 1 {
        let n = matrix.node_count();
        let mut acc = vec![0.0; width];
        let mut cols: Vec<BatchColumn<'_>> = views
            .iter_mut()
            .map(|c| BatchColumn {
                r: &c.r,
                out: &mut c.r_new,
                add: &c.jump,
            })
            .collect();
        matrix.pull_rows_batch(&mut cols, 0..n, damping, &mut acc);
        return;
    }
    let mut per_thread: Vec<Vec<BatchColumn<'_>>> =
        ranges.iter().map(|_| Vec::with_capacity(width)).collect();
    for col in views.iter_mut() {
        let mut rest: &mut [f64] = &mut col.r_new;
        for (t, range) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(range.len());
            rest = tail;
            per_thread[t].push(BatchColumn {
                r: &col.r,
                out: head,
                add: &col.jump,
            });
        }
    }
    std::thread::scope(|scope| {
        for (mut cols, range) in per_thread.into_iter().zip(ranges.iter().cloned()) {
            scope.spawn(move || {
                let mut acc = vec![0.0; cols.len()];
                matrix.pull_rows_batch(&mut cols, range, damping, &mut acc);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_graph::{DataGraphBuilder, SchemaGraph, TransferGraph, TransferRates, TransferTypeId};

    /// A 4-node "cites" chain 0 -> 1 -> 2 -> 3 plus a back edge 3 -> 0.
    fn ring_graph() -> (TransferGraph, TransferRates) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("Paper").unwrap();
        let cites = schema.add_edge_type(p, p, "cites").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..4).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        for i in 0..4 {
            b.add_edge(nodes[i], nodes[(i + 1) % 4], cites).unwrap();
        }
        let g = b.freeze();
        let tg = TransferGraph::build(&g);
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(cites), 0.7).unwrap();
        rates.set(TransferTypeId::backward(cites), 0.1).unwrap();
        (tg, rates)
    }

    fn tight() -> RankParams {
        RankParams {
            epsilon: 1e-12,
            max_iterations: 2000,
            ..RankParams::default()
        }
    }

    #[test]
    fn symmetric_ring_gives_uniform_scores() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::global(4).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        assert!(res.converged);
        for &s in &res.scores {
            assert!((s - res.scores[0]).abs() < 1e-9, "{:?}", res.scores);
        }
    }

    #[test]
    fn scores_sum_at_most_one() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        let sum: f64 = res.scores.iter().sum();
        // Rates sum to 0.8 < 1 per node, so authority leaks: sum < 1.
        assert!(sum <= 1.0 + 1e-9);
        assert!(sum > 0.0);
    }

    #[test]
    fn base_set_node_dominates_nearby() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        // Node 0 jumps back to itself; node 1 receives its citation flow.
        assert!(res.scores[0] > res.scores[1]);
        assert!(res.scores[1] > res.scores[2]);
    }

    #[test]
    fn fixpoint_satisfies_equation4() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::weighted([(0, 3.0), (2, 1.0)]).unwrap();
        let params = tight();
        let res = power_iteration(&m, &base, &params, None);
        assert!(res.converged);
        // Verify r = d A r + (1-d) s componentwise by a manual pull.
        let n = tg.node_count();
        let w = m.edge_weights();
        for i in 0..n {
            let mut acc = 0.0;
            for (src, e) in tg.in_transfer(orex_graph::NodeId::from_usize(i)) {
                acc += w[e] * res.scores[src.index()];
            }
            let expect = params.damping * acc + (1.0 - params.damping) * base.probability(i as u32);
            assert!((res.scores[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_from_fixpoint_converges_immediately() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0, 2]).unwrap();
        let cold = power_iteration(&m, &base, &tight(), None);
        let warm = power_iteration(&m, &base, &tight(), Some(&cold.scores));
        assert!(warm.iterations <= 2, "took {}", warm.iterations);
        assert!(warm.converged);
    }

    #[test]
    fn warm_start_reduces_iterations_for_similar_query() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base1 = BaseSet::weighted([(0, 1.0), (1, 1.0)]).unwrap();
        let base2 = BaseSet::weighted([(0, 1.0), (1, 0.9)]).unwrap();
        let cold1 = power_iteration(&m, &base1, &tight(), None);
        let cold2 = power_iteration(&m, &base2, &tight(), None);
        let warm2 = power_iteration(&m, &base2, &tight(), Some(&cold1.scores));
        assert!(warm2.iterations < cold2.iterations);
        // Same fixpoint either way.
        for (a, b) in warm2.scores.iter().zip(&cold2.scores) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn degenerate_warm_start_falls_back_to_base() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let zeros = vec![0.0; 4];
        let res = power_iteration(&m, &base, &tight(), Some(&zeros));
        assert!(res.converged);
        assert!(res.scores[0] > 0.0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::weighted([(1, 2.0), (3, 1.0)]).unwrap();
        let serial = power_iteration(
            &m,
            &base,
            &RankParams {
                threads: 1,
                ..tight()
            },
            None,
        );
        let parallel = power_iteration(
            &m,
            &base,
            &RankParams {
                threads: 3,
                ..tight()
            },
            None,
        );
        assert_eq!(serial.iterations, parallel.iterations);
        for (a, b) in serial.scores.iter().zip(&parallel.scores) {
            assert_eq!(a, b, "parallel must be bitwise deterministic");
        }
    }

    #[test]
    fn residuals_decrease() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        for pair in res.residuals.windows(2) {
            assert!(
                pair[1] <= pair[0] * 1.01,
                "residuals not decreasing: {pair:?}"
            );
        }
    }

    #[test]
    fn max_iterations_cap_respected() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 0.0,
                max_iterations: 3,
                ..RankParams::default()
            },
            None,
        );
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }

    #[test]
    fn damping_zero_returns_base_set() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::weighted([(2, 1.0)]).unwrap();
        let res = power_iteration(
            &m,
            &base,
            &RankParams {
                damping: 0.0,
                ..tight()
            },
            None,
        );
        assert!(res.converged);
        assert!((res.scores[2] - 1.0).abs() < 1e-12);
        assert_eq!(res.scores[0], 0.0);
    }

    /// A larger skewed graph: node 0 is cited by everyone (one heavy CSR
    /// row), the rest form a sparse chain — exercises multi-block layouts
    /// and the edge-balanced thread partition.
    fn skewed_graph(n: usize) -> (TransferGraph, TransferRates) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..n).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        for i in 1..n {
            b.add_edge(nodes[i], nodes[0], r).unwrap();
            b.add_edge(nodes[i], nodes[i - 1], r).unwrap();
        }
        let g = b.freeze();
        let tg = TransferGraph::build(&g);
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.6).unwrap();
        rates.set(TransferTypeId::backward(r), 0.2).unwrap();
        (tg, rates)
    }

    #[test]
    fn thread_ranges_cover_rows_exactly_once() {
        let (tg, rates) = skewed_graph(200);
        let m = TransitionMatrix::new(&tg, &rates);
        for threads in [1, 2, 3, 7] {
            let ranges = m.thread_ranges(threads);
            assert!(ranges.len() <= threads);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, m.node_count());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "ranges must tile");
            }
        }
    }

    #[test]
    fn cache_blocks_tile_the_row_space() {
        let (tg, rates) = skewed_graph(150);
        let m = TransitionMatrix::new(&tg, &rates);
        assert!(m.cache_block_count() >= 1);
        // Synthetic check of the block builder itself on a skewed CSR.
        let offsets: Vec<u32> = vec![0, 9000, 9001, 9002, 17000, 17001];
        let blocks = cache_blocks(&offsets, 5);
        assert_eq!(*blocks.first().unwrap(), 0);
        assert_eq!(*blocks.last().unwrap(), 5);
        for pair in blocks.windows(2) {
            assert!(pair[0] < pair[1], "blocks must advance: {blocks:?}");
            let edges = offsets[pair[1] as usize] - offsets[pair[0] as usize];
            let rows = pair[1] - pair[0];
            assert!(
                edges <= BLOCK_EDGES || rows == 1,
                "oversized multi-row block: {blocks:?}"
            );
        }
    }

    #[test]
    fn batch_matches_independent_runs_bitwise() {
        let (tg, rates) = skewed_graph(120);
        let m = TransitionMatrix::new(&tg, &rates);
        let bases = vec![
            BaseSet::uniform([0]).unwrap(),
            BaseSet::weighted([(3, 2.0), (50, 1.0)]).unwrap(),
            BaseSet::global(120).unwrap(),
            BaseSet::weighted([(119, 1.0), (60, 0.25)]).unwrap(),
        ];
        for threads in [1, 3] {
            let params = RankParams {
                threads,
                epsilon: 1e-10,
                max_iterations: 500,
                ..RankParams::default()
            };
            let batch = power_iteration_batch(&m, &bases, &params, None);
            assert_eq!(batch.len(), bases.len());
            for (base, got) in bases.iter().zip(&batch) {
                let solo = power_iteration(&m, base, &params, None);
                assert_eq!(solo.iterations, got.iterations, "iteration counts differ");
                assert_eq!(solo.converged, got.converged);
                assert_eq!(solo.residuals, got.residuals, "residual streams differ");
                for (a, b) in solo.scores.iter().zip(&got.scores) {
                    assert_eq!(a, b, "batched sweep must be bitwise identical");
                }
            }
        }
    }

    #[test]
    fn batch_with_warm_start_matches_independent_runs() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let global = power_iteration(&m, &BaseSet::global(4).unwrap(), &tight(), None);
        let bases = vec![
            BaseSet::uniform([1]).unwrap(),
            BaseSet::uniform([2, 3]).unwrap(),
        ];
        let params = tight();
        let batch = power_iteration_batch(&m, &bases, &params, Some(&global.scores));
        for (base, got) in bases.iter().zip(&batch) {
            let solo = power_iteration(&m, base, &params, Some(&global.scores));
            assert_eq!(solo.iterations, got.iterations);
            for (a, b) in solo.scores.iter().zip(&got.scores) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn batch_of_none_and_one() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        assert!(power_iteration_batch(&m, &[], &tight(), None).is_empty());
        let base = BaseSet::uniform([0]).unwrap();
        let one = power_iteration_batch(&m, std::slice::from_ref(&base), &tight(), None);
        let solo = power_iteration(&m, &base, &tight(), None);
        assert_eq!(one[0].scores, solo.scores);
    }

    #[test]
    fn batch_respects_iteration_cap() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let bases = vec![
            BaseSet::uniform([0]).unwrap(),
            BaseSet::uniform([1]).unwrap(),
        ];
        let res = power_iteration_batch(
            &m,
            &bases,
            &RankParams {
                epsilon: 0.0,
                max_iterations: 3,
                ..RankParams::default()
            },
            None,
        );
        for r in &res {
            assert_eq!(r.iterations, 3);
            assert!(!r.converged);
        }
    }
}
