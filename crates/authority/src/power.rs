//! The power-iteration engine behind every ranking in the paper
//! (Equation 4):
//!
//! ```text
//! r = d · A · r + (1 - d) · s
//! ```
//!
//! where `A[i][j] = alpha(e)` for transfer edges `e = (v_j -> v_i)`, `d` is
//! the damping factor, and `s` is the (normalized) base-set vector. The
//! engine is *pull-based*: each node gathers from its in-neighbors, so
//! iterations parallelize over disjoint output ranges with no write
//! contention and bitwise-deterministic results for any thread count.

use crate::base_set::BaseSet;
use orex_graph::{TransferGraph, TransferRates};
use orex_telemetry::{logger, CounterHandle, HistogramHandle, Level, RateLimit};
use std::sync::OnceLock;

/// Log target of the power-iteration engine.
const LOG_TARGET: &str = "authority.power";

/// The per-iteration residual is logged (at `Level::Trace`) at most once
/// every this many iterations, so turning residual logging on cannot
/// flood the ring on large graphs.
const RESIDUAL_LOG_EVERY: u64 = 32;

/// Pre-resolved handles for the per-iteration metrics: the power loop is
/// the system's hottest path, so it must not pay the registry's RwLock
/// read + string hash on every iteration. Resolved once per process from
/// the global recorder.
struct PowerMetrics {
    iter_us: HistogramHandle,
    runs: CounterHandle,
    iterations: CounterHandle,
    converged: CounterHandle,
}

fn power_metrics() -> &'static PowerMetrics {
    static METRICS: OnceLock<PowerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let t = orex_telemetry::global();
        PowerMetrics {
            iter_us: t.histogram("authority.power.iteration_us"),
            runs: t.counter_handle("authority.power.runs"),
            iterations: t.counter_handle("authority.power.iterations"),
            converged: t.counter_handle("authority.power.converged"),
        }
    })
}

/// Parameters of a power-iteration run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankParams {
    /// Damping factor `d` (the paper uses 0.85; `1 - d` is the random-jump
    /// probability).
    pub damping: f64,
    /// Convergence threshold on the L1 residual `Σ|r_new - r_old|`.
    /// The paper's performance experiments use 0.002 (Section 6.2).
    pub epsilon: f64,
    /// Iteration cap; the run reports `converged = false` when hit.
    pub max_iterations: usize,
    /// Worker threads; 0 selects automatically (1 for small graphs).
    pub threads: usize,
}

impl Default for RankParams {
    fn default() -> Self {
        Self {
            damping: 0.85,
            epsilon: 0.002,
            max_iterations: 200,
            threads: 0,
        }
    }
}

/// Outcome of a power-iteration run.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// The score vector `r` at termination (one entry per node).
    pub scores: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the L1 residual dropped below `epsilon`.
    pub converged: bool,
    /// L1 residual after each iteration (for convergence plots).
    pub residuals: Vec<f64>,
}

/// The transition structure `d`-independent part of Equation 4: the
/// transfer-graph topology with per-edge `alpha` weights derived from a
/// rates vector, pre-aligned to the in-CSR slots for the pull loop.
pub struct TransitionMatrix<'g> {
    graph: &'g TransferGraph,
    /// Per transfer-edge `alpha` (Equation 1), edge-indexed.
    edge_weights: Vec<f64>,
    /// `alpha` aligned with the in-CSR slots.
    in_slot_weights: Vec<f64>,
}

impl<'g> TransitionMatrix<'g> {
    /// Builds the matrix for a rates vector.
    pub fn new(graph: &'g TransferGraph, rates: &TransferRates) -> Self {
        Self::from_edge_weights(graph, graph.weights(rates))
    }

    /// Builds the matrix from precomputed per-edge weights (edge-indexed).
    ///
    /// # Panics
    /// Panics if `edge_weights` does not have one entry per transfer edge.
    pub fn from_edge_weights(graph: &'g TransferGraph, edge_weights: Vec<f64>) -> Self {
        assert_eq!(
            edge_weights.len(),
            graph.transfer_edge_count(),
            "edge weight vector length mismatch"
        );
        let in_slot_weights = graph
            .in_slot_edges()
            .iter()
            .map(|&e| edge_weights[e as usize])
            .collect();
        Self {
            graph,
            edge_weights,
            in_slot_weights,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying transfer graph.
    #[inline]
    pub fn graph(&self) -> &'g TransferGraph {
        self.graph
    }

    /// Per-transfer-edge `alpha` weights (edge-indexed).
    #[inline]
    pub fn edge_weights(&self) -> &[f64] {
        &self.edge_weights
    }

    /// Computes `out[i] = damping * Σ_{j -> i} alpha(j -> i) * r[j] + add[i]`
    /// for `i` in `range`, writing into `out` (which must be the slice for
    /// exactly that range).
    fn pull_range(
        &self,
        r: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        damping: f64,
        add: &[f64],
    ) {
        let csr = self.graph.in_csr();
        let offsets = csr.row_offsets();
        let targets = csr.targets();
        for (local, i) in range.clone().enumerate() {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            let mut acc = 0.0;
            for slot in lo..hi {
                // `targets` of the in-CSR are the *sources* j of edges j->i.
                acc += self.in_slot_weights[slot] * r[targets[slot] as usize];
            }
            out[local] = damping * acc + add[i];
        }
    }
}

fn resolve_threads(requested: usize, n: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if n < 50_000 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|p| p.get().min(16))
        .unwrap_or(1)
}

/// Runs Equation 4 to convergence.
///
/// `warm_start` seeds the iteration with a previous score vector — the
/// Section 6.2 optimization ("Manipulating Initial ObjectRank values"):
/// the initial query starts from global ObjectRank scores, reformulated
/// queries from the previous query's scores, which Figures 14(b)–17(b)
/// show cuts the iteration count sharply. Without it the iteration starts
/// from the base-set vector itself.
pub fn power_iteration(
    matrix: &TransitionMatrix<'_>,
    base: &BaseSet,
    params: &RankParams,
    warm_start: Option<&[f64]>,
) -> RankResult {
    let n = matrix.node_count();
    assert!(n > 0, "empty graph");
    assert!(
        (0.0..1.0).contains(&params.damping),
        "damping must be in [0, 1)"
    );
    let d = params.damping;
    let mut jump = base.to_dense(n);
    for p in &mut jump {
        *p *= 1.0 - d;
    }

    let mut r: Vec<f64> = match warm_start {
        Some(w) => {
            assert_eq!(w.len(), n, "warm-start vector length mismatch");
            // Use the previous scores verbatim: the fixpoint of Equation 4
            // generally sums to less than 1 (authority leaks at nodes whose
            // outgoing rates sum below 1), so renormalizing would move a
            // perfect warm start *away* from the fixpoint.
            let sum: f64 = w.iter().sum();
            if sum > 0.0 && sum.is_finite() {
                logger()
                    .info(LOG_TARGET, "warm start reused")
                    .field_u64("nodes", n as u64)
                    .field_f64("mass", sum)
                    .emit();
                w.to_vec()
            } else {
                logger()
                    .warn(LOG_TARGET, "warm start rejected, falling back to base set")
                    .field_f64("mass", sum)
                    .emit();
                base.to_dense(n)
            }
        }
        None => base.to_dense(n),
    };
    let mut r_new = vec![0.0; n];

    let threads = resolve_threads(params.threads, n);
    let mut residuals = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    let metrics = power_metrics();
    let iter_us = &metrics.iter_us;
    let tracer = orex_telemetry::tracer();
    let mut run_span = tracer.span("authority.power");
    if run_span.is_recording() {
        run_span.attr_u64("nodes", n as u64);
        run_span.attr_u64("warm_start", u64::from(warm_start.is_some()));
    }

    for _ in 0..params.max_iterations {
        iterations += 1;
        let mut iter_span = tracer.span("authority.power.iteration");
        let iter_start = iter_us.is_recording().then(std::time::Instant::now);
        if threads <= 1 {
            matrix.pull_range(&r, &mut r_new, 0..n, d, &jump);
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                let r_ref = &r;
                let jump_ref = &jump;
                for (idx, out_chunk) in r_new.chunks_mut(chunk).enumerate() {
                    let start = idx * chunk;
                    let range = start..start + out_chunk.len();
                    scope.spawn(move || {
                        matrix.pull_range(r_ref, out_chunk, range, d, jump_ref);
                    });
                }
            });
        }
        let residual: f64 = r_new.iter().zip(&r).map(|(&a, &b)| (a - b).abs()).sum();
        residuals.push(residual);
        if let Some(start) = iter_start {
            iter_us.record(start.elapsed().as_secs_f64() * 1e6);
        }
        if iter_span.is_recording() {
            iter_span.attr_f64("residual", residual);
            let active = r_new.iter().filter(|&&v| v > 0.0).count();
            iter_span.attr_u64("active_nodes", active as u64);
        }
        // Rate-limited so even OREX_LOG=trace stays bounded on the
        // hottest loop in the system.
        static RESIDUAL_LOG: RateLimit = RateLimit::new();
        if logger().enabled(Level::Trace, LOG_TARGET) && RESIDUAL_LOG.admit(RESIDUAL_LOG_EVERY) {
            logger()
                .trace(LOG_TARGET, "residual")
                .field_u64("iteration", iterations as u64)
                .field_f64("residual", residual)
                .emit();
        }
        drop(iter_span);
        std::mem::swap(&mut r, &mut r_new);
        if residual < params.epsilon {
            converged = true;
            break;
        }
    }

    metrics.runs.incr();
    metrics.iterations.add(iterations as u64);
    if converged {
        metrics.converged.incr();
    }
    orex_telemetry::global()
        .gauge("authority.power.last_residual")
        .set(residuals.last().copied().unwrap_or(0.0));
    if run_span.is_recording() {
        run_span.attr_u64("iterations", iterations as u64);
        run_span.attr_u64("converged", u64::from(converged));
    }
    let last_residual = residuals.last().copied().unwrap_or(0.0);
    if converged {
        logger()
            .info(LOG_TARGET, "converged")
            .field_u64("iterations", iterations as u64)
            .field_u64("nodes", n as u64)
            .field_f64("residual", last_residual)
            .field_bool("warm_start", warm_start.is_some())
            .emit();
    } else {
        logger()
            .warn(LOG_TARGET, "did not converge within iteration cap")
            .field_u64("iterations", iterations as u64)
            .field_u64("nodes", n as u64)
            .field_f64("residual", last_residual)
            .field_f64("epsilon", params.epsilon)
            .emit();
    }

    RankResult {
        scores: r,
        iterations,
        converged,
        residuals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_graph::{DataGraphBuilder, SchemaGraph, TransferGraph, TransferRates, TransferTypeId};

    /// A 4-node "cites" chain 0 -> 1 -> 2 -> 3 plus a back edge 3 -> 0.
    fn ring_graph() -> (TransferGraph, TransferRates) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("Paper").unwrap();
        let cites = schema.add_edge_type(p, p, "cites").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..4).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        for i in 0..4 {
            b.add_edge(nodes[i], nodes[(i + 1) % 4], cites).unwrap();
        }
        let g = b.freeze();
        let tg = TransferGraph::build(&g);
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(cites), 0.7).unwrap();
        rates.set(TransferTypeId::backward(cites), 0.1).unwrap();
        (tg, rates)
    }

    fn tight() -> RankParams {
        RankParams {
            epsilon: 1e-12,
            max_iterations: 2000,
            ..RankParams::default()
        }
    }

    #[test]
    fn symmetric_ring_gives_uniform_scores() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::global(4).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        assert!(res.converged);
        for &s in &res.scores {
            assert!((s - res.scores[0]).abs() < 1e-9, "{:?}", res.scores);
        }
    }

    #[test]
    fn scores_sum_at_most_one() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        let sum: f64 = res.scores.iter().sum();
        // Rates sum to 0.8 < 1 per node, so authority leaks: sum < 1.
        assert!(sum <= 1.0 + 1e-9);
        assert!(sum > 0.0);
    }

    #[test]
    fn base_set_node_dominates_nearby() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        // Node 0 jumps back to itself; node 1 receives its citation flow.
        assert!(res.scores[0] > res.scores[1]);
        assert!(res.scores[1] > res.scores[2]);
    }

    #[test]
    fn fixpoint_satisfies_equation4() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::weighted([(0, 3.0), (2, 1.0)]).unwrap();
        let params = tight();
        let res = power_iteration(&m, &base, &params, None);
        assert!(res.converged);
        // Verify r = d A r + (1-d) s componentwise by a manual pull.
        let n = tg.node_count();
        let w = m.edge_weights();
        for i in 0..n {
            let mut acc = 0.0;
            for (src, e) in tg.in_transfer(orex_graph::NodeId::from_usize(i)) {
                acc += w[e] * res.scores[src.index()];
            }
            let expect = params.damping * acc + (1.0 - params.damping) * base.probability(i as u32);
            assert!((res.scores[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_from_fixpoint_converges_immediately() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0, 2]).unwrap();
        let cold = power_iteration(&m, &base, &tight(), None);
        let warm = power_iteration(&m, &base, &tight(), Some(&cold.scores));
        assert!(warm.iterations <= 2, "took {}", warm.iterations);
        assert!(warm.converged);
    }

    #[test]
    fn warm_start_reduces_iterations_for_similar_query() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base1 = BaseSet::weighted([(0, 1.0), (1, 1.0)]).unwrap();
        let base2 = BaseSet::weighted([(0, 1.0), (1, 0.9)]).unwrap();
        let cold1 = power_iteration(&m, &base1, &tight(), None);
        let cold2 = power_iteration(&m, &base2, &tight(), None);
        let warm2 = power_iteration(&m, &base2, &tight(), Some(&cold1.scores));
        assert!(warm2.iterations < cold2.iterations);
        // Same fixpoint either way.
        for (a, b) in warm2.scores.iter().zip(&cold2.scores) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn degenerate_warm_start_falls_back_to_base() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let zeros = vec![0.0; 4];
        let res = power_iteration(&m, &base, &tight(), Some(&zeros));
        assert!(res.converged);
        assert!(res.scores[0] > 0.0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::weighted([(1, 2.0), (3, 1.0)]).unwrap();
        let serial = power_iteration(
            &m,
            &base,
            &RankParams {
                threads: 1,
                ..tight()
            },
            None,
        );
        let parallel = power_iteration(
            &m,
            &base,
            &RankParams {
                threads: 3,
                ..tight()
            },
            None,
        );
        assert_eq!(serial.iterations, parallel.iterations);
        for (a, b) in serial.scores.iter().zip(&parallel.scores) {
            assert_eq!(a, b, "parallel must be bitwise deterministic");
        }
    }

    #[test]
    fn residuals_decrease() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        for pair in res.residuals.windows(2) {
            assert!(
                pair[1] <= pair[0] * 1.01,
                "residuals not decreasing: {pair:?}"
            );
        }
    }

    #[test]
    fn max_iterations_cap_respected() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let res = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 0.0,
                max_iterations: 3,
                ..RankParams::default()
            },
            None,
        );
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }

    #[test]
    fn damping_zero_returns_base_set() {
        let (tg, rates) = ring_graph();
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::weighted([(2, 1.0)]).unwrap();
        let res = power_iteration(
            &m,
            &base,
            &RankParams {
                damping: 0.0,
                ..tight()
            },
            None,
        );
        assert!(res.converged);
        assert!((res.scores[2] - 1.0).abs() < 1e-12);
        assert_eq!(res.scores[0], 0.0);
    }
}
