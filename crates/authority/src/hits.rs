//! HITS (Kleinberg, JACM 1999): the hubs-and-authorities baseline the
//! paper's related work contrasts with authority-flow ranking.
//!
//! HITS computes two mutually recursive scores over the *directed data
//! graph* (forward transfer edges only): a node's authority score is the
//! normalized sum of the hub scores pointing at it, and its hub score the
//! normalized sum of the authority scores it points to. Unlike
//! ObjectRank, HITS ignores edge types and has no query-specific jump —
//! which is exactly the contrast the paper draws.

use orex_graph::{Direction, NodeId, TransferGraph};

/// Parameters for the HITS iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HitsParams {
    /// L2 convergence threshold on the authority vector.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for HitsParams {
    fn default() -> Self {
        Self {
            epsilon: 1e-8,
            max_iterations: 200,
        }
    }
}

/// Result of a HITS computation.
#[derive(Clone, Debug)]
pub struct HitsResult {
    /// Authority scores (L2-normalized).
    pub authorities: Vec<f64>,
    /// Hub scores (L2-normalized).
    pub hubs: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the threshold was met.
    pub converged: bool,
}

fn l2_normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

/// Runs HITS over the directed data graph, optionally restricted to a
/// node subset (the classic "base subgraph" of the query — pass the
/// base-set neighborhood for query-specific HITS, or `None` for global).
pub fn hits(graph: &TransferGraph, subset: Option<&[u32]>, params: &HitsParams) -> HitsResult {
    let n = graph.node_count();
    let in_subset: Option<Vec<bool>> = subset.map(|nodes| {
        let mut mask = vec![false; n];
        for &node in nodes {
            mask[node as usize] = true;
        }
        mask
    });
    let active = |node: usize| in_subset.as_ref().is_none_or(|m| m[node]);

    // Collect the forward edges once (HITS is type- and weight-oblivious).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for e in 0..graph.transfer_edge_count() {
        if graph.edge_transfer_type(e).direction == Direction::Forward {
            let (src, dst) = graph.edge_endpoints(e);
            if active(src.index()) && active(dst.index()) {
                edges.push((src.raw(), dst.raw()));
            }
        }
    }

    let mut auth = vec![0.0f64; n];
    let mut hub = vec![0.0f64; n];
    for node in 0..n {
        if active(node) {
            auth[node] = 1.0;
            hub[node] = 1.0;
        }
    }
    l2_normalize(&mut auth);
    l2_normalize(&mut hub);

    let mut iterations = 0;
    let mut converged = false;
    let mut new_auth = vec![0.0f64; n];
    let mut new_hub = vec![0.0f64; n];
    for _ in 0..params.max_iterations {
        iterations += 1;
        new_auth.iter_mut().for_each(|x| *x = 0.0);
        new_hub.iter_mut().for_each(|x| *x = 0.0);
        for &(src, dst) in &edges {
            new_auth[dst as usize] += hub[src as usize];
        }
        l2_normalize(&mut new_auth);
        for &(src, dst) in &edges {
            new_hub[src as usize] += new_auth[dst as usize];
        }
        l2_normalize(&mut new_hub);
        let delta: f64 = new_auth
            .iter()
            .zip(&auth)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        std::mem::swap(&mut auth, &mut new_auth);
        std::mem::swap(&mut hub, &mut new_hub);
        if delta < params.epsilon {
            converged = true;
            break;
        }
    }

    HitsResult {
        authorities: auth,
        hubs: hub,
        iterations,
        converged,
    }
}

/// Convenience: the base subgraph of a base set — the base nodes plus
/// everything within one hop (in either direction) of them, the expansion
/// Kleinberg's original algorithm applies to the root set.
pub fn base_subgraph(graph: &TransferGraph, roots: &[u32]) -> Vec<u32> {
    let mut nodes: Vec<u32> = roots.to_vec();
    for &r in roots {
        for (next, _) in graph.out_transfer(NodeId::new(r)) {
            nodes.push(next.raw());
        }
        for (prev, _) in graph.in_transfer(NodeId::new(r)) {
            nodes.push(prev.raw());
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_graph::{DataGraphBuilder, SchemaGraph, TransferGraph};

    /// Star: nodes 1..4 all point at node 0; node 5 points at 1..4.
    fn star() -> TransferGraph {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let nodes: Vec<_> = (0..6).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        for i in 1..5 {
            b.add_edge(nodes[i], nodes[0], r).unwrap();
            b.add_edge(nodes[5], nodes[i], r).unwrap();
        }
        TransferGraph::build(&b.freeze())
    }

    #[test]
    fn authority_concentrates_on_pointed_node() {
        let g = star();
        let res = hits(&g, None, &HitsParams::default());
        assert!(res.converged);
        // Node 0 is pointed at by every middle node: top authority.
        let best = res
            .authorities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 0);
        // Node 5 points at all the middle nodes: top hub.
        let best_hub = res
            .hubs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best_hub, 5);
    }

    #[test]
    fn scores_are_l2_normalized() {
        let g = star();
        let res = hits(&g, None, &HitsParams::default());
        let na: f64 = res.authorities.iter().map(|x| x * x).sum();
        let nh: f64 = res.hubs.iter().map(|x| x * x).sum();
        assert!((na - 1.0).abs() < 1e-9);
        assert!((nh - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subset_restricts_computation() {
        let g = star();
        // Exclude the super-hub (node 5): middle nodes lose hub backing.
        let subset: Vec<u32> = vec![0, 1, 2, 3, 4];
        let res = hits(&g, Some(&subset), &HitsParams::default());
        assert_eq!(res.authorities[5], 0.0);
        assert_eq!(res.hubs[5], 0.0);
        assert!(res.authorities[0] > 0.0);
    }

    #[test]
    fn base_subgraph_expands_one_hop() {
        let g = star();
        let sub = base_subgraph(&g, &[0]);
        // Node 0's in-neighbors are 1..4 (via forward edges) and their
        // transfer-backward edges; node 5 is two hops away.
        assert!(sub.contains(&0));
        for i in 1..5u32 {
            assert!(sub.contains(&i));
        }
    }

    #[test]
    fn empty_graph_is_harmless() {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        b.add_node(p, vec![]).unwrap();
        let g = TransferGraph::build(&b.freeze());
        let res = hits(&g, None, &HitsParams::default());
        assert!(res.converged);
        assert_eq!(res.authorities.len(), 1);
    }
}
