//! The ranking algorithms of the paper and its baselines.
//!
//! - [`object_rank2`]: the paper's ranker (Section 3) — weighted base set
//!   from IR scores, Equation 4;
//! - [`object_rank`]: the original ObjectRank of Balmin et al. (VLDB 2004)
//!   — uniform (0/1) base set over nodes containing a query term;
//! - [`modified_object_rank`]: the multi-keyword comparison baseline of
//!   Section 6.1.1, Equation 16 — per-keyword runs combined by a product
//!   with normalizing exponents `g(t) = 1 / log(|S(t)|)`;
//! - [`global_object_rank`]: query-independent ObjectRank over the full
//!   node set, used to seed warm starts for initial queries (Section 6.2);
//! - [`page_rank`]: type-oblivious PageRank on the directed data graph,
//!   the Web baseline the introduction contrasts against.

use crate::base_set::{BaseSet, BaseSetError};
use crate::power::{power_iteration, RankParams, RankResult, TransitionMatrix};
use orex_graph::{Direction, TransferGraph};
use orex_ir::{InvertedIndex, QueryVector, Scorer};
use std::fmt;

/// Errors raised by the high-level rankers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingError {
    /// The query matched no node: the base set is empty.
    EmptyBaseSet(BaseSetError),
    /// The query vector has no usable terms.
    EmptyQuery,
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::EmptyBaseSet(e) => write!(f, "empty base set: {e}"),
            RankingError::EmptyQuery => write!(f, "query has no usable terms"),
        }
    }
}

impl std::error::Error for RankingError {}

impl From<BaseSetError> for RankingError {
    fn from(e: BaseSetError) -> Self {
        RankingError::EmptyBaseSet(e)
    }
}

/// ObjectRank2 (Section 3): the base-set jump probability of each node is
/// proportional to its IR score for the query vector (Equation 2), and the
/// scores follow Equation 4.
///
/// `warm_start` feeds the previous score vector per the Section 6.2
/// optimization.
pub fn object_rank2(
    matrix: &TransitionMatrix<'_>,
    index: &InvertedIndex,
    query: &QueryVector,
    scorer: &dyn Scorer,
    params: &RankParams,
    warm_start: Option<&[f64]>,
) -> Result<RankResult, RankingError> {
    if query.is_empty() {
        return Err(RankingError::EmptyQuery);
    }
    let base = {
        let mut span = orex_telemetry::tracer().span("authority.base_set");
        let base = BaseSet::weighted(index.base_set_scores(query, scorer))?;
        if span.is_recording() {
            span.attr_u64("base_set_size", base.len() as u64);
        }
        base
    };
    Ok(power_iteration(matrix, &base, params, warm_start))
}

/// Original ObjectRank (BHP04): same random walk, but every base-set node
/// is jumped to with equal probability (the `s_i ∈ {0, 1}` base set,
/// normalized).
pub fn object_rank(
    matrix: &TransitionMatrix<'_>,
    index: &InvertedIndex,
    query: &QueryVector,
    params: &RankParams,
    warm_start: Option<&[f64]>,
) -> Result<RankResult, RankingError> {
    if query.is_empty() {
        return Err(RankingError::EmptyQuery);
    }
    let mut nodes: Vec<u32> = Vec::new();
    for (term, _) in query.iter() {
        if let Some(tid) = index.term_id(term) {
            nodes.extend(index.postings(tid).iter().map(|p| p.doc));
        }
    }
    let base = BaseSet::uniform(nodes)?;
    Ok(power_iteration(matrix, &base, params, warm_start))
}

/// Query-independent global ObjectRank: uniform base set over all nodes.
pub fn global_object_rank(matrix: &TransitionMatrix<'_>, params: &RankParams) -> RankResult {
    // orex::allow(ORX008): `BaseSet::global` fails only for a
    // zero-node graph, and dataset construction rejects empty graphs
    // before a matrix ever reaches the ranking kernels.
    let base = BaseSet::global(matrix.node_count()).expect("non-empty graph");
    power_iteration(matrix, &base, params, None)
}

/// The modified multi-keyword ObjectRank of Equation 16:
///
/// ```text
/// r(v) = Π_i  r_{t_i}(v) ^ g(t_i),    g(t) = 1 / log |S(t)|
/// ```
///
/// Each keyword gets its own single-keyword ObjectRank run with a uniform
/// base set `S(t_i)`; the normalizing exponent counteracts the skew toward
/// popular keywords. `|S(t)| <= e` clamps the exponent to 1 (the paper does
/// not define `g` for tiny base sets; any fixed positive choice preserves
/// the ranking semantics there).
///
/// Nodes missing from any keyword's reachable set score 0 (product
/// semantics). Keywords absent from the corpus are an error only when
/// *all* are absent.
pub fn modified_object_rank(
    matrix: &TransitionMatrix<'_>,
    index: &InvertedIndex,
    query: &QueryVector,
    params: &RankParams,
) -> Result<RankResult, RankingError> {
    if query.is_empty() {
        return Err(RankingError::EmptyQuery);
    }
    let n = matrix.node_count();
    let mut combined = vec![1.0; n];
    let mut iterations = 0;
    let mut converged = true;
    let mut matched_any = false;
    for (term, _) in query.iter() {
        let Some(tid) = index.term_id(term) else {
            continue;
        };
        let nodes: Vec<u32> = index.postings(tid).iter().map(|p| p.doc).collect();
        let Ok(base) = BaseSet::uniform(nodes) else {
            continue;
        };
        matched_any = true;
        let g = 1.0 / (base.len() as f64).ln().max(1.0);
        let res = power_iteration(matrix, &base, params, None);
        iterations += res.iterations;
        converged &= res.converged;
        for (c, &s) in combined.iter_mut().zip(&res.scores) {
            *c *= s.powf(g);
        }
    }
    if !matched_any {
        return Err(RankingError::EmptyBaseSet(BaseSetError::Empty));
    }
    Ok(RankResult {
        scores: combined,
        iterations,
        converged,
        residuals: Vec::new(),
    })
}

/// Type-oblivious PageRank on the directed data graph: every node spreads
/// its authority equally over its *forward* transfer edges (the original
/// data-graph edges); backward edges carry nothing. The jump vector is
/// uniform over all nodes.
pub fn page_rank(graph: &TransferGraph, params: &RankParams) -> RankResult {
    let n = graph.node_count();
    // Count forward out-degrees.
    let mut fwd_deg = vec![0u32; n];
    for e in 0..graph.transfer_edge_count() {
        if graph.edge_transfer_type(e).direction == Direction::Forward {
            let (src, _) = graph.edge_endpoints(e);
            fwd_deg[src.index()] += 1;
        }
    }
    let weights: Vec<f64> = (0..graph.transfer_edge_count())
        .map(|e| {
            if graph.edge_transfer_type(e).direction == Direction::Forward {
                let (src, _) = graph.edge_endpoints(e);
                1.0 / fwd_deg[src.index()] as f64
            } else {
                0.0
            }
        })
        .collect();
    let matrix = TransitionMatrix::from_edge_weights(graph, weights);
    let base = BaseSet::global(n).expect("non-empty graph");
    power_iteration(&matrix, &base, params, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_graph::{DataGraph, DataGraphBuilder, SchemaGraph, TransferRates, TransferTypeId};
    use orex_ir::{Analyzer, IndexBuilder, Okapi, Query};

    /// Figure-1-like dataset: 4 papers, an author; "olap" appears in two
    /// papers, the "cube" paper is cited by all others but does not
    /// contain "olap".
    fn dataset() -> (DataGraph, TransferRates) {
        let mut schema = SchemaGraph::new();
        let paper = schema.add_node_type("Paper").unwrap();
        let author = schema.add_node_type("Author").unwrap();
        let cites = schema.add_edge_type(paper, paper, "cites").unwrap();
        let by = schema.add_edge_type(paper, author, "by").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let cube = b
            .add_node_with(paper, &[("Title", "Data Cube Relational Aggregation")])
            .unwrap();
        let index_sel = b
            .add_node_with(paper, &[("Title", "Index Selection for OLAP")])
            .unwrap();
        let range_q = b
            .add_node_with(paper, &[("Title", "Range Queries in OLAP Data Cubes")])
            .unwrap();
        let modeling = b
            .add_node_with(paper, &[("Title", "Modeling Multidimensional Databases")])
            .unwrap();
        let agrawal = b.add_node_with(author, &[("Name", "R. Agrawal")]).unwrap();
        b.add_edge(index_sel, cube, cites).unwrap();
        b.add_edge(range_q, cube, cites).unwrap();
        b.add_edge(modeling, cube, cites).unwrap();
        b.add_edge(range_q, modeling, cites).unwrap();
        b.add_edge(range_q, agrawal, by).unwrap();
        b.add_edge(modeling, agrawal, by).unwrap();
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(cites), 0.7).unwrap();
        rates.set(TransferTypeId::forward(by), 0.2).unwrap();
        rates.set(TransferTypeId::backward(by), 0.2).unwrap();
        (g, rates)
    }

    fn index_of(g: &DataGraph) -> orex_ir::InvertedIndex {
        let mut b = IndexBuilder::new(Analyzer::new());
        for node in g.nodes() {
            b.add_document(node.raw(), &g.node_text(node));
        }
        b.build()
    }

    fn params() -> RankParams {
        RankParams {
            epsilon: 1e-10,
            max_iterations: 1000,
            ..RankParams::default()
        }
    }

    #[test]
    fn objectrank2_ranks_cited_paper_without_keyword() {
        let (g, rates) = dataset();
        let tg = TransferGraph::build(&g);
        let m = TransitionMatrix::new(&tg, &rates);
        let idx = index_of(&g);
        let q = QueryVector::initial(&Query::parse("olap"), idx.analyzer());
        let res = object_rank2(&m, &idx, &q, &Okapi::default(), &params(), None).unwrap();
        // The "Data Cube" paper (node 0) has no "olap" but receives all
        // citation flow — the headline ObjectRank behaviour.
        assert!(res.scores[0] > 0.0);
        assert!(
            res.scores[0] > res.scores[3],
            "cited hub should outrank a non-matching leaf: {:?}",
            res.scores
        );
    }

    #[test]
    fn objectrank2_differs_from_objectrank_via_weighting() {
        let (g, rates) = dataset();
        let tg = TransferGraph::build(&g);
        let m = TransitionMatrix::new(&tg, &rates);
        let idx = index_of(&g);
        let q = QueryVector::initial(&Query::parse("olap data"), idx.analyzer());
        let or2 = object_rank2(&m, &idx, &q, &Okapi::default(), &params(), None).unwrap();
        let or1 = object_rank(&m, &idx, &q, &params(), None).unwrap();
        // Both produce valid rankings, but base-set weighting shifts mass.
        let diff: f64 = or2
            .scores
            .iter()
            .zip(&or1.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "weighted base set should change scores");
    }

    #[test]
    fn empty_query_rejected() {
        let (g, rates) = dataset();
        let tg = TransferGraph::build(&g);
        let m = TransitionMatrix::new(&tg, &rates);
        let idx = index_of(&g);
        let q = QueryVector::empty();
        assert!(matches!(
            object_rank2(&m, &idx, &q, &Okapi::default(), &params(), None),
            Err(RankingError::EmptyQuery)
        ));
    }

    #[test]
    fn unmatched_query_gives_empty_base_set() {
        let (g, rates) = dataset();
        let tg = TransferGraph::build(&g);
        let m = TransitionMatrix::new(&tg, &rates);
        let idx = index_of(&g);
        let q = QueryVector::from_weights([("zzzz", 1.0)]);
        assert!(matches!(
            object_rank2(&m, &idx, &q, &Okapi::default(), &params(), None),
            Err(RankingError::EmptyBaseSet(_))
        ));
    }

    #[test]
    fn global_object_rank_favors_hub() {
        let (g, rates) = dataset();
        let tg = TransferGraph::build(&g);
        let m = TransitionMatrix::new(&tg, &rates);
        let res = global_object_rank(&m, &params());
        // The thrice-cited cube paper accumulates the most authority.
        let best = res
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 0);
    }

    #[test]
    fn modified_object_rank_is_product_of_runs() {
        let (g, rates) = dataset();
        let tg = TransferGraph::build(&g);
        let m = TransitionMatrix::new(&tg, &rates);
        let idx = index_of(&g);
        let q = QueryVector::initial(&Query::parse("olap cube"), idx.analyzer());
        let res = modified_object_rank(&m, &idx, &q, &params()).unwrap();
        // Verify against a manual per-keyword computation.
        for term in ["olap", "cube"] {
            assert!(idx.term_id(term).is_some());
        }
        let manual = {
            let mut combined = vec![1.0; g.node_count()];
            for term in ["olap", "cube"] {
                let tid = idx.term_id(term).unwrap();
                let nodes: Vec<u32> = idx.postings(tid).iter().map(|p| p.doc).collect();
                let base = BaseSet::uniform(nodes.clone()).unwrap();
                let g_exp = 1.0 / (nodes.len() as f64).ln().max(1.0);
                let r = power_iteration(&m, &base, &params(), None);
                for (c, &s) in combined.iter_mut().zip(&r.scores) {
                    *c *= s.powf(g_exp);
                }
            }
            combined
        };
        for (a, b) in res.scores.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn modified_object_rank_skips_unknown_terms() {
        let (g, rates) = dataset();
        let tg = TransferGraph::build(&g);
        let m = TransitionMatrix::new(&tg, &rates);
        let idx = index_of(&g);
        let q = QueryVector::from_weights([("olap", 1.0), ("zzzz", 1.0)]);
        assert!(modified_object_rank(&m, &idx, &q, &params()).is_ok());
        let all_unknown = QueryVector::from_weights([("zzzz", 1.0)]);
        assert!(modified_object_rank(&m, &idx, &all_unknown, &params()).is_err());
    }

    #[test]
    fn page_rank_sums_to_one_with_dangling_leak_only() {
        let (g, _) = dataset();
        let tg = TransferGraph::build(&g);
        let res = page_rank(&tg, &params());
        let sum: f64 = res.scores.iter().sum();
        assert!(sum > 0.0 && sum <= 1.0 + 1e-9);
        // The cube paper and the author are sinks receiving flow.
        assert!(res.scores[0] > res.scores[1]);
    }
}
