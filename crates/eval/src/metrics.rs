//! Retrieval-quality metrics used by the Section 6.1 experiments.
//!
//! The surveys report *average precision* over top-`k` lists; since the
//! output is always truncated to `k`, recall equals precision there (as
//! the paper notes). Cosine similarity between rates vectors lives on
//! [`orex_graph::TransferRates::cosine_similarity`]; a generic vector
//! version is provided here for ad-hoc use.

use std::collections::HashSet;

/// Precision@k: the fraction of the first `k` ranked items that are
/// relevant. When fewer than `k` items are ranked, the denominator stays
/// `k` (missing results are misses), matching the paper's fixed-`k`
/// evaluation.
pub fn precision_at_k(ranked: &[u32], relevant: &HashSet<u32>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|n| relevant.contains(n))
        .count();
    hits as f64 / k as f64
}

/// Classic average precision: mean of precision@i over the ranks `i` of
/// relevant retrieved items, normalized by `min(|relevant|, k)`.
pub fn average_precision(ranked: &[u32], relevant: &HashSet<u32>, k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, n) in ranked.iter().take(k).enumerate() {
        if relevant.contains(n) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    let denom = relevant.len().min(k);
    sum / denom as f64
}

/// Recall@k: fraction of the relevant set retrieved within the first `k`.
pub fn recall_at_k(ranked: &[u32], relevant: &HashSet<u32>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|n| relevant.contains(n))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Cosine similarity between two equal-length vectors (0 when either is
/// all-zero).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Kendall's tau-a between two rankings of the same item set, given as
/// ordered slices (most relevant first). Items missing from either
/// ranking are ignored. Returns a value in `[-1, 1]`.
pub fn kendall_tau(a: &[u32], b: &[u32]) -> f64 {
    use std::collections::HashMap;
    let pos_b: HashMap<u32, usize> = b.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let common: Vec<usize> = a.iter().filter_map(|n| pos_b.get(n).copied()).collect();
    let n = common.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            if common[i] < common[j] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

/// Reciprocal rank of the first relevant result within the top `k`
/// (0 when none is retrieved).
pub fn reciprocal_rank(ranked: &[u32], relevant: &HashSet<u32>, k: usize) -> f64 {
    ranked
        .iter()
        .take(k)
        .position(|n| relevant.contains(n))
        .map_or(0.0, |i| 1.0 / (i + 1) as f64)
}

/// Binary nDCG@k: DCG with gain 1 for relevant items, normalized by the
/// ideal DCG of `min(|relevant|, k)` leading hits.
pub fn ndcg_at_k(ranked: &[u32], relevant: &HashSet<u32>, k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, n)| relevant.contains(n))
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    dcg / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> HashSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn reciprocal_rank_first_hit() {
        let relevant = set(&[5]);
        assert_eq!(reciprocal_rank(&[5, 1, 2], &relevant, 3), 1.0);
        assert_eq!(reciprocal_rank(&[1, 5, 2], &relevant, 3), 0.5);
        assert_eq!(reciprocal_rank(&[1, 2, 3], &relevant, 3), 0.0);
        assert_eq!(reciprocal_rank(&[1, 2, 5], &relevant, 2), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let relevant = set(&[1, 2]);
        assert!((ndcg_at_k(&[1, 2, 9], &relevant, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_late_hits() {
        let relevant = set(&[1]);
        let early = ndcg_at_k(&[1, 9, 9], &relevant, 3);
        let late = ndcg_at_k(&[9, 9, 1], &relevant, 3);
        assert!(early > late);
        assert!(late > 0.0);
    }

    #[test]
    fn ndcg_degenerate_inputs() {
        assert_eq!(ndcg_at_k(&[1], &set(&[]), 3), 0.0);
        assert_eq!(ndcg_at_k(&[1], &set(&[1]), 0), 0.0);
    }

    #[test]
    fn precision_basics() {
        let relevant = set(&[1, 3, 5]);
        assert_eq!(precision_at_k(&[1, 2, 3, 4], &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&[1, 3, 5], &relevant, 3), 1.0);
        assert_eq!(precision_at_k(&[2, 4], &relevant, 2), 0.0);
        assert_eq!(precision_at_k(&[], &relevant, 5), 0.0);
        assert_eq!(precision_at_k(&[1], &relevant, 0), 0.0);
    }

    #[test]
    fn short_lists_penalized() {
        let relevant = set(&[1]);
        // Only one result returned but k = 10: precision 1/10.
        assert_eq!(precision_at_k(&[1], &relevant, 10), 0.1);
    }

    #[test]
    fn average_precision_rewards_early_hits() {
        let relevant = set(&[1, 2]);
        let early = average_precision(&[1, 2, 9, 9, 9], &relevant, 5);
        let late = average_precision(&[9, 9, 9, 1, 2], &relevant, 5);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_bounds() {
        let relevant = set(&[1, 2, 3]);
        let ap = average_precision(&[3, 9, 1, 9, 2], &relevant, 5);
        assert!(ap > 0.0 && ap < 1.0);
        assert_eq!(average_precision(&[9, 8], &relevant, 2), 0.0);
        assert_eq!(average_precision(&[1], &set(&[]), 5), 0.0);
    }

    #[test]
    fn recall_counts_against_relevant_size() {
        let relevant = set(&[1, 2, 3, 4]);
        assert_eq!(recall_at_k(&[1, 2, 9], &relevant, 3), 0.5);
        assert_eq!(recall_at_k(&[], &relevant, 3), 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let c = cosine(&[1.0, 1.0], &[1.0, 0.5]);
        assert!(c > 0.9 && c < 1.0);
    }

    #[test]
    fn kendall_tau_extremes() {
        assert!((kendall_tau(&[1, 2, 3, 4], &[1, 2, 3, 4]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[1, 2, 3, 4], &[4, 3, 2, 1]) + 1.0).abs() < 1e-12);
        // Disjoint rankings: trivially concordant.
        assert_eq!(kendall_tau(&[1, 2], &[3, 4]), 1.0);
    }

    #[test]
    fn kendall_tau_partial_overlap() {
        let t = kendall_tau(&[1, 2, 3], &[2, 1, 3]);
        // One discordant pair of three: (3 - ... ) -> (2-1)/3.
        assert!((t - 1.0 / 3.0).abs() < 1e-12);
    }
}
