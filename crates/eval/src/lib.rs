//! # orex-eval — evaluation substrate for the paper's experiments
//!
//! Metrics (precision@k, average precision, cosine, Kendall tau), the
//! residual-collection relevance-feedback protocol of \[RL03, SB90\],
//! simulated users standing in for the paper's survey subjects, and the
//! survey runners that regenerate Figures 10–13 and Table 2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bootstrap;
mod metrics;
mod stats;
mod survey;
mod user;

pub use bootstrap::{paired_bootstrap, BootstrapResult};
pub use metrics::{
    average_precision, cosine, kendall_tau, ndcg_at_k, precision_at_k, recall_at_k, reciprocal_rank,
};
pub use stats::{paired_difference, Summary};
pub use survey::{
    compare_rankers, run_survey, QueryTrace, RankerComparison, SurveyConfig, SurveyOutcome,
};
pub use user::{ResidualCollection, SimulatedUser};
