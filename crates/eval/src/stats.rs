//! Descriptive statistics for experiment outputs.
//!
//! Survey results are averages over users × queries; reporting them
//! responsibly needs dispersion alongside the mean (the paper plots bare
//! means — we additionally record standard errors and confidence
//! intervals in the regenerated EXPERIMENTS.md records).

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0 for n < 2.
    pub std_dev: f64,
    /// Standard error of the mean; 0 for n < 2.
    pub std_err: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns `None` for empty input
    /// or any non-finite value.
    pub fn of(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let (std_dev, std_err) = if n >= 2 {
            let var =
                sample.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
            let sd = var.sqrt();
            (sd, sd / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Self {
            n,
            mean,
            std_dev,
            std_err,
            min,
            max,
        })
    }

    /// A normal-approximation 95% confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err;
        (self.mean - half, self.mean + half)
    }
}

/// Paired mean difference `a[i] - b[i]` with its summary — the right way
/// to compare two reformulation settings evaluated on the same queries.
pub fn paired_difference(a: &[f64], b: &[f64]) -> Option<Summary> {
    if a.len() != b.len() {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    Summary::of(&diffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Bessel-corrected sd of this classic sample is ~2.138.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn singleton_has_zero_dispersion() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.std_err, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn ci95_contains_mean() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean && s.mean < hi);
    }

    #[test]
    fn paired_difference_detects_direction() {
        let a = [0.8, 0.9, 0.7];
        let b = [0.5, 0.6, 0.4];
        let d = paired_difference(&a, &b).unwrap();
        assert!((d.mean - 0.3).abs() < 1e-12);
        assert!(paired_difference(&a, &b[..2]).is_none());
    }
}
