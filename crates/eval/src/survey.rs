//! Survey runners: the engines behind the Section 6.1 quality experiments
//! (Figures 10–13, Table 2), with simulated users in place of the paper's
//! human subjects (DESIGN.md §2).
//!
//! A survey runs, per query: a *ground-truth* ObjectRank2 execution (with
//! the dataset's ground-truth rates) whose top results define relevance;
//! then a *trained* session starting from uniform rates (0.3 per the
//! paper) that iterates the feedback/reformulation loop. Average precision
//! under the residual-collection protocol and the cosine similarity of the
//! learned rates to the ground truth are recorded per iteration.

use crate::metrics::precision_at_k;
use crate::user::{ResidualCollection, SimulatedUser};
use orex_authority::{modified_object_rank, object_rank2, top_k, TransitionMatrix};
use orex_core::{ObjectRankSystem, QuerySession};
use orex_graph::TransferRates;
use orex_ir::{Query, QueryVector};
use orex_reformulate::ReformulateParams;

/// Configuration of a simulated survey (Figures 10–13).
#[derive(Clone, Debug)]
pub struct SurveyConfig {
    /// Number of feedback/reformulation rounds (the paper plots 4–5).
    pub iterations: usize,
    /// Results shown and evaluated per round (`k = 10` in the surveys;
    /// the paper's Figure 10 text mentions limiting output to `k`).
    pub k: usize,
    /// Size of the ground-truth relevant set per query.
    pub ground_truth_depth: usize,
    /// Initial value of every authority transfer rate (0.3 in Section
    /// 6.1.1), rescaled per node type to keep convergence.
    pub initial_rate: f64,
    /// Reformulation setting under test (content-only / structure-only /
    /// both).
    pub reformulate: ReformulateParams,
    /// Maximum objects the user marks per round.
    pub max_feedback: usize,
    /// Reformulate from the explaining subgraphs of *all* objects marked
    /// so far (Section 5.3 multi-object aggregation) rather than only the
    /// current round's picks. Cumulative feedback keeps the early strong
    /// relevance signal in the mix and damps round-to-round drift.
    pub cumulative_feedback: bool,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        Self {
            iterations: 4,
            k: 10,
            ground_truth_depth: 20,
            initial_rate: 0.3,
            reformulate: ReformulateParams::structure_only(0.5),
            max_feedback: 2,
            cumulative_feedback: false,
        }
    }
}

/// Per-query survey trace.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// The query.
    pub query: Query,
    /// Precision@k per iteration (index 0 = initial query), evaluated on
    /// the residual collection.
    pub precision: Vec<f64>,
    /// Cosine similarity of the session rates to the ground truth per
    /// iteration.
    pub cosine: Vec<f64>,
}

/// Aggregated survey outcome.
#[derive(Clone, Debug)]
pub struct SurveyOutcome {
    /// Per-query traces (queries that produced no base set are skipped).
    pub traces: Vec<QueryTrace>,
    /// Mean precision per iteration across queries.
    pub avg_precision: Vec<f64>,
    /// Mean rates-cosine per iteration across queries.
    pub avg_cosine: Vec<f64>,
}

/// Runs the simulated survey.
pub fn run_survey(
    system: &ObjectRankSystem,
    ground_truth: &TransferRates,
    queries: &[Query],
    config: &SurveyConfig,
) -> SurveyOutcome {
    let mut traces = Vec::new();
    for query in queries {
        if let Some(trace) = run_one_query(system, ground_truth, query, config) {
            traces.push(trace);
        }
    }
    let rounds = config.iterations + 1;
    let mut avg_precision = vec![0.0; rounds];
    let mut avg_cosine = vec![0.0; rounds];
    if !traces.is_empty() {
        for t in &traces {
            for i in 0..rounds {
                avg_precision[i] += t.precision[i];
                avg_cosine[i] += t.cosine[i];
            }
        }
        let n = traces.len() as f64;
        for i in 0..rounds {
            avg_precision[i] /= n;
            avg_cosine[i] /= n;
        }
    }
    SurveyOutcome {
        traces,
        avg_precision,
        avg_cosine,
    }
}

fn run_one_query(
    system: &ObjectRankSystem,
    ground_truth: &TransferRates,
    query: &Query,
    config: &SurveyConfig,
) -> Option<QueryTrace> {
    // Ground truth: ObjectRank2 under the expert rates.
    let gt_session = QuerySession::start_with(system, query, ground_truth.clone()).ok()?;
    let relevant: Vec<u32> = gt_session
        .top_k(config.ground_truth_depth)
        .into_iter()
        .map(|r| r.node.raw())
        .collect();
    if relevant.is_empty() {
        return None;
    }
    let user = SimulatedUser::new(relevant);

    // Trained session starting from (rescaled) uniform rates.
    let start_rates =
        TransferRates::normalized_uniform(system.graph().schema(), config.initial_rate);
    let mut session = QuerySession::start_with(system, query, start_rates).ok()?;
    let mut rc = ResidualCollection::new();
    let mut marked: std::collections::HashSet<u32> = Default::default();

    let mut precision = Vec::with_capacity(config.iterations + 1);
    let mut cosine = Vec::with_capacity(config.iterations + 1);

    for round in 0..=config.iterations {
        // Evaluate on the residual collection: rank deep enough that
        // filtering the removed objects still leaves k.
        let deep: Vec<u32> = session
            .top_k(config.k + rc.removed().len())
            .into_iter()
            .map(|r| r.node.raw())
            .collect();
        let shown = rc.residual_ranking(&deep);
        let residual_relevant = rc.residual_relevant(user.relevant());
        precision.push(precision_at_k(&shown, &residual_relevant, config.k));
        cosine.push(session.rates().cosine_similarity(ground_truth));

        if round == config.iterations {
            break;
        }
        // The user marks relevant results among those shown.
        let picks = user.select_feedback(
            &shown[..shown.len().min(config.k)],
            config.max_feedback,
            &marked,
        );
        if picks.is_empty() {
            // Nothing to learn from this round; the session stays put
            // (the paper's users always found something — our noiseless
            // user may exhaust the shown relevant objects).
            continue;
        }
        marked.extend(picks.iter().copied());
        rc.remove_all(&picks);
        // Cumulative mode reformulates from *all* relevant objects found
        // so far (Section 5.3 aggregation across the full marked set);
        // the default is the paper's per-round protocol.
        let feedback_set: Vec<u32> = if config.cumulative_feedback {
            let mut all: Vec<u32> = marked.iter().copied().collect();
            all.sort_unstable();
            all
        } else {
            picks.clone()
        };
        let nodes: Vec<orex_graph::NodeId> = feedback_set
            .iter()
            .map(|&n| orex_graph::NodeId::new(n))
            .collect();
        // A feedback object can become unexplainable under pathological
        // rates; skip the round rather than aborting the survey.
        let _ = session.feedback_with(&nodes, &config.reformulate);
    }

    Some(QueryTrace {
        query: query.clone(),
        precision,
        cosine,
    })
}

/// Table 2 comparison: ObjectRank2 vs the modified multi-keyword
/// ObjectRank (Equation 16), both under the same rates.
#[derive(Clone, Debug)]
pub struct RankerComparison {
    /// The query.
    pub query: Query,
    /// Relevant results in ObjectRank2's top-k (the paper reports counts
    /// out of 10).
    pub objectrank2_hits: usize,
    /// Relevant results in modified ObjectRank's top-k.
    pub objectrank_hits: usize,
}

/// Runs the Table 2 experiment: for each query, an oracle relevant set is
/// the top-`oracle_depth` of a tightly-converged ObjectRank2 run under the
/// ground-truth rates; both systems then run at the operational threshold
/// and their top-`k` hits are counted.
///
/// Note the simulation honesty caveat (EXPERIMENTS.md): the oracle shares
/// ObjectRank2's weighted base set, so the *shape* (OR2 ≥ OR, small gap)
/// is by construction; the paper's absolute numbers come from humans.
pub fn compare_rankers(
    system: &ObjectRankSystem,
    ground_truth: &TransferRates,
    queries: &[Query],
    k: usize,
    oracle_depth: usize,
) -> Vec<RankerComparison> {
    let transfer = system.transfer();
    let matrix = TransitionMatrix::new(transfer, ground_truth);
    let mut out = Vec::new();
    for query in queries {
        let qv = QueryVector::initial(query, system.index().analyzer());
        // Oracle: tight convergence.
        let mut tight = system.config().rank;
        tight.epsilon = 1e-10;
        tight.max_iterations = 1000;
        let Ok(oracle) = object_rank2(
            &matrix,
            system.index(),
            &qv,
            &system.config().okapi,
            &tight,
            None,
        ) else {
            continue;
        };
        let relevant: std::collections::HashSet<u32> = top_k(&oracle.scores, oracle_depth, 0.0)
            .into_iter()
            .map(|r| r.node)
            .collect();

        let or2 = object_rank2(
            &matrix,
            system.index(),
            &qv,
            &system.config().okapi,
            &system.config().rank,
            None,
        );
        let or1 = modified_object_rank(&matrix, system.index(), &qv, &system.config().rank);
        let hits = |scores: &[f64]| {
            top_k(scores, k, 0.0)
                .into_iter()
                .filter(|r| relevant.contains(&r.node))
                .count()
        };
        if let (Ok(a), Ok(b)) = (or2, or1) {
            out.push(RankerComparison {
                query: query.clone(),
                objectrank2_hits: hits(&a.scores),
                objectrank_hits: hits(&b.scores),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_core::SystemConfig;
    use orex_datagen::{generate_dblp, DblpConfig, TextConfig};

    fn system() -> (ObjectRankSystem, TransferRates, Vec<Query>) {
        let d = generate_dblp(
            "survey-test",
            &DblpConfig {
                papers: 600,
                authors: 250,
                conferences: 5,
                years_per_conference: 5,
                text: TextConfig {
                    vocab_size: 1200,
                    topics: 8,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        let gt = d.ground_truth.clone();
        let queries = vec![Query::parse("data"), Query::parse("query")];
        (
            ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default()),
            gt,
            queries,
        )
    }

    #[test]
    fn survey_produces_full_traces() {
        let (sys, gt, queries) = system();
        let cfg = SurveyConfig {
            iterations: 2,
            ..SurveyConfig::default()
        };
        let outcome = run_survey(&sys, &gt, &queries, &cfg);
        assert!(!outcome.traces.is_empty());
        assert_eq!(outcome.avg_precision.len(), 3);
        assert_eq!(outcome.avg_cosine.len(), 3);
        for t in &outcome.traces {
            assert_eq!(t.precision.len(), 3);
            assert_eq!(t.cosine.len(), 3);
            for &p in &t.precision {
                assert!((0.0..=1.0).contains(&p));
            }
            for &c in &t.cosine {
                assert!((0.0..=1.0 + 1e-9).contains(&c));
            }
        }
    }

    #[test]
    fn structure_training_improves_cosine() {
        let (sys, gt, queries) = system();
        let cfg = SurveyConfig {
            iterations: 3,
            reformulate: ReformulateParams::structure_only(0.5),
            ..SurveyConfig::default()
        };
        let outcome = run_survey(&sys, &gt, &queries, &cfg);
        let first = outcome.avg_cosine[0];
        let best = outcome
            .avg_cosine
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best > first,
            "training should raise cosine above the initial {first} (best {best})"
        );
    }

    #[test]
    fn ranker_comparison_reports_both_systems() {
        let (sys, gt, _) = system();
        let queries = vec![Query::parse("data query"), Query::parse("index")];
        let cmp = compare_rankers(&sys, &gt, &queries, 10, 15);
        assert!(!cmp.is_empty());
        for c in &cmp {
            assert!(c.objectrank2_hits <= 10);
            assert!(c.objectrank_hits <= 10);
        }
        // Aggregate shape: OR2 at least matches modified OR on average.
        let or2: usize = cmp.iter().map(|c| c.objectrank2_hits).sum();
        let or1: usize = cmp.iter().map(|c| c.objectrank_hits).sum();
        assert!(or2 >= or1, "OR2 {or2} vs OR {or1}");
    }

    #[test]
    fn unmatched_queries_are_skipped_not_fatal() {
        let (sys, gt, _) = system();
        let queries = vec![Query::parse("zzzzqqqq"), Query::parse("data")];
        let outcome = run_survey(&sys, &gt, &queries, &SurveyConfig::default());
        assert_eq!(outcome.traces.len(), 1);
    }
}
