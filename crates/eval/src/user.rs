//! Simulated users and the residual-collection protocol.
//!
//! The paper's quality numbers come from human surveys; reproducing them
//! requires a user model (DESIGN.md §2, substitution 3). A
//! [`SimulatedUser`] holds a per-query *ground-truth relevant set*,
//! defined as the top results of ObjectRank2 executed with the
//! ground-truth authority transfer rates — exactly the vector the paper's
//! training experiments treat as the target (the BHP04 rates, Section
//! 6.1.1). The user marks a shown result relevant iff it is in that set.
//!
//! [`ResidualCollection`] implements the evaluation protocol of
//! \[RL03, SB90\]: every object the user has seen *and marked relevant* is
//! removed from the collection before any query (initial or reformulated)
//! is evaluated, so reformulations cannot score points by re-retrieving
//! what the user already found.

use std::collections::HashSet;

/// A simulated survey subject for one query.
#[derive(Clone, Debug)]
pub struct SimulatedUser {
    relevant: HashSet<u32>,
}

impl SimulatedUser {
    /// Creates a user whose notion of relevance is the given set
    /// (typically the ground-truth top-`G` for the query).
    pub fn new(relevant: impl IntoIterator<Item = u32>) -> Self {
        Self {
            relevant: relevant.into_iter().collect(),
        }
    }

    /// The user's relevant set.
    pub fn relevant(&self) -> &HashSet<u32> {
        &self.relevant
    }

    /// Judges a single object.
    pub fn is_relevant(&self, node: u32) -> bool {
        self.relevant.contains(&node)
    }

    /// Given a shown result list, returns the objects the user would mark
    /// relevant (at most `max`), skipping objects in `already_marked`.
    pub fn select_feedback(
        &self,
        shown: &[u32],
        max: usize,
        already_marked: &HashSet<u32>,
    ) -> Vec<u32> {
        shown
            .iter()
            .copied()
            .filter(|n| self.relevant.contains(n) && !already_marked.contains(n))
            .take(max)
            .collect()
    }
}

/// Residual-collection bookkeeping for one query's feedback iterations.
#[derive(Clone, Debug, Default)]
pub struct ResidualCollection {
    removed: HashSet<u32>,
}

impl ResidualCollection {
    /// Fresh collection with nothing removed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks objects as seen-and-relevant: they leave the collection.
    pub fn remove_all(&mut self, nodes: &[u32]) {
        self.removed.extend(nodes.iter().copied());
    }

    /// Objects removed so far.
    pub fn removed(&self) -> &HashSet<u32> {
        &self.removed
    }

    /// Filters a ranked list down to the residual collection, preserving
    /// order.
    pub fn residual_ranking(&self, ranked: &[u32]) -> Vec<u32> {
        ranked
            .iter()
            .copied()
            .filter(|n| !self.removed.contains(n))
            .collect()
    }

    /// The residual relevant set (ground truth minus removed).
    pub fn residual_relevant(&self, relevant: &HashSet<u32>) -> HashSet<u32> {
        relevant
            .iter()
            .copied()
            .filter(|n| !self.removed.contains(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_judges_by_set() {
        let u = SimulatedUser::new([1, 2, 3]);
        assert!(u.is_relevant(2));
        assert!(!u.is_relevant(9));
    }

    #[test]
    fn feedback_selection_respects_max_and_marked() {
        let u = SimulatedUser::new([1, 2, 3, 4]);
        let marked: HashSet<u32> = [2].into_iter().collect();
        let picks = u.select_feedback(&[9, 2, 3, 1, 4], 2, &marked);
        assert_eq!(picks, vec![3, 1]);
    }

    #[test]
    fn feedback_empty_when_nothing_relevant_shown() {
        let u = SimulatedUser::new([1]);
        assert!(u.select_feedback(&[5, 6], 3, &HashSet::new()).is_empty());
    }

    #[test]
    fn residual_filters_ranking_and_relevant() {
        let mut rc = ResidualCollection::new();
        rc.remove_all(&[2, 4]);
        assert_eq!(rc.residual_ranking(&[1, 2, 3, 4, 5]), vec![1, 3, 5]);
        let relevant: HashSet<u32> = [1, 2, 3].into_iter().collect();
        let residual = rc.residual_relevant(&relevant);
        assert!(residual.contains(&1) && residual.contains(&3));
        assert!(!residual.contains(&2));
    }

    #[test]
    fn removal_accumulates() {
        let mut rc = ResidualCollection::new();
        rc.remove_all(&[1]);
        rc.remove_all(&[2]);
        assert_eq!(rc.removed().len(), 2);
    }
}
