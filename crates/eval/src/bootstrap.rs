//! Paired bootstrap significance testing.
//!
//! The paper compares reformulation settings by eyeballing mean-precision
//! curves; with simulated users we can afford proper inference. The
//! paired bootstrap resamples queries with replacement and asks how often
//! the mean per-query difference between two settings keeps its sign —
//! the standard test for paired IR evaluations.

/// Result of a paired bootstrap comparison of settings A and B.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapResult {
    /// Observed mean difference `mean(a_i - b_i)`.
    pub mean_diff: f64,
    /// Fraction of resamples where the mean difference is strictly
    /// positive (A better than B).
    pub p_a_better: f64,
    /// Two-sided significance estimate: `2 * min(p, 1 - p)` where `p`
    /// is `p_a_better` (0 when every resample agrees).
    pub p_value: f64,
    /// Bootstrap resamples drawn.
    pub resamples: usize,
}

/// Deterministic xorshift for resampling (no external RNG dependency in
/// a measurement utility).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Runs a paired bootstrap over per-query scores of two settings.
///
/// Returns `None` when the inputs are empty or of mismatched length.
pub fn paired_bootstrap(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    seed: u64,
) -> Option<BootstrapResult> {
    if a.is_empty() || a.len() != b.len() || resamples == 0 {
        return None;
    }
    let n = a.len();
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let mean_diff = diffs.iter().sum::<f64>() / n as f64;

    let mut state = seed.max(1);
    let mut positive = 0usize;
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            let idx = (xorshift(&mut state) % n as u64) as usize;
            sum += diffs[idx];
        }
        if sum > 0.0 {
            positive += 1;
        }
    }
    let p = positive as f64 / resamples as f64;
    Some(BootstrapResult {
        mean_diff,
        p_a_better: p,
        p_value: 2.0 * p.min(1.0 - p),
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_winner_is_significant() {
        let a = [0.9, 0.8, 0.85, 0.95, 0.9, 0.88, 0.92, 0.87];
        let b = [0.5, 0.4, 0.45, 0.55, 0.5, 0.48, 0.52, 0.47];
        let r = paired_bootstrap(&a, &b, 2000, 42).unwrap();
        assert!(r.mean_diff > 0.3);
        assert!(r.p_a_better > 0.99);
        assert!(r.p_value < 0.05);
    }

    #[test]
    fn identical_settings_are_insignificant() {
        let a = [0.5, 0.6, 0.7, 0.4, 0.55];
        // b = a with alternating tiny noise: mean diff ~0.
        let b = [0.51, 0.59, 0.71, 0.39, 0.55];
        let r = paired_bootstrap(&a, &b, 2000, 7).unwrap();
        assert!(r.mean_diff.abs() < 0.02);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn direction_matters() {
        let a = [0.2, 0.3, 0.25];
        let b = [0.8, 0.9, 0.85];
        let r = paired_bootstrap(&a, &b, 1000, 3).unwrap();
        assert!(r.mean_diff < 0.0);
        assert!(r.p_a_better < 0.01);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(paired_bootstrap(&[], &[], 100, 1).is_none());
        assert!(paired_bootstrap(&[1.0], &[1.0, 2.0], 100, 1).is_none());
        assert!(paired_bootstrap(&[1.0], &[0.5], 0, 1).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = [0.6, 0.7, 0.5, 0.65];
        let b = [0.55, 0.72, 0.48, 0.6];
        let r1 = paired_bootstrap(&a, &b, 500, 99).unwrap();
        let r2 = paired_bootstrap(&a, &b, 500, 99).unwrap();
        assert_eq!(r1, r2);
    }
}
