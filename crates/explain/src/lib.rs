//! # orex-explain — explaining authority flow query results
//!
//! Implements Section 4 of *"Explaining and Reformulating Authority Flow
//! Queries"*: the explaining subgraph `G_v^Q` of a target object — the
//! radius-limited part of the authority transfer data graph through which
//! base-set authority reaches the target — with per-edge authority flows
//! adjusted by the Equation 10 fixpoint so each edge is annotated with the
//! amount of authority that *eventually reaches the target*.
//!
//! The explanation is both a user-facing artifact (rendered by
//! [`to_dot`] / [`to_text`]) and the input structure of query
//! reformulation (Section 5, crate `orex-reformulate`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod delta;
mod paths;
mod render;
mod subgraph;
mod summary;

pub use delta::{delta_to_text, diff, EdgeChange, ExplanationDelta};
pub use paths::{top_paths, FlowPath};
pub use render::{to_dot, to_text};
pub use subgraph::{ExplainEdge, ExplainError, ExplainParams, Explanation};
pub use summary::{summarize, summary_to_text, MetaPath};
