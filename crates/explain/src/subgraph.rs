//! Explaining-subgraph construction and flow adjustment (Section 4).
//!
//! Given a converged ObjectRank2 execution and a *target object* `v`, the
//! explaining subgraph `G_v^Q` shows the user the paths along which
//! authority reached `v`. It is built in two stages (Figure 8):
//!
//! 1. **Construction**: a radius-`L` breadth-first search *backwards* from
//!    `v` over the authority transfer data graph collects every node and
//!    edge that can carry authority to `v` within `L` hops; a forward BFS
//!    from the base-set nodes then keeps only the part actually fed by the
//!    base set.
//! 2. **Flow adjustment**: the "original" edge flows
//!    `Flow_0(vi -> vj) = d · alpha(vi -> vj) · r^Q(vi)` (Equation 5)
//!    over-count, because part of each node's outgoing authority leaks to
//!    nodes *outside* the subgraph. The reduction factors `h(v_k)` satisfy
//!    the fixpoint (Equation 10)
//!
//!    ```text
//!    h(v_k) = Σ_{(v_k -> v_j) ∈ G_v^Q} h(v_j) · alpha(v_k -> v_j)
//!    ```
//!
//!    with `h(v) ≡ 1` pinned at the target (its incoming flows are what we
//!    are explaining, so they are *not* adjusted). The adjusted flow of an
//!    edge is `Flow(vi -> vk) = h(v_k) · Flow_0(vi -> vk)` (Equation 7).

use orex_authority::BaseSet;
use orex_graph::{NodeId, TransferGraph};
use std::collections::HashMap;
use std::fmt;

/// Parameters for explanation generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExplainParams {
    /// Radius `L` of the subgraph: maximum path length from any node to
    /// the target. The paper finds `L = 3` "adequate to effectively
    /// explain a result" (Section 4); longer paths are unintuitive and
    /// carry little authority.
    pub radius: usize,
    /// Damping factor `d` of the ObjectRank2 run being explained
    /// (Equation 5 scales every original flow by it).
    pub damping: f64,
    /// L∞ convergence threshold of the `h` fixpoint. The default matches
    /// the paper's operational convergence threshold (0.002, Section 6.2),
    /// which yields the 4–11 iteration counts of Table 3; tighten it when
    /// exact flows are needed.
    pub epsilon: f64,
    /// Iteration cap for the `h` fixpoint.
    pub max_iterations: usize,
}

impl Default for ExplainParams {
    fn default() -> Self {
        Self {
            radius: 3,
            damping: 0.85,
            epsilon: 0.002,
            max_iterations: 500,
        }
    }
}

/// Errors raised during explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// The target node id is outside the graph.
    TargetOutOfRange(NodeId),
    /// No authority reaches the target from the base set within the
    /// radius: there is nothing to explain (the target's score is pure
    /// random-jump mass or came from outside the radius).
    TargetUnreachable(NodeId),
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::TargetOutOfRange(v) => write!(f, "target {v} out of range"),
            ExplainError::TargetUnreachable(v) => {
                write!(
                    f,
                    "no base-set authority reaches target {v} within the radius"
                )
            }
        }
    }
}

impl std::error::Error for ExplainError {}

/// One edge of the explaining subgraph with its original and adjusted
/// authority flows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExplainEdge {
    /// Transfer-edge index in the underlying [`TransferGraph`].
    pub transfer_edge: usize,
    /// Source node (global id).
    pub source: NodeId,
    /// Target node (global id).
    pub target: NodeId,
    /// `alpha` of the edge (Equation 1).
    pub alpha: f64,
    /// `Flow_0` per Equation 5.
    pub original_flow: f64,
    /// `Flow` per Equation 7 — the authority that traverses this edge
    /// *and eventually reaches the target*.
    pub adjusted_flow: f64,
}

/// The explaining subgraph `G_v^Q` of a target object.
#[derive(Clone, Debug)]
pub struct Explanation {
    target: NodeId,
    /// Global node ids, in local-index order.
    node_ids: Vec<u32>,
    /// Global id -> local index.
    node_index: HashMap<u32, u32>,
    /// Per local node: BFS distance (edges) to the target.
    dist_to_target: Vec<u32>,
    /// Per local node: whether it is in the query base set.
    is_source: Vec<bool>,
    /// Per local node: reduction factor `h` (1.0 at the target).
    h: Vec<f64>,
    edges: Vec<ExplainEdge>,
    /// Per local node: indices into `edges` of outgoing edges.
    out_adj: Vec<Vec<u32>>,
    /// Per local node: indices into `edges` of incoming edges.
    in_adj: Vec<Vec<u32>>,
    /// Fixpoint iterations performed.
    iterations: usize,
    /// Whether the fixpoint met the threshold.
    converged: bool,
    /// Wall time of the construction stage.
    construction_time: std::time::Duration,
    /// Wall time of the flow-adjustment stage.
    adjustment_time: std::time::Duration,
}

impl Explanation {
    /// Builds the explaining subgraph for `target`.
    ///
    /// `weights` are the per-transfer-edge `alpha` values of the executed
    /// query; `scores` its converged ObjectRank2 vector `r^Q`; `base` its
    /// base set.
    pub fn explain(
        graph: &TransferGraph,
        weights: &[f64],
        scores: &[f64],
        base: &BaseSet,
        target: NodeId,
        params: &ExplainParams,
    ) -> Result<Self, ExplainError> {
        assert_eq!(weights.len(), graph.transfer_edge_count());
        assert_eq!(scores.len(), graph.node_count());
        if target.index() >= graph.node_count() {
            return Err(ExplainError::TargetOutOfRange(target));
        }
        let trace = orex_telemetry::tracer();
        let mut explain_span = trace.span("explain.run");
        if explain_span.is_recording() {
            explain_span.attr_u64("target", u64::from(target.raw()));
            explain_span.attr_u64("radius", params.radius as u64);
        }
        let mut construct_span = trace.span("explain.construct");
        let construction_start = std::time::Instant::now();

        // --- Construction stage, backward pass -------------------------
        // BFS from the target over *incoming* transfer edges, keeping only
        // edges with positive alpha. dist[u] = hops from u to target.
        // Dense per-node arrays (sentinel u32::MAX) instead of hash maps:
        // on the paper's full-scale graphs (Table 1) radius-3 subgraphs of
        // hub targets touch millions of edges, and hashing dominated the
        // construction stage.
        let n_global = graph.node_count();
        let mut dist = vec![u32::MAX; n_global];
        dist[target.index()] = 0;
        let mut frontier = vec![target.raw()];
        // Candidate edges: all positive-alpha edges (u -> w) discovered
        // while expanding w at depth < L, keyed by source for the forward
        // pass.
        let mut candidates: Vec<(u32, u32)> = Vec::new(); // (src, edge)
        let telemetry = orex_telemetry::global();
        let frontier_size = telemetry.histogram("explain.bfs.frontier_size");
        for depth in 0..params.radius as u32 {
            let mut next = Vec::new();
            for &w in &frontier {
                for (u, e) in graph.in_transfer(NodeId::new(w)) {
                    if weights[e] <= 0.0 {
                        continue;
                    }
                    candidates.push((u.raw(), e as u32));
                    if dist[u.index()] == u32::MAX {
                        dist[u.index()] = depth + 1;
                        next.push(u.raw());
                    }
                }
            }
            frontier = next;
            frontier_size.record(frontier.len() as f64);
            if frontier.is_empty() {
                break;
            }
        }

        // --- Construction stage, forward pass ---------------------------
        // Group candidate edges by source (sort once), then DFS from the
        // base-set nodes inside the backward cone.
        candidates.sort_unstable();
        let mut reachable = vec![false; n_global];
        let mut stack: Vec<u32> = base
            .nodes()
            .filter(|&n| dist[n as usize] != u32::MAX)
            .collect();
        for &n in &stack {
            reachable[n as usize] = true;
        }
        let mut kept_edges: Vec<usize> = Vec::new();
        while let Some(u) = stack.pop() {
            let start = candidates.partition_point(|&(s, _)| s < u);
            for &(s, e) in &candidates[start..] {
                if s != u {
                    break;
                }
                kept_edges.push(e as usize);
                let (_, w) = graph.edge_endpoints(e as usize);
                if !reachable[w.index()] {
                    reachable[w.index()] = true;
                    stack.push(w.raw());
                }
            }
        }
        kept_edges.sort_unstable();
        kept_edges.dedup();
        if !reachable[target.index()] {
            return Err(ExplainError::TargetUnreachable(target));
        }

        // --- Assemble local structure -----------------------------------
        // Keep exactly the nodes incident to kept edges, plus the target.
        let mut node_set: Vec<u32> = kept_edges
            .iter()
            .flat_map(|&e| {
                let (s, t) = graph.edge_endpoints(e);
                [s.raw(), t.raw()]
            })
            .chain(std::iter::once(target.raw()))
            .collect();
        node_set.sort_unstable();
        node_set.dedup();
        let node_index: HashMap<u32, u32> = node_set
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u32))
            .collect();
        let n_local = node_set.len();
        let dist_to_target: Vec<u32> = node_set.iter().map(|&n| dist[n as usize]).collect();
        let is_source: Vec<bool> = node_set.iter().map(|&n| base.contains(n)).collect();

        let d = params.damping;
        let mut edges: Vec<ExplainEdge> = kept_edges
            .iter()
            .map(|&e| {
                let (src, dst) = graph.edge_endpoints(e);
                let alpha = weights[e];
                ExplainEdge {
                    transfer_edge: e,
                    source: src,
                    target: dst,
                    alpha,
                    // Equation 5.
                    original_flow: d * alpha * scores[src.index()],
                    adjusted_flow: 0.0,
                }
            })
            .collect();
        let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n_local];
        let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n_local];
        // Local head index per edge: the fixpoint loop below runs per
        // edge per iteration, so hash lookups there would dominate on
        // dense subgraphs.
        let mut edge_head_local: Vec<u32> = Vec::with_capacity(edges.len());
        for (idx, e) in edges.iter().enumerate() {
            out_adj[node_index[&e.source.raw()] as usize].push(idx as u32);
            in_adj[node_index[&e.target.raw()] as usize].push(idx as u32);
            edge_head_local.push(node_index[&e.target.raw()]);
        }

        if construct_span.is_recording() {
            construct_span.attr_u64("subgraph_nodes", n_local as u64);
            construct_span.attr_u64("subgraph_edges", edges.len() as u64);
        }
        drop(construct_span);
        let construction_time = construction_start.elapsed();
        let adjustment_start = std::time::Instant::now();

        // --- Flow adjustment stage: the Equation 10 fixpoint ------------
        let target_local = node_index[&target.raw()] as usize;
        let mut h = vec![1.0f64; n_local];
        let mut h_new = vec![0.0f64; n_local];
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..params.max_iterations {
            iterations += 1;
            let mut round_span = trace.span("explain.fixpoint.round");
            let mut delta: f64 = 0.0;
            for k in 0..n_local {
                if k == target_local {
                    h_new[k] = 1.0;
                    continue;
                }
                let mut acc = 0.0;
                for &eidx in &out_adj[k] {
                    acc += h[edge_head_local[eidx as usize] as usize] * edges[eidx as usize].alpha;
                }
                h_new[k] = acc;
                delta = delta.max((acc - h[k]).abs());
            }
            if round_span.is_recording() {
                round_span.attr_f64("delta", delta);
            }
            drop(round_span);
            std::mem::swap(&mut h, &mut h_new);
            if delta < params.epsilon {
                converged = true;
                break;
            }
        }

        // Equation 7: adjust every edge by the reduction factor of its
        // *head*; edges into the target keep their original flow
        // (h(target) = 1).
        for (e, &head) in edges.iter_mut().zip(&edge_head_local) {
            e.adjusted_flow = h[head as usize] * e.original_flow;
        }

        telemetry.counter("explain.runs").incr();
        telemetry
            .counter("explain.fixpoint_rounds")
            .add(iterations as u64);
        telemetry
            .histogram("explain.subgraph_nodes")
            .record(n_local as f64);
        telemetry
            .histogram("explain.subgraph_edges")
            .record(edges.len() as f64);
        telemetry
            .histogram("explain.construction_us")
            .record(construction_time.as_secs_f64() * 1e6);
        let adjustment_time = adjustment_start.elapsed();
        telemetry
            .histogram("explain.adjustment_us")
            .record(adjustment_time.as_secs_f64() * 1e6);
        if explain_span.is_recording() {
            explain_span.attr_u64("fixpoint_rounds", iterations as u64);
            explain_span.attr_u64("converged", u64::from(converged));
        }
        let log = orex_telemetry::logger();
        if converged {
            log.debug("explain.adjust", "flow-adjustment fixpoint converged")
        } else {
            log.warn(
                "explain.adjust",
                "flow-adjustment fixpoint hit iteration cap",
            )
        }
        .field_u64("rounds", iterations as u64)
        .field_u64("nodes", n_local as u64)
        .field_u64("edges", edges.len() as u64)
        .field_u64("target", u64::from(target.raw()))
        .emit();

        Ok(Self {
            target,
            node_ids: node_set,
            node_index,
            dist_to_target,
            is_source,
            h,
            edges,
            out_adj,
            in_adj,
            iterations,
            converged,
            construction_time,
            adjustment_time,
        })
    }

    /// Wall time of the construction stage (backward + forward BFS) —
    /// the "Explaining Subgraph Creation" bar of Figures 14–17.
    #[inline]
    pub fn construction_time(&self) -> std::time::Duration {
        self.construction_time
    }

    /// Wall time of the flow-adjustment fixpoint — the "Explaining
    /// ObjectRank2 Execution" bar of Figures 14–17.
    #[inline]
    pub fn adjustment_time(&self) -> std::time::Duration {
        self.adjustment_time
    }

    /// The explained target object.
    #[inline]
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Number of subgraph nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of subgraph edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Fixpoint iterations performed ("Explaining ObjectRank2 iterations"
    /// in Table 3 of the paper).
    #[inline]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the fixpoint met the threshold.
    #[inline]
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The subgraph's nodes (global ids, ascending).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids.iter().map(|&n| NodeId::new(n))
    }

    /// True if the node is part of the subgraph.
    pub fn contains(&self, node: NodeId) -> bool {
        self.node_index.contains_key(&node.raw())
    }

    /// BFS distance (in edges) from `node` to the target, when present.
    pub fn distance(&self, node: NodeId) -> Option<usize> {
        self.node_index
            .get(&node.raw())
            .map(|&i| self.dist_to_target[i as usize] as usize)
    }

    /// True if `node` belongs to the query base set.
    pub fn is_source(&self, node: NodeId) -> bool {
        self.node_index
            .get(&node.raw())
            .is_some_and(|&i| self.is_source[i as usize])
    }

    /// The reduction factor `h` of a node, when present.
    pub fn reduction_factor(&self, node: NodeId) -> Option<f64> {
        self.node_index
            .get(&node.raw())
            .map(|&i| self.h[i as usize])
    }

    /// All edges with their flows.
    pub fn edges(&self) -> &[ExplainEdge] {
        &self.edges
    }

    /// Outgoing edges of `node` within the subgraph.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = &ExplainEdge> + '_ {
        self.node_index
            .get(&node.raw())
            .into_iter()
            .flat_map(move |&i| {
                self.out_adj[i as usize]
                    .iter()
                    .map(move |&e| &self.edges[e as usize])
            })
    }

    /// Incoming edges of `node` within the subgraph.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = &ExplainEdge> + '_ {
        self.node_index
            .get(&node.raw())
            .into_iter()
            .flat_map(move |&i| {
                self.in_adj[i as usize]
                    .iter()
                    .map(move |&e| &self.edges[e as usize])
            })
    }

    /// Sum of adjusted outgoing flows of a node — the `O(v_k)` of
    /// Equation 6b, which content-based reformulation uses as the node's
    /// contribution weight.
    pub fn outflow(&self, node: NodeId) -> f64 {
        self.out_edges(node).map(|e| e.adjusted_flow).sum()
    }

    /// Sum of adjusted incoming flows of a node (`I(v_k)`, Equation 6a).
    pub fn inflow(&self, node: NodeId) -> f64 {
        self.in_edges(node).map(|e| e.adjusted_flow).sum()
    }

    /// Total adjusted authority arriving at the target — what the
    /// explanation explains.
    pub fn target_inflow(&self) -> f64 {
        self.inflow(self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_authority::{power_iteration, RankParams, TransitionMatrix};
    use orex_graph::{DataGraph, DataGraphBuilder, SchemaGraph, TransferRates, TransferTypeId};

    /// Chain with a side branch:
    ///   s(0) -> a(1) -> t(2),  a(1) -> x(3)   [x outside any path to t]
    /// Base set = {s}. Target = t.
    fn chain_graph() -> (DataGraph, TransferRates) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let n: Vec<_> = (0..4).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        b.add_edge(n[0], n[1], r).unwrap();
        b.add_edge(n[1], n[2], r).unwrap();
        b.add_edge(n[1], n[3], r).unwrap();
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.8).unwrap();
        (g, rates)
    }

    fn run(
        g: &DataGraph,
        rates: &TransferRates,
        base_nodes: &[u32],
        target: u32,
        params: &ExplainParams,
    ) -> (
        TransferGraph,
        Vec<f64>,
        Vec<f64>,
        BaseSet,
        Result<Explanation, ExplainError>,
    ) {
        let tg = TransferGraph::build(g);
        let weights = tg.weights(rates);
        let m = TransitionMatrix::new(&tg, rates);
        let base = BaseSet::uniform(base_nodes.iter().copied()).unwrap();
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-14,
                max_iterations: 5000,
                damping: params.damping,
                threads: 1,
            },
            None,
        );
        let expl = Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            NodeId::new(target),
            params,
        );
        (tg, weights, rank.scores, base, expl)
    }

    #[test]
    fn construction_excludes_non_contributing_nodes() {
        let (g, rates) = chain_graph();
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 2, &ExplainParams::default());
        let expl = expl.unwrap();
        // x (node 3) carries no authority to t: excluded.
        assert!(expl.contains(NodeId::new(0)));
        assert!(expl.contains(NodeId::new(1)));
        assert!(expl.contains(NodeId::new(2)));
        assert!(!expl.contains(NodeId::new(3)));
        assert_eq!(expl.edge_count(), 2);
    }

    #[test]
    fn distances_measured_to_target() {
        let (g, rates) = chain_graph();
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 2, &ExplainParams::default());
        let expl = expl.unwrap();
        assert_eq!(expl.distance(NodeId::new(2)), Some(0));
        assert_eq!(expl.distance(NodeId::new(1)), Some(1));
        assert_eq!(expl.distance(NodeId::new(0)), Some(2));
        assert_eq!(expl.distance(NodeId::new(3)), None);
    }

    #[test]
    fn radius_limits_subgraph() {
        let (g, rates) = chain_graph();
        let params = ExplainParams {
            radius: 1,
            ..ExplainParams::default()
        };
        // With L = 1 only a -> t remains, but the base set {s} cannot
        // reach it: unreachable.
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 2, &params);
        assert!(matches!(expl, Err(ExplainError::TargetUnreachable(_))));
        // With the base set at a it works.
        let (_, _, _, _, expl) = run(&g, &rates, &[1], 2, &params);
        let expl = expl.unwrap();
        assert_eq!(expl.node_count(), 2);
        assert_eq!(expl.edge_count(), 1);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let (g, rates) = chain_graph();
        // Base set = {x}: no path x -> t exists with forward-only rates.
        let (_, _, _, _, expl) = run(&g, &rates, &[3], 2, &ExplainParams::default());
        assert!(matches!(expl, Err(ExplainError::TargetUnreachable(_))));
    }

    #[test]
    fn out_of_range_target() {
        let (g, rates) = chain_graph();
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 99, &ExplainParams::default());
        assert!(matches!(expl, Err(ExplainError::TargetOutOfRange(_))));
    }

    #[test]
    fn edges_into_target_keep_original_flow() {
        let (g, rates) = chain_graph();
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 2, &ExplainParams::default());
        let expl = expl.unwrap();
        for e in expl.in_edges(NodeId::new(2)) {
            assert!(
                (e.adjusted_flow - e.original_flow).abs() < 1e-12,
                "target inflow must be unadjusted"
            );
        }
        assert!((expl.reduction_factor(NodeId::new(2)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leak_reduces_upstream_flow() {
        let (g, rates) = chain_graph();
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 2, &ExplainParams::default());
        let expl = expl.unwrap();
        // a (node 1) splits its 0.8 rate between t and x: alpha = 0.4
        // each. Half of a's outgoing flow leaks to x, so h(a) = 0.4 and
        // the flow s -> a is scaled by 0.4.
        let h_a = expl.reduction_factor(NodeId::new(1)).unwrap();
        assert!((h_a - 0.4).abs() < 1e-9, "h(a) = {h_a}");
        let sa = expl
            .out_edges(NodeId::new(0))
            .next()
            .expect("edge s -> a present");
        assert!((sa.adjusted_flow - 0.4 * sa.original_flow).abs() < 1e-12);
    }

    #[test]
    fn equation5_defines_original_flows() {
        let (g, rates) = chain_graph();
        let params = ExplainParams::default();
        let (tg, weights, scores, _, expl) = run(&g, &rates, &[0], 2, &params);
        let expl = expl.unwrap();
        for e in expl.edges() {
            let expect = params.damping * weights[e.transfer_edge] * scores[e.source.index()];
            assert!((e.original_flow - expect).abs() < 1e-12);
        }
        let _ = tg;
    }

    #[test]
    fn flow_conservation_at_interior_nodes() {
        // At convergence, for every non-target node with h computed by
        // Equation 10, adjusted outflow O(v) = h(v) * d * r(v) * (sum of
        // alphas) ... the invariant the paper states is
        // I(v) / O(v) = r'(v)/..; we check the operational form:
        // O(v) = h(v) * (original outflow), since every out-edge of v is
        // scaled by its head's h and Eq. 10 makes the h-weighted alpha sum
        // equal h(v).
        let (g, rates) = chain_graph();
        let (_, _, scores, _, expl) = run(&g, &rates, &[0], 2, &ExplainParams::default());
        let expl = expl.unwrap();
        let d = 0.85;
        for node in [NodeId::new(0), NodeId::new(1)] {
            let h = expl.reduction_factor(node).unwrap();
            let outflow = expl.outflow(node);
            let expect = h * d * scores[node.index()];
            assert!(
                (outflow - expect).abs() < 1e-9,
                "node {node}: O = {outflow}, h*d*r = {expect}"
            );
        }
    }

    #[test]
    fn cycle_graph_converges() {
        // s -> a <-> b -> t: a cycle a <-> b must not break the fixpoint
        // (the naive single-pass proportional reduction fails here).
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let n: Vec<_> = (0..4).map(|_| b.add_node(p, vec![]).unwrap()).collect();
        b.add_edge(n[0], n[1], r).unwrap(); // s -> a
        b.add_edge(n[1], n[2], r).unwrap(); // a -> b
        b.add_edge(n[2], n[1], r).unwrap(); // b -> a
        b.add_edge(n[2], n[3], r).unwrap(); // b -> t
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.8).unwrap();
        let params = ExplainParams {
            epsilon: 1e-12,
            ..ExplainParams::default()
        };
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 3, &params);
        let expl = expl.unwrap();
        assert!(expl.converged());
        assert!(expl.iterations() > 1, "cycles need iteration");
        // h(b): outgoing to a (h_a * 0.4) + to t (1 * 0.4);
        // h(a): outgoing to b only: h_b * 0.8 -- solve:
        // h_a = 0.8 h_b; h_b = 0.4 h_a + 0.4 => h_b = 0.32 h_b + 0.4
        // => h_b = 0.4/0.68.
        let hb = expl.reduction_factor(NodeId::new(2)).unwrap();
        assert!((hb - 0.4 / 0.68).abs() < 1e-6, "h(b) = {hb}");
        let ha = expl.reduction_factor(NodeId::new(1)).unwrap();
        assert!((ha - 0.8 * hb).abs() < 1e-6);
    }

    #[test]
    fn target_inflow_positive_and_bounded() {
        let (g, rates) = chain_graph();
        let (_, _, scores, _, expl) = run(&g, &rates, &[0], 2, &ExplainParams::default());
        let expl = expl.unwrap();
        let inflow = expl.target_inflow();
        assert!(inflow > 0.0);
        // The target's score is inflow + (1-d)*s_target; here s_t = 0,
        // so inflow equals the target's score exactly.
        assert!((inflow - scores[2]).abs() < 1e-9);
    }

    #[test]
    fn source_marking() {
        let (g, rates) = chain_graph();
        let (_, _, _, _, expl) = run(&g, &rates, &[0], 2, &ExplainParams::default());
        let expl = expl.unwrap();
        assert!(expl.is_source(NodeId::new(0)));
        assert!(!expl.is_source(NodeId::new(1)));
    }
}
