//! Meta-path summaries of explanations.
//!
//! A large explaining subgraph overwhelms a user; its *meta-paths* — the
//! schema-level shapes of the flow paths, like
//! `Paper =cites=> Paper <=by= Author` — compress it into a handful of
//! rows ("most of this result's authority arrives via citations from
//! base-set papers; a little via shared authors"). This is also the most
//! interpretable way to see what structure-based reformulation is about
//! to boost, since Equation 13 aggregates flows by exactly these edge
//! types.

use crate::paths::{top_paths, FlowPath};
use crate::subgraph::Explanation;
use orex_graph::{DataGraph, Direction, TransferGraph};
use std::collections::HashMap;

/// One meta-path row of a summary.
#[derive(Clone, Debug)]
pub struct MetaPath {
    /// Schema-level signature, e.g. `"Paper =cites=> Paper <=by= Author"`.
    pub signature: String,
    /// Number of extracted paths with this shape.
    pub count: usize,
    /// Sum of the bottleneck flows of those paths.
    pub total_flow: f64,
    /// The strongest concrete path of this shape.
    pub example: FlowPath,
}

/// Summarizes the `k` strongest flow paths of an explanation by their
/// meta-path signature, strongest aggregate first.
pub fn summarize(
    explanation: &Explanation,
    transfer: &TransferGraph,
    data: &DataGraph,
    k: usize,
) -> Vec<MetaPath> {
    let mut groups: HashMap<String, MetaPath> = HashMap::new();
    for path in top_paths(explanation, k) {
        let Some(signature) = signature_of(&path, explanation, transfer, data) else {
            continue;
        };
        match groups.get_mut(&signature) {
            Some(group) => {
                group.count += 1;
                group.total_flow += path.bottleneck;
                if path.bottleneck > group.example.bottleneck {
                    group.example = path;
                }
            }
            None => {
                groups.insert(
                    signature.clone(),
                    MetaPath {
                        signature,
                        count: 1,
                        total_flow: path.bottleneck,
                        example: path,
                    },
                );
            }
        }
    }
    let mut out: Vec<MetaPath> = groups.into_values().collect();
    out.sort_by(|a, b| {
        b.total_flow
            .total_cmp(&a.total_flow)
            .then_with(|| a.signature.cmp(&b.signature))
    });
    out
}

/// Builds the schema-level signature of a concrete path. Forward hops
/// render as `=label=>`, backward hops as `<=label=`.
fn signature_of(
    path: &FlowPath,
    explanation: &Explanation,
    transfer: &TransferGraph,
    data: &DataGraph,
) -> Option<String> {
    let schema = data.schema();
    let mut sig = String::new();
    sig.push_str(schema.node_label(data.node_type(*path.nodes.first()?)));
    for pair in path.nodes.windows(2) {
        // The strongest edge between the pair defines the hop's type.
        let edge = explanation
            .out_edges(pair[0])
            .filter(|e| e.target == pair[1])
            .max_by(|a, b| a.adjusted_flow.total_cmp(&b.adjusted_flow))?;
        let tt = transfer.edge_transfer_type(edge.transfer_edge);
        let label = &schema.edge_type(tt.edge_type).label;
        match tt.direction {
            Direction::Forward => {
                sig.push_str(" =");
                sig.push_str(label);
                sig.push_str("=> ");
            }
            Direction::Backward => {
                sig.push_str(" <=");
                sig.push_str(label);
                sig.push_str("= ");
            }
        }
        sig.push_str(schema.node_label(data.node_type(pair[1])));
    }
    Some(sig)
}

/// Renders a summary as aligned plain text.
pub fn summary_to_text(summary: &[MetaPath]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for m in summary {
        let _ = writeln!(
            out,
            "{:>3}x  {:<60}  Σ bottleneck {:.3e}",
            m.count, m.signature, m.total_flow
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::ExplainParams;
    use orex_authority::{power_iteration, BaseSet, RankParams, TransitionMatrix};
    use orex_graph::{DataGraphBuilder, NodeId, SchemaGraph, TransferRates, TransferTypeId};

    /// Paper s cites paper t; author a wrote both s and t (so flow also
    /// arrives via the author backward hop).
    fn setup() -> (DataGraph, TransferGraph, Explanation) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("Paper").unwrap();
        let au = schema.add_node_type("Author").unwrap();
        let cites = schema.add_edge_type(p, p, "cites").unwrap();
        let by = schema.add_edge_type(p, au, "by").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let s = b.add_node_with(p, &[("Title", "olap s")]).unwrap();
        let t = b.add_node_with(p, &[("Title", "target t")]).unwrap();
        let a = b.add_node_with(au, &[("Name", "author a")]).unwrap();
        b.add_edge(s, t, cites).unwrap();
        b.add_edge(s, a, by).unwrap();
        b.add_edge(t, a, by).unwrap();
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(cites), 0.5).unwrap();
        rates.set(TransferTypeId::forward(by), 0.2).unwrap();
        rates.set(TransferTypeId::backward(by), 0.2).unwrap();
        let tg = TransferGraph::build(&g);
        let weights = tg.weights(&rates);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-13,
                max_iterations: 5000,
                threads: 1,
                ..RankParams::default()
            },
            None,
        );
        let expl = Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            NodeId::new(1),
            &ExplainParams::default(),
        )
        .unwrap();
        (g, tg, expl)
    }

    #[test]
    fn summary_groups_by_shape() {
        let (g, tg, expl) = setup();
        let summary = summarize(&expl, &tg, &g, 5);
        assert!(!summary.is_empty());
        let sigs: Vec<&str> = summary.iter().map(|m| m.signature.as_str()).collect();
        assert!(
            sigs.contains(&"Paper =cites=> Paper"),
            "direct citation shape expected in {sigs:?}"
        );
        assert!(
            sigs.contains(&"Paper =by=> Author <=by= Paper"),
            "shared-author shape expected in {sigs:?}"
        );
    }

    #[test]
    fn strongest_shape_leads() {
        let (g, tg, expl) = setup();
        let summary = summarize(&expl, &tg, &g, 5);
        // cites at 0.5 beats the two-hop 0.2 * 0.2 author route.
        assert_eq!(summary[0].signature, "Paper =cites=> Paper");
        for w in summary.windows(2) {
            assert!(w[0].total_flow >= w[1].total_flow);
        }
    }

    #[test]
    fn example_paths_match_their_signature_length() {
        let (g, tg, expl) = setup();
        for m in summarize(&expl, &tg, &g, 5) {
            // A signature with n hops renders n arrows.
            let arrows = m.signature.matches("=>").count() + m.signature.matches("<=").count();
            assert_eq!(arrows, m.example.len());
            assert!(m.count >= 1);
        }
    }

    #[test]
    fn text_rendering() {
        let (g, tg, expl) = setup();
        let text = summary_to_text(&summarize(&expl, &tg, &g, 5));
        assert!(text.contains("Paper =cites=> Paper"));
        assert!(text.contains('x'));
    }
}
