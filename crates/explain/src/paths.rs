//! Top authority-flow path extraction.
//!
//! Explaining subgraphs can be large; the paper's online demo "only
//! keep[s] the paths with high authority flow" for display. We extract the
//! `k` *widest* base-set-to-target paths: a path's strength is the minimum
//! adjusted flow along it (the bottleneck), which matches the intuition
//! that a chain of strong edges with one negligible link explains little.
//!
//! The widest path is found by the max-bottleneck variant of Dijkstra;
//! successive paths are found by masking the previous path's bottleneck
//! edge (a standard diverse-k heuristic — exact k-widest enumeration is
//! not needed for display purposes).

use crate::subgraph::Explanation;
use orex_graph::NodeId;
use std::collections::{HashMap, HashSet};

/// One extracted flow path.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowPath {
    /// Node sequence from a base-set node to the target.
    pub nodes: Vec<NodeId>,
    /// Bottleneck (minimum adjusted flow) along the path.
    pub bottleneck: f64,
    /// Sum of adjusted flows along the path.
    pub total_flow: f64,
}

impl FlowPath {
    /// Path length in edges.
    pub fn len(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// True for degenerate single-node paths (target in base set).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// Extracts up to `k` high-flow paths from the explanation's base-set
/// nodes to its target, strongest first.
pub fn top_paths(explanation: &Explanation, k: usize) -> Vec<FlowPath> {
    let mut masked: HashSet<(u32, u32)> = HashSet::new();
    let mut out = Vec::new();
    for _ in 0..k {
        match widest_path(explanation, &masked) {
            Some(path) => {
                // Mask the bottleneck edge so the next path diverges.
                if let Some(b) = bottleneck_edge(explanation, &path) {
                    masked.insert(b);
                } else {
                    out.push(path);
                    break;
                }
                out.push(path);
            }
            None => break,
        }
    }
    out
}

fn bottleneck_edge(explanation: &Explanation, path: &FlowPath) -> Option<(u32, u32)> {
    let mut best: Option<((u32, u32), f64)> = None;
    for pair in path.nodes.windows(2) {
        let flow = edge_flow(explanation, pair[0], pair[1])?;
        if best.is_none_or(|(_, f)| flow < f) {
            best = Some(((pair[0].raw(), pair[1].raw()), flow));
        }
    }
    best.map(|(e, _)| e)
}

fn edge_flow(explanation: &Explanation, src: NodeId, dst: NodeId) -> Option<f64> {
    explanation
        .out_edges(src)
        .filter(|e| e.target == dst)
        .map(|e| e.adjusted_flow)
        .reduce(f64::max)
}

/// Max-bottleneck Dijkstra from all base-set nodes to the target,
/// ignoring `masked` edges.
fn widest_path(explanation: &Explanation, masked: &HashSet<(u32, u32)>) -> Option<FlowPath> {
    // width[n] = best bottleneck achievable from any source to n.
    let mut width: HashMap<u32, f64> = HashMap::new();
    let mut parent: HashMap<u32, u32> = HashMap::new();
    // Local helper type for total-ordered f64 keys in the heap.
    #[derive(PartialEq)]
    struct Width(f64);
    impl Eq for Width {}
    impl Ord for Width {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
    impl PartialOrd for Width {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: std::collections::BinaryHeap<(Width, u32)> = Default::default();
    let target = explanation.target().raw();
    for node in explanation.nodes() {
        // The target may itself be in the base set; it is still the path
        // *destination*, never a path start (a zero-length path explains
        // nothing), so it is not seeded.
        if explanation.is_source(node) && node.raw() != target {
            width.insert(node.raw(), f64::INFINITY);
            heap.push((Width(f64::INFINITY), node.raw()));
        }
    }
    while let Some((Width(w), u)) = heap.pop() {
        if width.get(&u).copied().unwrap_or(0.0) > w {
            continue; // stale entry
        }
        if u == target && w.is_finite() {
            // Reconstruct.
            let mut nodes = vec![NodeId::new(u)];
            let mut cur = u;
            while let Some(&p) = parent.get(&cur) {
                nodes.push(NodeId::new(p));
                cur = p;
            }
            nodes.reverse();
            let mut total = 0.0;
            for pair in nodes.windows(2) {
                total += edge_flow(explanation, pair[0], pair[1]).unwrap_or(0.0);
            }
            return Some(FlowPath {
                nodes,
                bottleneck: w,
                total_flow: total,
            });
        }
        for e in explanation.out_edges(NodeId::new(u)) {
            if masked.contains(&(e.source.raw(), e.target.raw())) {
                continue;
            }
            if e.adjusted_flow <= 0.0 {
                continue;
            }
            let cand = w.min(e.adjusted_flow);
            let entry = width.entry(e.target.raw()).or_insert(0.0);
            if cand > *entry {
                *entry = cand;
                parent.insert(e.target.raw(), u);
                heap.push((Width(cand), e.target.raw()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::{ExplainParams, Explanation};
    use orex_authority::{power_iteration, BaseSet, RankParams, TransitionMatrix};
    use orex_graph::{DataGraphBuilder, SchemaGraph, TransferGraph, TransferRates, TransferTypeId};

    /// Diamond: s -> a -> t and s -> b -> t, with a-branch carrying more
    /// flow (a also feeds t via a second parallel structure is avoided;
    /// instead b leaks half its flow to x).
    fn diamond() -> (TransferGraph, Vec<f64>, Vec<f64>, BaseSet) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut bld = DataGraphBuilder::new(schema);
        let n: Vec<_> = (0..6).map(|_| bld.add_node(p, vec![]).unwrap()).collect();
        bld.add_edge(n[0], n[1], r).unwrap(); // s -> a
        bld.add_edge(n[0], n[2], r).unwrap(); // s -> b
        bld.add_edge(n[1], n[3], r).unwrap(); // a -> t
        bld.add_edge(n[2], n[3], r).unwrap(); // b -> t
        bld.add_edge(n[2], n[4], r).unwrap(); // b -> x (leak)
        bld.add_edge(n[5], n[3], r).unwrap(); // y -> t (y not reached)
        let g = bld.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.8).unwrap();
        let tg = TransferGraph::build(&g);
        let weights = tg.weights(&rates);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-14,
                max_iterations: 5000,
                threads: 1,
                ..RankParams::default()
            },
            None,
        );
        (tg, weights, rank.scores, base)
    }

    fn explanation() -> Explanation {
        let (tg, weights, scores, base) = diamond();
        Explanation::explain(
            &tg,
            &weights,
            &scores,
            &base,
            orex_graph::NodeId::new(3),
            &ExplainParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn best_path_goes_through_stronger_branch() {
        let expl = explanation();
        let paths = top_paths(&expl, 1);
        assert_eq!(paths.len(), 1);
        let ids: Vec<u32> = paths[0].nodes.iter().map(|n| n.raw()).collect();
        // a -> t carries 0.4 * r(a) vs b -> t carrying 0.4 * r(b) with
        // r(a) = r(b); but the s -> a edge is adjusted by h(a) = 0.4 and
        // s -> b by h(b) = 0.4 too (b splits to t and x).
        // Bottlenecks differ because alpha(s->a)=alpha(s->b)=0.4, and
        // a sends everything to t while b halves. The a-branch wins.
        assert_eq!(ids, vec![0, 1, 3]);
        assert!(paths[0].bottleneck > 0.0);
    }

    #[test]
    fn second_path_diverges() {
        let expl = explanation();
        let paths = top_paths(&expl, 3);
        assert!(paths.len() >= 2, "expected two distinct paths");
        let ids1: Vec<u32> = paths[0].nodes.iter().map(|n| n.raw()).collect();
        let ids2: Vec<u32> = paths[1].nodes.iter().map(|n| n.raw()).collect();
        assert_ne!(ids1, ids2);
        assert_eq!(ids2, vec![0, 2, 3]);
        assert!(paths[0].bottleneck >= paths[1].bottleneck);
    }

    #[test]
    fn paths_start_at_source_end_at_target() {
        let expl = explanation();
        for p in top_paths(&expl, 5) {
            assert!(expl.is_source(p.nodes[0]));
            assert_eq!(*p.nodes.last().unwrap(), expl.target());
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn k_zero_returns_nothing() {
        let expl = explanation();
        assert!(top_paths(&expl, 0).is_empty());
    }

    #[test]
    fn target_in_base_set_still_yields_paths() {
        // Regression: when the target itself matches the query (is a
        // base-set node), paths from the *other* sources must still be
        // found — a zero-length self-path used to block them.
        let (tg, weights, _, _) = diamond();
        let base = BaseSet::uniform([0, 3]).unwrap(); // target 3 in base set
        let m = TransitionMatrix::new(&tg, &tg_rates());
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-14,
                max_iterations: 5000,
                threads: 1,
                ..RankParams::default()
            },
            None,
        );
        let expl = Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            orex_graph::NodeId::new(3),
            &ExplainParams::default(),
        )
        .unwrap();
        let paths = top_paths(&expl, 3);
        assert!(!paths.is_empty(), "paths from node 0 must be found");
        assert!(!paths[0].is_empty());
        assert_eq!(*paths[0].nodes.last().unwrap(), expl.target());
    }

    fn tg_rates() -> orex_graph::TransferRates {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut rates = TransferRates::zero(&schema);
        rates.set(TransferTypeId::forward(r), 0.8).unwrap();
        rates
    }

    #[test]
    fn total_flow_is_sum_of_edges() {
        let expl = explanation();
        let p = &top_paths(&expl, 1)[0];
        let mut sum = 0.0;
        for pair in p.nodes.windows(2) {
            sum += expl
                .out_edges(pair[0])
                .filter(|e| e.target == pair[1])
                .map(|e| e.adjusted_flow)
                .fold(0.0, f64::max);
        }
        assert!((p.total_flow - sum).abs() < 1e-12);
    }
}
