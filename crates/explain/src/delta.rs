//! Explanation deltas: what a reformulation changed.
//!
//! The paper explains *results*; a natural extension (transparency of the
//! feedback loop itself) is explaining the *reformulation*: after a
//! feedback round adjusts the rates and the query, how did the authority
//! arriving at an object change, which paths gained, which disappeared?
//! [`diff`] compares two explanations of the same target — typically
//! before and after one reformulation round — and reports the node and
//! flow-level changes, strongest first.

use crate::subgraph::Explanation;
use orex_graph::NodeId;
use std::collections::HashMap;

/// One edge whose adjusted flow changed between two explanations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeChange {
    /// Edge source.
    pub source: NodeId,
    /// Edge target.
    pub target: NodeId,
    /// Adjusted flow in the "before" explanation (0 when absent).
    pub before: f64,
    /// Adjusted flow in the "after" explanation (0 when absent).
    pub after: f64,
}

impl EdgeChange {
    /// Signed flow change.
    pub fn delta(&self) -> f64 {
        self.after - self.before
    }
}

/// The difference between two explanations of the same target.
#[derive(Clone, Debug)]
pub struct ExplanationDelta {
    /// The shared target object.
    pub target: NodeId,
    /// Total explained inflow before.
    pub inflow_before: f64,
    /// Total explained inflow after.
    pub inflow_after: f64,
    /// Nodes only present after the reformulation.
    pub added_nodes: Vec<NodeId>,
    /// Nodes only present before the reformulation.
    pub removed_nodes: Vec<NodeId>,
    /// Edge flow changes, sorted by `|delta|` descending (capped by the
    /// `top` argument of [`diff`]).
    pub edge_changes: Vec<EdgeChange>,
}

/// Compares two explanations of the same target.
///
/// # Errors
/// Returns an error message when the targets differ.
pub fn diff(
    before: &Explanation,
    after: &Explanation,
    top: usize,
) -> Result<ExplanationDelta, String> {
    if before.target() != after.target() {
        return Err(format!(
            "cannot diff explanations of different targets ({} vs {})",
            before.target(),
            after.target()
        ));
    }
    let added_nodes: Vec<NodeId> = after.nodes().filter(|&n| !before.contains(n)).collect();
    let removed_nodes: Vec<NodeId> = before.nodes().filter(|&n| !after.contains(n)).collect();

    // Merge flows by (source, target), summing parallel edges.
    let mut flows: HashMap<(u32, u32), (f64, f64)> = HashMap::new();
    for e in before.edges() {
        flows
            .entry((e.source.raw(), e.target.raw()))
            .or_insert((0.0, 0.0))
            .0 += e.adjusted_flow;
    }
    for e in after.edges() {
        flows
            .entry((e.source.raw(), e.target.raw()))
            .or_insert((0.0, 0.0))
            .1 += e.adjusted_flow;
    }
    let mut edge_changes: Vec<EdgeChange> = flows
        .into_iter()
        .filter(|&(_, (b, a))| (a - b).abs() > f64::EPSILON)
        .map(|((s, t), (b, a))| EdgeChange {
            source: NodeId::new(s),
            target: NodeId::new(t),
            before: b,
            after: a,
        })
        .collect();
    edge_changes.sort_by(|x, y| {
        y.delta()
            .abs()
            .total_cmp(&x.delta().abs())
            .then_with(|| (x.source, x.target).cmp(&(y.source, y.target)))
    });
    edge_changes.truncate(top);

    Ok(ExplanationDelta {
        target: before.target(),
        inflow_before: before.target_inflow(),
        inflow_after: after.target_inflow(),
        added_nodes,
        removed_nodes,
        edge_changes,
    })
}

/// Renders a delta as plain text with display names from the data graph.
pub fn delta_to_text(delta: &ExplanationDelta, data: &orex_graph::DataGraph) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "Reformulation effect on \"{}\":\n  explained inflow: {:.4e} -> {:.4e} ({:+.1}%)\n",
        data.node_display(delta.target),
        delta.inflow_before,
        delta.inflow_after,
        if delta.inflow_before > 0.0 {
            (delta.inflow_after / delta.inflow_before - 1.0) * 100.0
        } else {
            f64::INFINITY
        }
    );
    if !delta.added_nodes.is_empty() {
        let _ = writeln!(
            out,
            "  {} nodes joined the explanation",
            delta.added_nodes.len()
        );
    }
    if !delta.removed_nodes.is_empty() {
        let _ = writeln!(
            out,
            "  {} nodes left the explanation",
            delta.removed_nodes.len()
        );
    }
    for c in &delta.edge_changes {
        let _ = writeln!(
            out,
            "  {} -> {}: {:.3e} -> {:.3e} ({:+.3e})",
            data.node_display(c.source),
            data.node_display(c.target),
            c.before,
            c.after,
            c.delta()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::ExplainParams;
    use orex_authority::{power_iteration, BaseSet, RankParams, TransitionMatrix};
    use orex_graph::{DataGraphBuilder, SchemaGraph, TransferGraph, TransferRates, TransferTypeId};

    /// s -> a -> t with rates we vary between the two explanations.
    fn explain_with_rate(rate: f64) -> (orex_graph::DataGraph, Explanation) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let s = b.add_node_with(p, &[("Title", "s")]).unwrap();
        let a = b.add_node_with(p, &[("Title", "a")]).unwrap();
        let t = b.add_node_with(p, &[("Title", "t")]).unwrap();
        b.add_edge(s, a, r).unwrap();
        b.add_edge(a, t, r).unwrap();
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), rate).unwrap();
        let tg = TransferGraph::build(&g);
        let weights = tg.weights(&rates);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-14,
                max_iterations: 5000,
                threads: 1,
                ..RankParams::default()
            },
            None,
        );
        let expl = Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            NodeId::new(2),
            &ExplainParams::default(),
        )
        .unwrap();
        (g, expl)
    }

    #[test]
    fn diff_reports_flow_growth() {
        let (g, weak) = explain_with_rate(0.3);
        let (_, strong) = explain_with_rate(0.8);
        let delta = diff(&weak, &strong, 10).unwrap();
        assert!(delta.inflow_after > delta.inflow_before);
        assert!(!delta.edge_changes.is_empty());
        for c in &delta.edge_changes {
            assert!(c.delta() > 0.0, "all flows grow with the rate");
        }
        let text = delta_to_text(&delta, &g);
        assert!(text.contains("Reformulation effect"));
        assert!(text.contains("->"));
    }

    #[test]
    fn diff_same_explanation_is_empty() {
        let (_, e) = explain_with_rate(0.5);
        let delta = diff(&e, &e, 10).unwrap();
        assert!(delta.edge_changes.is_empty());
        assert!(delta.added_nodes.is_empty());
        assert!(delta.removed_nodes.is_empty());
        assert_eq!(delta.inflow_before, delta.inflow_after);
    }

    #[test]
    fn diff_rejects_different_targets() {
        let (_, e1) = explain_with_rate(0.5);
        // Build an explanation of a different node on a fresh graph.
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("P").unwrap();
        let r = schema.add_edge_type(p, p, "r").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let s = b.add_node(p, vec![]).unwrap();
        let t = b.add_node(p, vec![]).unwrap();
        b.add_edge(s, t, r).unwrap();
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.5).unwrap();
        let tg = TransferGraph::build(&g);
        let weights = tg.weights(&rates);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let rank = power_iteration(&m, &base, &RankParams::default(), None);
        let e2 = Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            NodeId::new(1),
            &ExplainParams::default(),
        )
        .unwrap();
        assert!(diff(&e1, &e2, 10).is_err());
    }

    #[test]
    fn top_caps_changes() {
        let (_, weak) = explain_with_rate(0.3);
        let (_, strong) = explain_with_rate(0.8);
        let delta = diff(&weak, &strong, 1).unwrap();
        assert_eq!(delta.edge_changes.len(), 1);
    }
}
