//! Rendering of explaining subgraphs for display to the user.
//!
//! The whole point of Section 4 is showing the user *why* a result scored
//! high (e.g. Figure 9 of the paper). Two renderers are provided: a
//! Graphviz DOT export mirroring the paper's figures, and a plain-text
//! summary listing the strongest flow paths.

use crate::paths::top_paths;
use crate::subgraph::Explanation;
use orex_graph::{escape_label, DataGraph};
use std::fmt::Write as _;

/// Renders the explaining subgraph as Graphviz DOT. Node labels come from
/// the data graph; every edge is annotated with its adjusted authority
/// flow (the quantity of Figure 9). The target is drawn with a double
/// border, base-set sources shaded.
pub fn to_dot(explanation: &Explanation, data: &DataGraph) -> String {
    let mut out = String::from("digraph explanation {\n  rankdir=LR;\n");
    for node in explanation.nodes() {
        let mut attrs = format!(
            "label=\"{}: {}\"",
            escape_label(data.node_label(node)),
            escape_label(&data.node_display(node))
        );
        if node == explanation.target() {
            attrs.push_str(", peripheries=2");
        }
        if explanation.is_source(node) {
            attrs.push_str(", style=filled, fillcolor=lightgrey");
        }
        let _ = writeln!(out, "  {} [{}];", node.index(), attrs);
    }
    for e in explanation.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{:.3e}\"];",
            e.source.index(),
            e.target.index(),
            e.adjusted_flow
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a plain-text explanation: the target, its total explained
/// inflow, and the `max_paths` strongest flow paths with per-edge flows.
pub fn to_text(explanation: &Explanation, data: &DataGraph, max_paths: usize) -> String {
    let target = explanation.target();
    let mut out = format!(
        "Why \"{}\" ({})?\n  total explained authority inflow: {:.4e}\n  subgraph: {} nodes, {} edges\n",
        data.node_display(target),
        data.node_label(target),
        explanation.target_inflow(),
        explanation.node_count(),
        explanation.edge_count(),
    );
    let paths = top_paths(explanation, max_paths);
    if paths.is_empty() {
        out.push_str("  (no flow paths found)\n");
        return out;
    }
    for (i, p) in paths.iter().enumerate() {
        let _ = writeln!(out, "  path {} (bottleneck {:.3e}):", i + 1, p.bottleneck);
        for pair in p.nodes.windows(2) {
            let flow = explanation
                .out_edges(pair[0])
                .filter(|e| e.target == pair[1])
                .map(|e| e.adjusted_flow)
                .fold(0.0, f64::max);
            let _ = writeln!(
                out,
                "    {} --[{:.3e}]--> {}",
                data.node_display(pair[0]),
                flow,
                data.node_display(pair[1]),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::ExplainParams;
    use orex_authority::{power_iteration, BaseSet, RankParams, TransitionMatrix};
    use orex_graph::{
        DataGraphBuilder, NodeId, SchemaGraph, TransferGraph, TransferRates, TransferTypeId,
    };

    fn setup() -> (DataGraph, Explanation) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("Paper").unwrap();
        let r = schema.add_edge_type(p, p, "cites").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let s = b.add_node_with(p, &[("Title", "Source Paper")]).unwrap();
        let t = b
            .add_node_with(p, &[("Title", "Target \"Paper\"")])
            .unwrap();
        b.add_edge(s, t, r).unwrap();
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.7).unwrap();
        let tg = TransferGraph::build(&g);
        let weights = tg.weights(&rates);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let rank = power_iteration(&m, &base, &RankParams::default(), None);
        let expl = Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            NodeId::new(1),
            &ExplainParams::default(),
        )
        .unwrap();
        (g, expl)
    }

    use orex_graph::DataGraph;

    #[test]
    fn dot_marks_target_and_source() {
        let (g, expl) = setup();
        let dot = to_dot(&expl, &g);
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("fillcolor=lightgrey"));
        assert!(dot.contains("0 -> 1"));
        // Quotes in titles escaped.
        assert!(dot.contains("Target \\\"Paper\\\""));
    }

    #[test]
    fn text_lists_paths() {
        let (g, expl) = setup();
        let text = to_text(&expl, &g, 3);
        assert!(text.contains("Why"));
        assert!(text.contains("Source Paper"));
        assert!(text.contains("path 1"));
        assert!(text.contains("-->"));
    }
}
