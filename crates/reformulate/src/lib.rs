//! # orex-reformulate — relevance-feedback reformulation of authority
//! flow queries
//!
//! Implements Section 5 of *"Explaining and Reformulating Authority Flow
//! Queries"*: given the explaining subgraphs of user-selected feedback
//! objects, the query is reformulated along two axes —
//!
//! - **content** (Section 5.1): query expansion with terms from the
//!   subgraph nodes, weighted by the authority they transfer to the
//!   feedback object and decayed with distance (Equations 11–12);
//! - **structure** (Section 5.2): the authority transfer rates of edge
//!   types that carried flow to the feedback object are boosted
//!   (Equation 13) and renormalized — this is the component that *learns*
//!   the authority transfer rates a domain expert previously had to set
//!   by hand, and the survey's overall winner;
//! - **multi-object feedback** (Section 5.3): raw term weights and
//!   per-type flow sums are aggregated by summation (Equations 14–15)
//!   before normalization.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod content;
mod driver;
mod structure;

pub use content::{
    apply_expansion, content_reformulate, expansion_term_weights, select_and_normalize,
    ContentParams,
};
pub use driver::{reformulate, ReformulateParams, Reformulation};
pub use structure::{
    edge_type_flows, edge_type_flows_pruned, structure_reformulate, StructureParams,
};
