//! Content-based reformulation (Section 5.1, Equations 11–12).
//!
//! Traditional relevance-feedback expansion adds terms *from the feedback
//! document*. Authority-flow ranking extends the idea: terms from every
//! node of the explaining subgraph are candidates, weighted by the
//! authority that node transfers to the feedback object and decayed by its
//! distance from it:
//!
//! ```text
//! w'(t) = Σ_{v_k ∈ G_v^Q, t ∈ v_k}  C_d^{D(v_k)} · outflow(v_k)      (Eq. 11)
//! ```
//!
//! where `outflow(v_k)` is the node's adjusted outgoing flow in the
//! subgraph, and the feedback object itself — whose outflow is undefined
//! in `G_v^Q` — contributes `d · inflow(v)` instead. The top-`z` terms are
//! normalized so their maximum equals the mean weight of the current query
//! vector, scaled by the expansion factor `C_e`, and added to the query
//! (Equation 12).

use orex_explain::Explanation;
use orex_ir::{InvertedIndex, QueryVector};
use std::collections::HashMap;

/// Parameters of content-based reformulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContentParams {
    /// Decay factor `C_d` (typically 0.5, in the spirit of XRANK).
    pub decay: f64,
    /// Expansion factor `C_e ∈ [0, 1]` scaling new term weights
    /// (typically 0.5; 0 disables content reformulation).
    pub expansion_factor: f64,
    /// Number of top terms `z` to add.
    pub top_terms: usize,
    /// Damping factor `d` of the explained query — used for the feedback
    /// object's own contribution (`d · inflow`).
    pub damping: f64,
}

impl Default for ContentParams {
    fn default() -> Self {
        Self {
            decay: 0.5,
            expansion_factor: 0.5,
            top_terms: 5,
            damping: 0.85,
        }
    }
}

/// Computes the raw expansion-term weights `w'(t)` of Equation 11 for one
/// explaining subgraph. Returns `(term, weight)` pairs in descending
/// weight order (ties broken alphabetically), *before* top-`z` selection
/// and normalization — multi-feedback aggregation (Equation 14) sums these
/// raw weights across feedback objects first.
pub fn expansion_term_weights(
    explanation: &Explanation,
    index: &InvertedIndex,
    params: &ContentParams,
) -> Vec<(String, f64)> {
    let mut weights: HashMap<&str, f64> = HashMap::new();
    let target = explanation.target();
    for node in explanation.nodes() {
        let node_weight = if node == target {
            // The target's outgoing flow is not defined in the subgraph;
            // use d * inflow (Section 5.1).
            params.damping * explanation.inflow(node)
        } else {
            let d = explanation
                .distance(node)
                // orex::allow(ORX008): every node in an explanation
                // subgraph is discovered by the BFS that assigns its
                // distance, so the invariant holds by construction.
                .expect("subgraph node has a distance");
            params.decay.powi(d as i32) * explanation.outflow(node)
        };
        if node_weight <= 0.0 {
            continue;
        }
        for &(term, _tf) in index.doc_terms(node.raw()) {
            *weights.entry(index.term_text(term)).or_insert(0.0) += node_weight;
        }
    }
    let mut out: Vec<(String, f64)> = weights
        .into_iter()
        .map(|(t, w)| (t.to_string(), w))
        .collect();
    out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Selects the top-`z` terms and normalizes their weights per Section 5.1:
/// the maximum expansion weight is scaled to the mean weight `a_w` of the
/// current query vector (or to 1 for an empty query).
pub fn select_and_normalize(
    raw: &[(String, f64)],
    query: &QueryVector,
    top_terms: usize,
) -> Vec<(String, f64)> {
    let mut top: Vec<(String, f64)> = raw.iter().take(top_terms).cloned().collect();
    let max = top.iter().map(|&(_, w)| w).fold(0.0, f64::max);
    if max <= 0.0 {
        return Vec::new();
    }
    let a_w = if query.is_empty() {
        1.0
    } else {
        query.mean_weight()
    };
    let scale = a_w / max;
    for (_, w) in &mut top {
        *w *= scale;
    }
    top
}

/// Equation 12: `Q_{i+1} = Q_i + C_e Σ w'(t) · t` over the (already
/// normalized) expansion terms. Terms already in the query have their
/// weights increased; new terms are appended in weight order.
pub fn apply_expansion(
    query: &QueryVector,
    normalized_terms: &[(String, f64)],
    expansion_factor: f64,
) -> QueryVector {
    let mut out = query.clone();
    for (term, weight) in normalized_terms {
        out.add_weight(term, expansion_factor * weight);
    }
    out
}

/// One-shot content reformulation for a single feedback object:
/// Equation 11 term harvest, top-`z` selection, normalization and
/// Equation 12 application.
pub fn content_reformulate(
    query: &QueryVector,
    explanation: &Explanation,
    index: &InvertedIndex,
    params: &ContentParams,
) -> QueryVector {
    if params.expansion_factor == 0.0 {
        return query.clone();
    }
    let raw = expansion_term_weights(explanation, index, params);
    let normalized = select_and_normalize(&raw, query, params.top_terms);
    apply_expansion(query, &normalized, params.expansion_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_authority::{power_iteration, BaseSet, RankParams, TransitionMatrix};
    use orex_explain::ExplainParams;
    use orex_graph::{
        DataGraphBuilder, NodeId, SchemaGraph, TransferGraph, TransferRates, TransferTypeId,
    };
    use orex_ir::{Analyzer, IndexBuilder, Query};

    /// source("olap survey") -> mid("data cube analysis") -> target("range
    /// queries cubes"), plus an off-path node("irrelevant topic") hanging
    /// off mid.
    fn setup() -> (Explanation, InvertedIndex) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("Paper").unwrap();
        let r = schema.add_edge_type(p, p, "cites").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let s = b.add_node_with(p, &[("Title", "olap survey")]).unwrap();
        let mid = b
            .add_node_with(p, &[("Title", "data cube analysis")])
            .unwrap();
        let t = b
            .add_node_with(p, &[("Title", "range queries cubes")])
            .unwrap();
        let off = b
            .add_node_with(p, &[("Title", "irrelevant topic")])
            .unwrap();
        b.add_edge(s, mid, r).unwrap();
        b.add_edge(mid, t, r).unwrap();
        b.add_edge(mid, off, r).unwrap();
        let g = b.freeze();
        let mut rates = TransferRates::zero(g.schema());
        rates.set(TransferTypeId::forward(r), 0.8).unwrap();
        let tg = TransferGraph::build(&g);
        let weights = tg.weights(&rates);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-14,
                max_iterations: 5000,
                threads: 1,
                ..RankParams::default()
            },
            None,
        );
        let expl = orex_explain::Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            NodeId::new(2),
            &ExplainParams::default(),
        )
        .unwrap();
        let mut ib = IndexBuilder::new(Analyzer::new());
        for node in g.nodes() {
            ib.add_document(node.raw(), &g.node_text(node));
        }
        (expl, ib.build())
    }

    #[test]
    fn target_terms_get_highest_weight() {
        let (expl, idx) = setup();
        let raw = expansion_term_weights(&expl, &idx, &ContentParams::default());
        assert!(!raw.is_empty());
        // The feedback object's own terms lead thanks to C_d^0 and the
        // full inflow weight.
        let top_terms: Vec<&str> = raw.iter().take(3).map(|(t, _)| t.as_str()).collect();
        assert!(top_terms.contains(&"rang"), "{top_terms:?}");
        assert!(top_terms.contains(&"queri"), "{top_terms:?}");
    }

    #[test]
    fn off_path_terms_excluded() {
        let (expl, idx) = setup();
        let raw = expansion_term_weights(&expl, &idx, &ContentParams::default());
        assert!(
            !raw.iter().any(|(t, _)| t == "irrelev" || t == "topic"),
            "terms of nodes outside the explaining subgraph must not appear"
        );
    }

    #[test]
    fn distance_decays_weights() {
        let (expl, idx) = setup();
        let raw = expansion_term_weights(&expl, &idx, &ContentParams::default());
        let get = |t: &str| raw.iter().find(|(x, _)| x == t).map(|&(_, w)| w);
        // "olap" is 2 hops from the target and decayed twice; "cube"
        // appears at distance 1 (mid) *and* 0 (target: "cubes" stems to
        // cube), so it outweighs olap.
        let olap = get("olap").expect("olap harvested");
        let cube = get("cube").expect("cube harvested");
        assert!(cube > olap, "cube {cube} vs olap {olap}");
    }

    #[test]
    fn normalization_ties_max_to_query_mean() {
        let (expl, idx) = setup();
        let raw = expansion_term_weights(&expl, &idx, &ContentParams::default());
        let q = QueryVector::from_weights([("olap", 2.0), ("data", 4.0)]); // mean 3
        let norm = select_and_normalize(&raw, &q, 5);
        let max = norm.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        assert!((max - 3.0).abs() < 1e-12);
    }

    #[test]
    fn equation12_accumulates_existing_terms() {
        let q = QueryVector::from_weights([("olap", 1.0)]);
        let terms = vec![("olap".to_string(), 1.0), ("cube".to_string(), 0.8)];
        let out = apply_expansion(&q, &terms, 0.5);
        assert!((out.weight("olap") - 1.5).abs() < 1e-12);
        assert!((out.weight("cube") - 0.4).abs() < 1e-12);
        // Order: original terms first.
        let order: Vec<&str> = out.iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec!["olap", "cube"]);
    }

    #[test]
    fn zero_expansion_factor_is_identity() {
        let (expl, idx) = setup();
        let a = Analyzer::new();
        let q = QueryVector::initial(&Query::parse("olap"), &a);
        let out = content_reformulate(
            &q,
            &expl,
            &idx,
            &ContentParams {
                expansion_factor: 0.0,
                ..ContentParams::default()
            },
        );
        assert_eq!(out, q);
    }

    #[test]
    fn top_terms_limit_respected() {
        let (expl, idx) = setup();
        let raw = expansion_term_weights(&expl, &idx, &ContentParams::default());
        let q = QueryVector::from_weights([("olap", 1.0)]);
        let norm = select_and_normalize(&raw, &q, 2);
        assert!(norm.len() <= 2);
    }

    #[test]
    fn full_reformulation_grows_query() {
        let (expl, idx) = setup();
        let a = Analyzer::new();
        let q = QueryVector::initial(&Query::parse("olap"), &a);
        let out = content_reformulate(&q, &expl, &idx, &ContentParams::default());
        assert!(out.len() > q.len());
        // olap keeps at least its original weight.
        assert!(out.weight("olap") >= 1.0);
    }

    #[test]
    fn deterministic_order_on_ties() {
        let (expl, idx) = setup();
        let r1 = expansion_term_weights(&expl, &idx, &ContentParams::default());
        let r2 = expansion_term_weights(&expl, &idx, &ContentParams::default());
        assert_eq!(r1, r2);
    }
}
