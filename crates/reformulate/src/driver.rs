//! The combined reformulation driver (Sections 5.1–5.3).
//!
//! Given the explaining subgraphs of one or more user-selected feedback
//! objects, produces the reformulated query: an expanded query vector
//! (content-based component) and adjusted authority transfer rates
//! (structure-based component). Multi-object feedback aggregates the raw
//! per-object term weights (Equation 14) and per-type flow sums
//! (Equation 15) by summation before the shared normalization steps —
//! summation being the monotone aggregation function the paper uses in
//! its surveys.

use crate::content::{
    apply_expansion, expansion_term_weights, select_and_normalize, ContentParams,
};
use crate::structure::{
    edge_type_flows, edge_type_flows_pruned, structure_reformulate, StructureParams,
};
use orex_explain::Explanation;
use orex_graph::{SchemaGraph, TransferGraph, TransferRates};
use orex_ir::{InvertedIndex, QueryVector};
use std::collections::HashMap;

/// Full reformulation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ReformulateParams {
    /// Content-based component (set `content.expansion_factor = 0` for
    /// structure-only reformulation, the internal survey's winner).
    pub content: ContentParams,
    /// Structure-based component (set `structure.rate_factor = 0` for
    /// content-only reformulation).
    pub structure: StructureParams,
}

impl ReformulateParams {
    /// Content-only setting (`C_f = 0`), as in the Section 6.1.1 survey's
    /// first arm (`C_e = 0.2` there).
    pub fn content_only(expansion_factor: f64) -> Self {
        Self {
            content: ContentParams {
                expansion_factor,
                ..ContentParams::default()
            },
            structure: StructureParams {
                rate_factor: 0.0,
                ..StructureParams::default()
            },
        }
    }

    /// Structure-only setting (`C_e = 0`), the survey's winner.
    pub fn structure_only(rate_factor: f64) -> Self {
        Self {
            content: ContentParams {
                expansion_factor: 0.0,
                ..ContentParams::default()
            },
            structure: StructureParams {
                rate_factor,
                ..StructureParams::default()
            },
        }
    }
}

/// The outcome of a reformulation step.
#[derive(Clone, Debug)]
pub struct Reformulation {
    /// The expanded query vector (`Q_{i+1}`, Equation 12). Equal to the
    /// input query under structure-only settings.
    pub query: QueryVector,
    /// The adjusted authority transfer rates (Equation 13 + normalization).
    /// Equal to the input rates under content-only settings.
    pub rates: TransferRates,
    /// The normalized expansion terms that were added (empty when content
    /// reformulation is disabled).
    pub expansion_terms: Vec<(String, f64)>,
}

/// Reformulates a query given the explaining subgraphs of the feedback
/// objects (Sections 5.1–5.3).
///
/// # Panics
/// Panics if `explanations` is empty — reformulation without feedback is
/// a caller bug.
pub fn reformulate(
    query: &QueryVector,
    rates: &TransferRates,
    schema: &SchemaGraph,
    graph: &TransferGraph,
    index: &InvertedIndex,
    explanations: &[&Explanation],
    params: &ReformulateParams,
) -> Reformulation {
    assert!(
        !explanations.is_empty(),
        "reformulation requires at least one feedback object"
    );

    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("reformulate.feedback_us");
    let mut round_span = orex_telemetry::tracer().span("reformulate.round");
    if round_span.is_recording() {
        round_span.attr_u64("feedback_objects", explanations.len() as u64);
        round_span.attr_f64("expansion_factor", params.content.expansion_factor);
        round_span.attr_f64("rate_factor", params.structure.rate_factor);
    }
    telemetry.counter("reformulate.runs").incr();
    telemetry
        .counter("reformulate.feedback_objects")
        .add(explanations.len() as u64);

    // --- Content component (Eq. 11, aggregated by Eq. 14) --------------
    let (new_query, expansion_terms) = if params.content.expansion_factor > 0.0 {
        let mut agg: HashMap<String, f64> = HashMap::new();
        for expl in explanations {
            for (term, w) in expansion_term_weights(expl, index, &params.content) {
                *agg.entry(term).or_insert(0.0) += w;
            }
        }
        let mut raw: Vec<(String, f64)> = agg.into_iter().collect();
        raw.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let normalized = select_and_normalize(&raw, query, params.content.top_terms);
        let q = apply_expansion(query, &normalized, params.content.expansion_factor);
        (q, normalized)
    } else {
        (query.clone(), Vec::new())
    };

    // --- Structure component (Eq. 13, aggregated by Eq. 15) ------------
    let new_rates = if params.structure.rate_factor > 0.0 {
        let mut agg = vec![0.0; graph.transfer_type_count()];
        for expl in explanations {
            let flows = if params.structure.top_paths > 0 {
                edge_type_flows_pruned(expl, graph, params.structure.top_paths)
            } else {
                edge_type_flows(expl, graph)
            };
            for (i, f) in flows.into_iter().enumerate() {
                agg[i] += f;
            }
        }
        structure_reformulate(rates, &agg, schema, &params.structure)
    } else {
        rates.clone()
    };

    telemetry
        .histogram("reformulate.expansion_terms")
        .record(expansion_terms.len() as f64);
    if round_span.is_recording() {
        round_span.attr_u64("expansion_terms", expansion_terms.len() as u64);
    }
    orex_telemetry::logger()
        .info("reformulate", "feedback applied")
        .field_u64("feedback_objects", explanations.len() as u64)
        .field_u64("expansion_terms", expansion_terms.len() as u64)
        .field_f64("expansion_factor", params.content.expansion_factor)
        .field_f64("rate_factor", params.structure.rate_factor)
        .emit();

    Reformulation {
        query: new_query,
        rates: new_rates,
        expansion_terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_authority::{power_iteration, BaseSet, RankParams, TransitionMatrix};
    use orex_explain::ExplainParams;
    use orex_graph::{DataGraphBuilder, EdgeTypeId, NodeId, TransferTypeId};
    use orex_ir::{Analyzer, IndexBuilder, Query};

    struct Fixture {
        schema: SchemaGraph,
        graph: TransferGraph,
        rates: TransferRates,
        index: InvertedIndex,
        expl_a: Explanation,
        expl_b: Explanation,
        query: QueryVector,
    }

    /// Base node feeding two feedback objects through citation chains.
    fn fixture() -> Fixture {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("Paper").unwrap();
        let cites = schema.add_edge_type(p, p, "cites").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let s = b.add_node_with(p, &[("Title", "olap overview")]).unwrap();
        let t1 = b
            .add_node_with(p, &[("Title", "olap cube storage")])
            .unwrap();
        let t2 = b.add_node_with(p, &[("Title", "olap range scan")]).unwrap();
        b.add_edge(s, t1, cites).unwrap();
        b.add_edge(s, t2, cites).unwrap();
        let g = b.freeze();
        let schema = g.schema().clone();
        let mut rates = TransferRates::uniform(&schema, 0.3);
        rates
            .set(TransferTypeId::backward(EdgeTypeId::new(0)), 0.2)
            .unwrap();
        let graph = TransferGraph::build(&g);
        let mut ib = IndexBuilder::new(Analyzer::new());
        for node in g.nodes() {
            ib.add_document(node.raw(), &g.node_text(node));
        }
        let index = ib.build();
        let query = QueryVector::initial(&Query::parse("olap"), index.analyzer());

        let weights = graph.weights(&rates);
        let m = TransitionMatrix::new(&graph, &rates);
        let base =
            BaseSet::weighted(index.base_set_scores(&query, &orex_ir::Okapi::default())).unwrap();
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-12,
                max_iterations: 2000,
                threads: 1,
                ..RankParams::default()
            },
            None,
        );
        let mk = |t: u32| {
            Explanation::explain(
                &graph,
                &weights,
                &rank.scores,
                &base,
                NodeId::new(t),
                &ExplainParams::default(),
            )
            .unwrap()
        };
        let expl_a = mk(1);
        let expl_b = mk(2);
        Fixture {
            schema,
            graph,
            rates,
            index,
            expl_a,
            expl_b,
            query,
        }
    }

    #[test]
    fn structure_only_leaves_query_unchanged() {
        let f = fixture();
        let out = reformulate(
            &f.query,
            &f.rates,
            &f.schema,
            &f.graph,
            &f.index,
            &[&f.expl_a],
            &ReformulateParams::structure_only(0.5),
        );
        assert_eq!(out.query, f.query);
        assert!(out.expansion_terms.is_empty());
        assert_ne!(out.rates, f.rates);
        out.rates.validate(&f.schema).unwrap();
    }

    #[test]
    fn content_only_leaves_rates_unchanged() {
        let f = fixture();
        let out = reformulate(
            &f.query,
            &f.rates,
            &f.schema,
            &f.graph,
            &f.index,
            &[&f.expl_a],
            &ReformulateParams::content_only(0.2),
        );
        assert_eq!(out.rates, f.rates);
        assert!(!out.expansion_terms.is_empty());
        assert!(out.query.len() > f.query.len());
    }

    #[test]
    fn combined_changes_both() {
        let f = fixture();
        let out = reformulate(
            &f.query,
            &f.rates,
            &f.schema,
            &f.graph,
            &f.index,
            &[&f.expl_a],
            &ReformulateParams::default(),
        );
        assert_ne!(out.query, f.query);
        assert_ne!(out.rates, f.rates);
    }

    #[test]
    fn multi_feedback_aggregates_terms_from_both_objects() {
        let f = fixture();
        let params = ReformulateParams {
            content: ContentParams {
                top_terms: 10,
                ..ContentParams::default()
            },
            ..ReformulateParams::default()
        };
        let both = reformulate(
            &f.query,
            &f.rates,
            &f.schema,
            &f.graph,
            &f.index,
            &[&f.expl_a, &f.expl_b],
            &params,
        );
        let terms: Vec<&str> = both
            .expansion_terms
            .iter()
            .map(|(t, _)| t.as_str())
            .collect();
        // cube/storage come from t1's subgraph, rang/scan from t2's.
        assert!(terms.contains(&"cube"), "{terms:?}");
        assert!(terms.contains(&"rang"), "{terms:?}");
    }

    #[test]
    fn multi_feedback_sums_raw_weights() {
        let f = fixture();
        // "olap" appears in both subgraphs; with two feedback objects its
        // aggregated raw weight is the sum, so it stays the top term.
        let out = reformulate(
            &f.query,
            &f.rates,
            &f.schema,
            &f.graph,
            &f.index,
            &[&f.expl_a, &f.expl_b],
            &ReformulateParams::default(),
        );
        assert_eq!(out.expansion_terms[0].0, "olap");
    }

    #[test]
    #[should_panic(expected = "at least one feedback object")]
    fn empty_feedback_panics() {
        let f = fixture();
        let _ = reformulate(
            &f.query,
            &f.rates,
            &f.schema,
            &f.graph,
            &f.index,
            &[],
            &ReformulateParams::default(),
        );
    }
}
