//! Structure-based reformulation (Section 5.2, Equation 13).
//!
//! If edges of a type carry large authority in the explaining subgraph of
//! a feedback object, the user implicitly voted for that edge type. The
//! authority transfer rate of each type present in the subgraph is boosted
//! proportionally to the flow it carried:
//!
//! ```text
//! a'(e_S) = (1 + C_f · F̂(e_S)) · a(e_S)       (Eq. 13)
//! ```
//!
//! with `F(e_S) = Σ flows of type-e_S edges in G_v^Q`, followed by the
//! paper's four normalization steps:
//!
//! 1. normalize the `F` factors so the maximum is 1;
//! 2. apply Equation 13;
//! 3. normalize the resulting rates so the maximum is 1;
//! 4. rescale each schema node type's outgoing rates to sum to at most 1
//!    (required for ObjectRank2 convergence).

use orex_explain::Explanation;
use orex_graph::{SchemaGraph, TransferGraph, TransferRates};

/// Parameters of structure-based reformulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructureParams {
    /// Authority-transfer-rate adjustment factor `C_f ∈ [0, 1]`
    /// (typically 0.5; 0 disables structure reformulation). Larger values
    /// train the rates faster but overshoot sooner (Figure 11).
    pub rate_factor: f64,
    /// Measure `F` on the edges of the strongest `top_paths` flow paths
    /// instead of the whole subgraph (0 = whole subgraph). Section 4's
    /// practice — the online demo keeps "only the paths with high
    /// authority flow", and those pruned subgraphs drive reformulation —
    /// matters here: the full radius-L cone is saturated with diffuse
    /// cycle flow that votes for *every* edge type roughly equally, while
    /// the dominant paths carry the type signal the user's click implies.
    pub top_paths: usize,
}

impl Default for StructureParams {
    fn default() -> Self {
        Self {
            rate_factor: 0.5,
            top_paths: 8,
        }
    }
}

impl StructureParams {
    /// Setting with a bare rate factor (whole-subgraph measurement).
    pub fn unpruned(rate_factor: f64) -> Self {
        Self {
            rate_factor,
            top_paths: 0,
        }
    }
}

/// Sums the adjusted flows per transfer-edge type over an explaining
/// subgraph: the raw `F(e_S)` factors of Equation 13, densely indexed by
/// `TransferTypeId::dense_index`. Multi-feedback aggregation
/// (Equation 15) adds these vectors across feedback objects.
pub fn edge_type_flows(explanation: &Explanation, graph: &TransferGraph) -> Vec<f64> {
    let mut flows = vec![0.0; graph.transfer_type_count()];
    for e in explanation.edges() {
        let tt = graph.edge_transfer_type(e.transfer_edge);
        flows[tt.dense_index()] += e.adjusted_flow;
    }
    flows
}

/// Like [`edge_type_flows`], but measured only on the edges of the
/// `k` strongest flow paths of the explanation (see
/// [`StructureParams::top_paths`]). Parallel edges between the same node
/// pair contribute their strongest representative, matching what the
/// pruned display shows the user.
pub fn edge_type_flows_pruned(
    explanation: &Explanation,
    graph: &TransferGraph,
    k: usize,
) -> Vec<f64> {
    let mut flows = vec![0.0; graph.transfer_type_count()];
    let mut counted: std::collections::HashSet<(u32, u32)> = Default::default();
    for path in orex_explain::top_paths(explanation, k) {
        for pair in path.nodes.windows(2) {
            if !counted.insert((pair[0].raw(), pair[1].raw())) {
                continue; // shared prefix edges count once
            }
            // Strongest edge between the pair.
            if let Some(e) = explanation
                .out_edges(pair[0])
                .filter(|e| e.target == pair[1])
                .max_by(|a, b| a.adjusted_flow.total_cmp(&b.adjusted_flow))
            {
                let tt = graph.edge_transfer_type(e.transfer_edge);
                flows[tt.dense_index()] += e.adjusted_flow;
            }
        }
    }
    flows
}

/// Applies Equation 13 plus the four-step normalization, producing a new
/// valid rates vector. `type_flows` is the (possibly aggregated) raw `F`
/// vector from [`edge_type_flows`].
pub fn structure_reformulate(
    rates: &TransferRates,
    type_flows: &[f64],
    schema: &SchemaGraph,
    params: &StructureParams,
) -> TransferRates {
    assert_eq!(
        type_flows.len(),
        schema.edge_type_count() * 2,
        "type flow vector dimension mismatch"
    );
    if params.rate_factor == 0.0 {
        return rates.clone();
    }

    // Step 1: normalize F to max 1.
    let max_f = type_flows.iter().copied().fold(0.0, f64::max);
    let f_hat: Vec<f64> = if max_f > 0.0 {
        type_flows.iter().map(|&f| f / max_f).collect()
    } else {
        vec![0.0; type_flows.len()]
    };

    // Step 2: Equation 13.
    let mut new_rates: Vec<f64> = rates
        .as_slice()
        .iter()
        .zip(&f_hat)
        .map(|(&a, &f)| (1.0 + params.rate_factor * f) * a)
        .collect();

    // Step 3: normalize rates so the maximum is exactly 1, "as in Step 1".
    // This is a *uniform* scaling — it fixes the canonical scale without
    // touching relative proportions.
    let max_a = new_rates.iter().copied().fold(0.0, f64::max);
    if max_a > 0.0 {
        for a in &mut new_rates {
            *a /= max_a;
        }
    }

    // Step 4: scale so every schema node type's outgoing rates sum to at
    // most 1. This must also be a *uniform* scaling (divide everything by
    // the worst node type's sum): a per-owner rescale would let rate
    // types owned by low-fanout node types ratchet upward round after
    // round — the paper's Example 2 (cont'd), where AP *drops* from 0.2
    // to 0.16 even though the Author type's budget was never exceeded,
    // shows the intended semantics. The combination pins the busiest node
    // type's outgoing sum at 1 (the example's reformulated Paper sum is
    // 0.99).
    // orex::allow(ORX008): `new_rates` is built two steps above with
    // exactly `schema.rate_type_count()` entries, so the dimension
    // check in `from_dense` cannot fail here.
    let mut out = TransferRates::from_dense(schema, new_rates).expect("dimension checked above");
    let worst = out.outgoing_sums(schema).into_iter().fold(0.0f64, f64::max);
    if worst > 1.0 {
        for a in out.as_mut_slice() {
            *a /= worst;
        }
    }
    debug_assert!(out.validate(schema).is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_authority::{power_iteration, BaseSet, RankParams, TransitionMatrix};
    use orex_explain::ExplainParams;
    use orex_graph::{DataGraphBuilder, EdgeTypeId, NodeId, SchemaGraph, TransferTypeId};

    /// Two-type graph: papers cite papers and have authors. Base at a
    /// paper, feedback at a paper reached through citations — citation
    /// edges carry all the flow, author edges none.
    fn setup() -> (SchemaGraph, TransferGraph, TransferRates, Explanation) {
        let mut schema = SchemaGraph::new();
        let p = schema.add_node_type("Paper").unwrap();
        let a = schema.add_node_type("Author").unwrap();
        let cites = schema.add_edge_type(p, p, "cites").unwrap();
        let by = schema.add_edge_type(p, a, "by").unwrap();
        let mut b = DataGraphBuilder::new(schema);
        let p0 = b.add_node(p, vec![]).unwrap();
        let p1 = b.add_node(p, vec![]).unwrap();
        let p2 = b.add_node(p, vec![]).unwrap();
        let a0 = b.add_node(a, vec![]).unwrap();
        b.add_edge(p0, p1, cites).unwrap();
        b.add_edge(p1, p2, cites).unwrap();
        b.add_edge(p1, a0, by).unwrap();
        let g = b.freeze();
        let schema = g.schema().clone();
        let mut rates = TransferRates::uniform(&schema, 0.3);
        // Keep per-node sums valid: papers have cites_f + cites_b + by_f.
        rates
            .set(TransferTypeId::backward(EdgeTypeId::new(0)), 0.1)
            .unwrap();
        rates.validate(&schema).unwrap();
        let tg = TransferGraph::build(&g);
        let weights = tg.weights(&rates);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::uniform([0]).unwrap();
        let rank = power_iteration(
            &m,
            &base,
            &RankParams {
                epsilon: 1e-14,
                max_iterations: 5000,
                threads: 1,
                ..RankParams::default()
            },
            None,
        );
        let expl = Explanation::explain(
            &tg,
            &weights,
            &rank.scores,
            &base,
            NodeId::new(2),
            &ExplainParams::default(),
        )
        .unwrap();
        (schema, tg, rates, expl)
    }

    #[test]
    fn flows_attributed_to_types() {
        let (_, tg, _, expl) = setup();
        let flows = edge_type_flows(&expl, &tg);
        let cites_fwd = TransferTypeId::forward(EdgeTypeId::new(0)).dense_index();
        let by_fwd = TransferTypeId::forward(EdgeTypeId::new(1)).dense_index();
        assert!(flows[cites_fwd] > 0.0, "citation flow present");
        // Author edges carry only the small paper -> author -> paper
        // detour flow; the direct citation path dominates.
        assert!(
            flows[cites_fwd] > 5.0 * flows[by_fwd],
            "cites {:} vs by {:}",
            flows[cites_fwd],
            flows[by_fwd]
        );
    }

    #[test]
    fn boosted_types_gain_relative_to_unused() {
        let (schema, tg, rates, expl) = setup();
        let flows = edge_type_flows(&expl, &tg);
        let new = structure_reformulate(&rates, &flows, &schema, &StructureParams::default());
        let cites_f = TransferTypeId::forward(EdgeTypeId::new(0));
        let by_f = TransferTypeId::forward(EdgeTypeId::new(1));
        let ratio_before = rates.get(cites_f) / rates.get(by_f);
        let ratio_after = new.get(cites_f) / new.get(by_f);
        assert!(
            ratio_after > ratio_before,
            "cites/by ratio must increase: {ratio_before} -> {ratio_after}"
        );
    }

    #[test]
    fn result_is_always_valid() {
        let (schema, tg, rates, expl) = setup();
        let flows = edge_type_flows(&expl, &tg);
        for cf in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let new =
                structure_reformulate(&rates, &flows, &schema, &StructureParams::unpruned(cf));
            new.validate(&schema).unwrap();
        }
    }

    #[test]
    fn zero_factor_is_identity() {
        let (schema, tg, rates, expl) = setup();
        let flows = edge_type_flows(&expl, &tg);
        let new = structure_reformulate(&rates, &flows, &schema, &StructureParams::unpruned(0.0));
        assert_eq!(new, rates);
    }

    #[test]
    fn zero_flows_keep_relative_rates() {
        let (schema, _, rates, _) = setup();
        let flows = vec![0.0; schema.edge_type_count() * 2];
        let new = structure_reformulate(&rates, &flows, &schema, &StructureParams::default());
        // With F = 0 everywhere, Eq. 13 is the identity; the canonical
        // rescaling (max rate / node sums) may change the absolute scale
        // but never the direction of the vector.
        assert!((new.cosine_similarity(&rates) - 1.0).abs() < 1e-12);
        let ratio = new.as_slice()[0] / rates.as_slice()[0];
        for (a, b) in new.as_slice().iter().zip(rates.as_slice()) {
            assert!((a - b * ratio).abs() < 1e-12, "not a uniform rescale");
        }
        new.validate(&schema).unwrap();
    }

    #[test]
    fn normalization_pins_busiest_node_sum_at_one() {
        let (schema, tg, rates, expl) = setup();
        let flows = edge_type_flows(&expl, &tg);
        let new = structure_reformulate(&rates, &flows, &schema, &StructureParams::default());
        let worst = new
            .outgoing_sums(&schema)
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(
            (worst - 1.0).abs() < 1e-9,
            "canonical form pins the max outgoing sum at 1, got {worst}"
        );
    }

    #[test]
    fn repeated_training_converges_toward_flow_carrying_types() {
        let (schema, tg, mut rates, _) = setup();
        // Re-run the full loop: rates -> rank -> explain -> adjust, the
        // inner loop of the Figure 11 training experiment.
        for _ in 0..4 {
            let weights = tg.weights(&rates);
            let m = TransitionMatrix::new(&tg, &rates);
            let base = BaseSet::uniform([0]).unwrap();
            let rank = power_iteration(
                &m,
                &base,
                &RankParams {
                    epsilon: 1e-12,
                    max_iterations: 2000,
                    threads: 1,
                    ..RankParams::default()
                },
                None,
            );
            let expl = Explanation::explain(
                &tg,
                &weights,
                &rank.scores,
                &base,
                NodeId::new(2),
                &ExplainParams::default(),
            )
            .unwrap();
            let flows = edge_type_flows(&expl, &tg);
            rates = structure_reformulate(&rates, &flows, &schema, &StructureParams::default());
            rates.validate(&schema).unwrap();
        }
        let cites_f = rates.get(TransferTypeId::forward(EdgeTypeId::new(0)));
        let by_f = rates.get(TransferTypeId::forward(EdgeTypeId::new(1)));
        assert!(
            cites_f > 2.0 * by_f,
            "after training, cites ({cites_f}) should dominate by ({by_f})"
        );
    }
}
