//! End-to-end tests: a real server on an ephemeral loopback port,
//! exercised over real sockets with a minimal test client.
//!
//! The tracer ring and telemetry recorder are process-global, so tests
//! serialize on a mutex — each test then owns every span its requests
//! produce.

use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
use orex_ir::Query;
use orex_server::{Server, ServerConfig, ShutdownHandle};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The system under test plus a keyword guaranteed to rank.
fn fixture() -> (Arc<ObjectRankSystem>, String) {
    static FIXTURE: OnceLock<(Arc<ObjectRankSystem>, String)> = OnceLock::new();
    FIXTURE
        .get_or_init(|| {
            let d = orex_datagen::Preset::DblpTop.generate(0.02);
            let keywords = d.suggested_keywords.clone();
            let system = Arc::new(ObjectRankSystem::new(
                d.graph,
                d.ground_truth,
                SystemConfig::default(),
            ));
            let keyword = keywords
                .iter()
                .find(|kw| QuerySession::start(&system, &Query::parse(kw)).is_ok())
                .expect("some keyword ranks")
                .clone();
            (system, keyword)
        })
        .clone()
}

struct TestServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn spawn(config: ServerConfig) -> Self {
        let (system, _) = fixture();
        let server = Server::bind(system, config).expect("bind ephemeral port");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        Self {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn spawn_default() -> Self {
        Self::spawn(TestServer::config())
    }

    fn config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            io_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("clean shutdown");
        }
    }
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn json(&self) -> Value {
        serde_json::from_str(&self.body).unwrap_or_else(|_| panic!("body is JSON: {:?}", self.body))
    }

    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends raw bytes, reads to EOF. Requests built by [`get`]/[`post`]
/// carry `Connection: close` so the keep-alive server closes after one
/// response and EOF framing stays valid.
fn raw(addr: SocketAddr, request: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8_lossy(&response);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body,
    }
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn result_nodes(payload: &Value) -> Vec<u64> {
    payload
        .get("results")
        .and_then(Value::as_array)
        .expect("results array")
        .iter()
        .map(|r| r.get("node").and_then(Value::as_u64).expect("node id"))
        .collect()
}

#[test]
fn full_interactive_loop_end_to_end() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let server = TestServer::spawn_default();

    // healthz
    let reply = get(server.addr, "/healthz");
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body, "ok\n");

    // query
    let reply = post(
        server.addr,
        "/query",
        &format!("{{\"query\": \"{keyword}\", \"k\": 5}}"),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let payload = reply.json();
    let session = payload.get("session").and_then(Value::as_u64).unwrap();
    let nodes = result_nodes(&payload);
    assert!(!nodes.is_empty() && nodes.len() <= 5);

    // explain the top result
    let reply = get(server.addr, &format!("/explain/{session}/{}", nodes[0]));
    assert_eq!(reply.status, 200, "{}", reply.body);
    let explain = reply.json();
    assert!(
        explain
            .get("target_inflow")
            .and_then(Value::as_f64)
            .unwrap()
            >= 0.0
    );
    assert!(explain.get("nodes").and_then(Value::as_u64).unwrap() >= 1);
    assert!(!explain
        .get("meta_paths")
        .and_then(Value::as_array)
        .unwrap()
        .is_empty());

    // feedback round
    let reply = post(
        server.addr,
        &format!("/feedback/{session}"),
        &format!("{{\"objects\": [{}], \"k\": 5}}", nodes[0]),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let feedback = reply.json();
    assert_eq!(feedback.get("round").and_then(Value::as_u64), Some(1));
    assert!(!result_nodes(&feedback).is_empty());

    // metrics show the traffic and parse as Prometheus text exposition
    let reply = get(server.addr, "/metrics");
    assert_eq!(reply.status, 200);
    assert_prometheus(&reply.body);
    assert!(reply.body.contains("orex_server_requests"));
    assert!(reply.body.contains("server_request_us"));

    // the query's trace renders as Chrome trace JSON
    let trace_id = payload.get("trace").and_then(Value::as_u64).unwrap();
    let reply = get(server.addr, &format!("/trace/{trace_id}"));
    assert_eq!(reply.status, 200, "{}", reply.body);
    let trace = reply.json();
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    assert!(
        events
            .iter()
            .any(|e| { e.get("name").and_then(Value::as_str) == Some("server.request") }),
        "trace contains the request root span"
    );
}

/// Minimal Prometheus text-format validation: every non-comment line is
/// `name{...} value` (optionally with an OpenMetrics ` # {labels} value`
/// exemplar suffix), every `# TYPE` names a metric.
fn assert_prometheus(text: &str) {
    assert!(!text.is_empty());
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("TYPE ") || rest.starts_with("HELP "),
                "bad comment: {line:?}"
            );
            continue;
        }
        // Strip an exemplar suffix before validating the series itself.
        let series = if let Some((series, exemplar)) = line.split_once(" # ") {
            assert!(
                line.contains("_bucket{"),
                "exemplar on a non-bucket line: {line:?}"
            );
            let (labels, value) = exemplar
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("exemplar has no value: {line:?}"));
            assert!(
                labels.starts_with("{trace_id=\"") && labels.ends_with("\"}"),
                "bad exemplar labels in {line:?}"
            );
            assert!(
                value.parse::<f64>().is_ok(),
                "bad exemplar value in {line:?}"
            );
            series
        } else {
            line
        };
        let (name_part, value) = series.rsplit_once(' ').unwrap_or_else(|| {
            panic!("metric line has no value: {line:?}");
        });
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name: {name:?}"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
            "bad value in {line:?}"
        );
    }
}

#[test]
fn repeated_query_hits_the_cache_with_identical_results() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let server = TestServer::spawn_default();
    let body = format!("{{\"query\": \"{keyword}\"}}");

    let first = post(server.addr, "/query", &body).json();
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));

    // Different spelling, same normalized query vector.
    let respelled = format!("{{\"query\": \"  {} \"}}", keyword.to_uppercase());
    let second = post(server.addr, "/query", &respelled).json();
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(result_nodes(&first), result_nodes(&second));
    // Distinct sessions: feedback on one must not affect the other.
    assert_ne!(
        first.get("session").and_then(Value::as_u64),
        second.get("session").and_then(Value::as_u64)
    );
}

#[test]
fn server_feedback_matches_in_process_session() {
    let _guard = serial();
    let (system, keyword) = fixture();
    let server = TestServer::spawn_default();

    let query = post(
        server.addr,
        "/query",
        &format!("{{\"query\": \"{keyword}\", \"k\": 10}}"),
    )
    .json();
    let session_id = query.get("session").and_then(Value::as_u64).unwrap();
    let nodes = result_nodes(&query);
    let picks = &nodes[..2.min(nodes.len())];
    let picks_json: Vec<String> = picks.iter().map(u64::to_string).collect();
    let served = post(
        server.addr,
        &format!("/feedback/{session_id}"),
        &format!("{{\"objects\": [{}], \"k\": 10}}", picks_json.join(",")),
    )
    .json();

    // The equivalent in-process run.
    let mut local = QuerySession::start(&system, &Query::parse(&keyword)).unwrap();
    let local_initial: Vec<u64> = local
        .top_k(10)
        .iter()
        .map(|r| r.node.raw() as u64)
        .collect();
    assert_eq!(nodes, local_initial, "initial top-k must match");
    let objects: Vec<orex_graph::NodeId> = picks
        .iter()
        .map(|&n| orex_graph::NodeId::new(n as u32))
        .collect();
    local.feedback(&objects).unwrap();
    let local_after: Vec<u64> = local
        .top_k(10)
        .iter()
        .map(|r| r.node.raw() as u64)
        .collect();

    assert_eq!(
        result_nodes(&served),
        local_after,
        "reformulated top-k must match the in-process run"
    );
}

#[test]
fn malformed_requests_get_400s_not_crashes() {
    let _guard = serial();
    let server = TestServer::spawn_default();

    assert_eq!(raw(server.addr, b"NONSENSE\r\n\r\n").status, 400);
    assert_eq!(raw(server.addr, b"GET / FTP/9\r\n\r\n").status, 400);
    assert_eq!(post(server.addr, "/query", "not json").status, 400);
    assert_eq!(post(server.addr, "/query", "[1,2]").status, 400);
    assert_eq!(post(server.addr, "/query", "{}").status, 400);
    assert_eq!(
        post(server.addr, "/query", "{\"query\": \"zzzqqqxx\"}").status,
        400,
        "unknown keyword is a client error"
    );
    assert_eq!(post(server.addr, "/feedback/abc", "{}").status, 400);
    assert_eq!(get(server.addr, "/explain/1",).status, 404);
    assert_eq!(get(server.addr, "/no/such/route").status, 404);
    assert_eq!(get(server.addr, "/query").status, 405);
    // The server is still healthy afterwards.
    assert_eq!(get(server.addr, "/healthz").status, 200);
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let _guard = serial();
    let mut config = TestServer::config();
    config.max_body_bytes = 256;
    let server = TestServer::spawn(config);
    let big = "x".repeat(1024);
    let reply = post(server.addr, "/query", &big);
    assert_eq!(reply.status, 413);
    assert_eq!(get(server.addr, "/healthz").status, 200);
}

#[test]
fn sessions_expire_after_ttl() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let mut config = TestServer::config();
    config.session_ttl = Duration::from_millis(80);
    let server = TestServer::spawn(config);

    let query = post(
        server.addr,
        "/query",
        &format!("{{\"query\": \"{keyword}\"}}"),
    )
    .json();
    let session = query.get("session").and_then(Value::as_u64).unwrap();
    let nodes = result_nodes(&query);
    assert_eq!(
        get(server.addr, &format!("/explain/{session}/{}", nodes[0])).status,
        200
    );
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        get(server.addr, &format!("/explain/{session}/{}", nodes[0])).status,
        404,
        "expired session must 404"
    );
    assert_eq!(
        post(
            server.addr,
            &format!("/feedback/{session}"),
            "{\"objects\": [1]}"
        )
        .status,
        404
    );
}

#[test]
fn concurrent_clients_see_no_server_errors() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let server = TestServer::spawn_default();
    let addr = server.addr;

    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let keyword = keyword.clone();
                scope.spawn(move || {
                    if i % 3 == 0 {
                        get(addr, "/healthz").status
                    } else if i % 3 == 1 {
                        get(addr, "/metrics").status
                    } else {
                        post(addr, "/query", &format!("{{\"query\": \"{keyword}\"}}")).status
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(statuses.len(), 64);
    for status in statuses {
        assert!(status < 500, "no server errors under concurrency");
        assert_ne!(status, 0, "no dropped connections");
    }
}

#[test]
fn every_request_emits_exactly_one_trace_correlated_access_log_record() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let server = TestServer::spawn_default();

    // The logger ring is process-global; start from a clean slate so
    // only this test's requests are in the archive.
    let _ = orex_telemetry::logger().drain();

    // A mixed batch: ranked queries (miss then cache hit), health
    // checks, and a 404 — errors must produce access logs too.
    let query_body = format!("{{\"query\": \"{keyword}\"}}");
    let first = post(server.addr, "/query", &query_body);
    assert_eq!(first.status, 200, "{}", first.body);
    let second = post(server.addr, "/query", &query_body);
    assert_eq!(second.status, 200);
    for _ in 0..3 {
        assert_eq!(get(server.addr, "/healthz").status, 200);
    }
    assert_eq!(get(server.addr, "/no/such/route").status, 404);
    let requests_before_scrape = 6;

    let reply = get(server.addr, "/logs?level=info");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let access: Vec<Value> = reply
        .body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| serde_json::from_str(l).expect("every /logs line is valid JSON"))
        .filter(|v: &Value| v.get("target").and_then(Value::as_str) == Some("server.access"))
        .collect();
    assert_eq!(
        access.len(),
        requests_before_scrape,
        "exactly one access record per request:\n{}",
        reply.body
    );

    // Statuses in the log match the statuses served.
    let mut statuses: Vec<u64> = access
        .iter()
        .map(|v| {
            v.get("fields")
                .and_then(|f| f.get("status"))
                .and_then(Value::as_u64)
                .expect("status field")
        })
        .collect();
    statuses.sort_unstable();
    assert_eq!(statuses, [200, 200, 200, 200, 200, 404]);

    // Every request-derived record carries a trace id, and the /query
    // records' trace ids resolve in the trace archive.
    for v in &access {
        assert!(
            v.get("trace").and_then(Value::as_u64).is_some(),
            "access record missing trace id: {v:?}"
        );
    }
    let first_trace = first.json().get("trace").and_then(Value::as_u64).unwrap();
    let query_records: Vec<&Value> = access
        .iter()
        .filter(|v| {
            v.get("fields")
                .and_then(|f| f.get("path"))
                .and_then(Value::as_str)
                == Some("/query")
        })
        .collect();
    assert_eq!(query_records.len(), 2);
    assert!(
        query_records
            .iter()
            .any(|v| v.get("trace").and_then(Value::as_u64) == Some(first_trace)),
        "the /query access record carries the response's trace id"
    );
    assert_eq!(
        get(server.addr, &format!("/trace/{first_trace}")).status,
        200,
        "the access log's trace id resolves in the trace archive"
    );

    // Cache-hit annotation: miss on the first query, hit on the second.
    let hits: Vec<bool> = query_records
        .iter()
        .map(|v| {
            v.get("fields")
                .and_then(|f| f.get("cache_hit"))
                .and_then(Value::as_bool)
                .expect("cache_hit on query records")
        })
        .collect();
    assert_eq!(hits.iter().filter(|h| **h).count(), 1, "{hits:?}");

    // No server errors were logged, and the filter parameters work: an
    // error-only view of this traffic is empty.
    let errors = get(server.addr, "/logs?level=error");
    assert_eq!(errors.status, 200);
    assert_eq!(errors.body.trim(), "", "no ERROR records: {}", errors.body);

    // Bad query parameters are client errors.
    assert_eq!(get(server.addr, "/logs?level=loud").status, 400);
    assert_eq!(get(server.addr, "/logs?nope=1").status, 400);

    // `since=` pages strictly past a cursor: the largest seq served
    // above yields nothing older.
    let max_seq = reply
        .body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .ok()
                .and_then(|v: Value| v.get("seq").and_then(Value::as_u64))
                .expect("seq on every record")
        })
        .max()
        .unwrap();
    let tail = get(server.addr, &format!("/logs?since={max_seq}&level=info"));
    let stale: Vec<u64> = tail
        .body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .ok()
                .and_then(|v: Value| v.get("seq").and_then(Value::as_u64))
                .unwrap()
        })
        .collect();
    assert!(
        stale.iter().all(|s| *s > max_seq),
        "since= must be exclusive: {stale:?}"
    );
}

/// Index terms by descending document frequency whose text survives the
/// query analyzer unchanged (so sending them as query keywords hits the
/// same vocabulary entries the artifact stores).
fn stable_top_terms(system: &Arc<ObjectRankSystem>) -> Vec<String> {
    let index = system.index();
    let mut by_df: Vec<(u32, String)> = (0..index.vocabulary_size() as u32)
        .map(|t| (index.df(t), index.term_text(t).to_string()))
        .collect();
    by_df.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    by_df
        .into_iter()
        .filter(|(df, t)| *df > 0 && index.analyzer().analyze_term(t).as_deref() == Some(t))
        .map(|(_, t)| t)
        .collect()
}

fn metric_value(metrics: &str, name: &str) -> Option<f64> {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
}

#[test]
fn covered_queries_combine_precomputed_vectors_and_misses_backfill() {
    let _guard = serial();
    let (system, _) = fixture();
    let terms = stable_top_terms(&system);
    assert!(terms.len() >= 3, "fixture vocabulary too small");

    // Build an artifact for the served graph: top terms through the
    // batched kernel, manifest stamped with the dataset hash.
    let matrix = orex_authority::TransitionMatrix::new(system.transfer(), system.initial_rates());
    let hash = orex_store::fnv1a(&orex_store::encode_graph(system.graph()));
    let store = orex_store::PrecomputedRanks::build(
        &matrix,
        system.index(),
        &system.config().okapi,
        &terms[..2],
        &system.config().rank,
        hash,
    );
    assert_eq!(store.terms().len(), 2, "both top terms must build");
    let path = std::env::temp_dir().join(format!("orex-e2e-precompute-{}.bin", std::process::id()));
    store.save(&path).expect("save artifact");

    let mut config = TestServer::config();
    config.precompute_path = Some(path.clone());
    let server = TestServer::spawn(config);

    // A multi-keyword query fully covered by the artifact is answered by
    // the exact linear combination — no live iteration.
    let covered = format!("{{\"query\": \"{} {}\", \"k\": 5}}", terms[0], terms[1]);
    let reply = post(server.addr, "/query", &covered);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let payload = reply.json();
    assert_eq!(payload.get("combined").and_then(Value::as_bool), Some(true));
    assert_eq!(payload.get("cached").and_then(Value::as_bool), Some(false));
    let nodes = result_nodes(&payload);
    assert!(!nodes.is_empty());

    // The combined session supports the rest of the interactive loop.
    let session = payload.get("session").and_then(Value::as_u64).unwrap();
    let explain = get(server.addr, &format!("/explain/{session}/{}", nodes[0]));
    assert_eq!(explain.status, 200, "{}", explain.body);

    // Re-asking is a plain result-cache hit, not a second combination.
    let again = post(server.addr, "/query", &covered).json();
    assert_eq!(again.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(result_nodes(&again), nodes);

    // A query with an uncached vocabulary term falls back to live
    // iteration and queues the term for background backfill.
    let uncovered = format!("{{\"query\": \"{} {}\"}}", terms[0], terms[2]);
    let reply = post(server.addr, "/query", &uncovered);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let payload = reply.json();
    assert_eq!(
        payload.get("combined").and_then(Value::as_bool),
        Some(false)
    );

    // Metrics carry the hit/miss split.
    let metrics = get(server.addr, "/metrics").body;
    assert!(metric_value(&metrics, "orex_server_precompute_hits").unwrap_or(0.0) >= 1.0);
    assert!(metric_value(&metrics, "orex_server_precompute_misses").unwrap_or(0.0) >= 1.0);

    // Once the backfill thread lands the missing vector, a fresh query
    // over the same terms combines.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = get(server.addr, "/metrics").body;
        if metric_value(&metrics, "orex_server_backfill_built").unwrap_or(0.0) >= 1.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "backfill never completed:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let after = post(
        server.addr,
        "/query",
        &format!("{{\"query\": \"{} {}\"}}", terms[1], terms[2]),
    );
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(
        after.json().get("combined").and_then(Value::as_bool),
        Some(true),
        "backfilled term must combine"
    );

    drop(server);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mismatched_precompute_artifact_is_refused_at_bind() {
    let _guard = serial();
    let (system, _) = fixture();
    // Right dimensions, wrong dataset hash: bind must fail loudly
    // rather than serve rankings computed for another graph.
    let store = orex_store::PrecomputedRanks::new(
        0x0BAD_CAFE,
        system.graph().node_count(),
        system.config().rank.damping,
        system.config().rank.epsilon,
    );
    let path = std::env::temp_dir().join(format!("orex-e2e-badhash-{}.bin", std::process::id()));
    store.save(&path).expect("save artifact");
    let mut config = TestServer::config();
    config.precompute_path = Some(path.clone());
    let err = match Server::bind(fixture().0, config) {
        Ok(_) => panic!("bind must refuse the artifact"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn logs_cursor_past_newest_returns_empty_page_with_current_cursor() {
    let _guard = serial();
    let server = TestServer::spawn_default();

    // Generate some log traffic so the archive has a real newest seq.
    for _ in 0..3 {
        assert_eq!(get(server.addr, "/healthz").status, 200);
    }
    let reply = get(server.addr, "/logs");
    assert_eq!(reply.status, 200);
    let cursor: u64 = reply
        .header("X-Orex-Log-Cursor")
        .expect("every /logs response advertises a cursor")
        .parse()
        .expect("cursor is an integer");
    assert!(cursor > 0, "traffic above must have produced records");

    // A stale cursor far past the newest seq (e.g. held across a server
    // restart) serves an empty page, NOT a replay from the start, and
    // hands back the current cursor so the poller can resync.
    let stale = get(server.addr, &format!("/logs?since={}", cursor + 1_000_000));
    assert_eq!(stale.status, 200);
    assert_eq!(stale.body.trim(), "", "no replay: {}", stale.body);
    let resync: u64 = stale
        .header("X-Orex-Log-Cursor")
        .expect("empty page still carries the cursor")
        .parse()
        .unwrap();
    assert!(resync >= cursor);

    // Polling from the advertised cursor yields only newer records.
    let next = get(server.addr, &format!("/logs?since={resync}"));
    assert_eq!(next.status, 200);
    for line in next.body.lines().filter(|l| !l.is_empty()) {
        let v: Value = serde_json::from_str(line).unwrap();
        assert!(v.get("seq").and_then(Value::as_u64).unwrap() > resync);
    }
}

#[test]
fn debug_status_serves_red_rows_occupancy_and_slos() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let server = TestServer::spawn_default();

    // Traffic so the RED table has rows: queries + a health check.
    let reply = post(
        server.addr,
        "/query",
        &format!("{{\"query\": \"{keyword}\"}}"),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(get(server.addr, "/healthz").status, 200);

    // HTML view.
    let html = get(server.addr, "/debug/status");
    assert_eq!(html.status, 200);
    assert!(html.body.contains("orex status"), "{}", html.body);
    assert!(html.body.contains("<td>request</td>"), "{}", html.body);
    assert!(html.body.contains("<td>query</td>"), "{}", html.body);
    assert!(html.body.contains("SLOs"), "{}", html.body);

    // JSON view: endpoints, occupancy, SLO statuses, history series.
    let reply = get(server.addr, "/debug/status?format=json");
    assert_eq!(reply.status, 200);
    let doc = reply.json();
    let endpoints = doc.get("endpoints").and_then(Value::as_array).unwrap();
    assert!(
        endpoints
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("query")),
        "{doc:?}"
    );
    for e in endpoints {
        assert!(e.get("requests").and_then(Value::as_u64).unwrap() > 0);
        assert!(e.get("p95_us").and_then(Value::as_f64).is_some());
    }
    let occupancy = doc.get("occupancy").expect("occupancy");
    assert!(occupancy.get("sessions").and_then(Value::as_u64).unwrap() >= 1);
    let slos = doc.get("slos").and_then(Value::as_array).unwrap();
    assert!(!slos.is_empty());
    for s in slos {
        assert_eq!(
            s.get("burning").and_then(Value::as_bool),
            Some(false),
            "clean traffic must not burn: {s:?}"
        );
    }
    assert!(doc.get("uptime_s").and_then(Value::as_f64).unwrap() >= 0.0);

    // SLO gauges surface on /metrics as orex_slo_* series.
    let metrics = get(server.addr, "/metrics");
    assert_prometheus(&metrics.body);
    assert!(
        metrics
            .body
            .contains("orex_slo_request_availability_burning 0"),
        "{}",
        metrics.body
    );

    // Unknown parameters are client errors.
    assert_eq!(get(server.addr, "/debug/status?format=xml").status, 400);
    assert_eq!(get(server.addr, "/debug/status?nope=1").status, 400);
    assert_eq!(get(server.addr, "/debug/nothing").status, 404);
}

#[test]
fn profile_endpoint_serves_folded_and_chrome_views() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let server = TestServer::spawn_default();

    // Work that opens spans while the sampler runs; keep it going long
    // enough for the ~10ms sampling period to land a few ticks.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut folded = String::new();
    while std::time::Instant::now() < deadline {
        let reply = post(
            server.addr,
            "/query",
            &format!("{{\"query\": \"{keyword}\"}}"),
        );
        assert_eq!(reply.status, 200);
        let profile = get(server.addr, "/profile?seconds=60");
        assert_eq!(profile.status, 200, "{}", profile.body);
        if !profile.body.trim().is_empty() {
            folded = profile.body;
            break;
        }
    }
    assert!(
        !folded.trim().is_empty(),
        "continuous profiler captured no samples in 10s"
    );
    // Folded lines are `path;path;... count` rooted at the request span.
    for line in folded.lines().filter(|l| !l.is_empty()) {
        let (stack, count) = line.rsplit_once(' ').expect("folded line");
        assert!(count.parse::<u64>().is_ok(), "{line:?}");
        assert!(!stack.is_empty());
    }
    assert!(
        folded.contains("server.request"),
        "request spans dominate: {folded}"
    );

    // Chrome view parses as trace-event JSON.
    let chrome = get(server.addr, "/profile?format=chrome");
    assert_eq!(chrome.status, 200);
    assert!(
        chrome
            .json()
            .get("traceEvents")
            .and_then(Value::as_array)
            .is_some(),
        "{}",
        chrome.body
    );

    // Parameter validation.
    assert_eq!(get(server.addr, "/profile?format=svg").status, 400);
    assert_eq!(get(server.addr, "/profile?seconds=x").status, 400);
    assert_eq!(get(server.addr, "/profile?nope=1").status, 400);
}

#[test]
fn request_histogram_exemplars_resolve_to_served_traces() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let server = TestServer::spawn_default();

    for _ in 0..5 {
        let reply = post(
            server.addr,
            "/query",
            &format!("{{\"query\": \"{keyword}\"}}"),
        );
        assert_eq!(reply.status, 200);
    }
    let metrics = get(server.addr, "/metrics").body;
    assert_prometheus(&metrics);
    // Pull every exemplar trace id off the request histogram's buckets.
    let exemplar_ids: Vec<u64> = metrics
        .lines()
        .filter(|l| l.starts_with("orex_server_request_us_bucket"))
        .filter_map(|l| l.split("trace_id=\"").nth(1))
        .filter_map(|rest| rest.split('"').next())
        .filter_map(|id| id.parse().ok())
        .collect();
    assert!(
        !exemplar_ids.is_empty(),
        "sampled traffic must leave exemplars:\n{metrics}"
    );
    // The newest exemplar (largest trace id) resolves in the archive —
    // the tail-latency investigation loop the exemplars exist for.
    let newest = exemplar_ids.iter().max().unwrap();
    let trace = get(server.addr, &format!("/trace/{newest}"));
    assert_eq!(trace.status, 200, "{}", trace.body);
    assert!(trace.body.contains("server.request"), "{}", trace.body);
    // And the access log filtered to that trace correlates.
    let logs = get(server.addr, "/logs").body;
    assert!(
        logs.lines().any(|l| {
            serde_json::from_str(l)
                .ok()
                .and_then(|v: Value| v.get("trace").and_then(Value::as_u64))
                == Some(*newest)
        }),
        "no log record carries exemplar trace {newest}:\n{logs}"
    );
}

/// POST with an `X-Orex-Trace` header attached — the cross-process
/// propagation path a router (or loadgen) exercises.
fn post_traced(addr: SocketAddr, path: &str, body: &str, context: &str) -> Reply {
    raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Orex-Trace: {context}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

#[test]
fn propagated_trace_context_is_adopted_and_controls_sampling() {
    use orex_telemetry::{SpanId, TraceContext, TraceId};
    let _guard = serial();
    let (_, keyword) = fixture();
    let tracer = orex_telemetry::tracer();
    if !tracer.is_enabled() {
        return;
    }
    let server = TestServer::spawn_default();
    let query_body = format!("{{\"query\": \"{keyword}\"}}");

    // Health probes advertise the worker clock for skew alignment.
    let health = get(server.addr, "/healthz");
    assert_eq!(health.status, 200);
    let clock: u64 = health
        .header("X-Orex-Clock")
        .expect("healthz carries the worker clock")
        .parse()
        .expect("clock is nanoseconds");
    let later: u64 = get(server.addr, "/healthz")
        .header("X-Orex-Clock")
        .unwrap()
        .parse()
        .unwrap();
    assert!(later >= clock, "the advertised clock is monotonic");

    // A sampled remote context: the server joins the caller's trace
    // instead of minting one.
    let sampled = TraceContext {
        trace: TraceId(0xABCD_1234),
        parent: SpanId(0x99),
        flags: TraceContext::SAMPLED,
    };
    let reply = post_traced(server.addr, "/query", &query_body, &sampled.header_value());
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply.json().get("trace").and_then(Value::as_u64),
        Some(0xABCD_1234),
        "response reports the propagated trace id"
    );
    // The archive serves it in both renderings, and the root span's
    // parent is the caller's span id — stitchable across processes.
    let chrome = get(server.addr, "/trace/2882343476");
    assert_eq!(chrome.status, 200, "{}", chrome.body);
    assert!(chrome.body.contains("server.request"), "{}", chrome.body);
    let wire = get(server.addr, "/trace/2882343476?format=wire");
    assert_eq!(wire.status, 200, "{}", wire.body);
    for line in wire.body.lines().filter(|l| !l.is_empty()) {
        assert!(line.starts_with("2882343476\t"), "foreign span in {line:?}");
    }
    assert!(
        wire.body.lines().any(|l| {
            let mut f = l.split('\t');
            f.next();
            f.next();
            f.next() == Some("153") // 0x99: the remote parent
        }),
        "root span links to the remote parent:\n{}",
        wire.body
    );
    // Log records stamped with the shared id filter by ?trace=.
    let logs = get(server.addr, "/logs?trace=2882343476");
    assert_eq!(logs.status, 200);
    let records: Vec<Value> = logs
        .body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert!(!records.is_empty(), "the access record carries the trace");
    for v in &records {
        assert_eq!(v.get("trace").and_then(Value::as_u64), Some(2_882_343_476));
    }

    // An explicitly-unsampled context (flags 00) overrides the local
    // record-everything default: nothing reaches the archive.
    let unsampled = TraceContext {
        trace: TraceId(0xBEEF_0001),
        parent: SpanId(7),
        flags: 0,
    };
    let reply = post_traced(
        server.addr,
        "/query",
        &query_body,
        &unsampled.header_value(),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(
        reply.header("X-Orex-Promoted").is_none(),
        "nothing is slow, nothing promotes"
    );
    assert_eq!(
        get(server.addr, &format!("/trace/{}", 0xBEEF_0001u64)).status,
        404,
        "the propagated unsampled decision wins over the local draw"
    );

    // With a zero slow threshold every trace is "slow": a promotable
    // unsampled trace is promoted and reported on the response, but a
    // NO_PROMOTE one must never be resurrected.
    tracer.set_slow_threshold(Some(Duration::ZERO));
    let no_promote = TraceContext {
        trace: TraceId(0xBEEF_0002),
        parent: SpanId(7),
        flags: TraceContext::NO_PROMOTE,
    };
    let reply = post_traced(
        server.addr,
        "/query",
        &query_body,
        &no_promote.header_value(),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(
        reply.header("X-Orex-Promoted").is_none(),
        "NO_PROMOTE suppresses slow promotion"
    );
    assert_eq!(
        get(server.addr, &format!("/trace/{}", 0xBEEF_0002u64)).status,
        404,
        "NO_PROMOTE trace stays out of the archive"
    );

    let promotable = TraceContext {
        trace: TraceId(0xBEEF_0003),
        parent: SpanId(7),
        flags: 0,
    };
    let reply = post_traced(
        server.addr,
        "/query",
        &query_body,
        &promotable.header_value(),
    );
    tracer.set_slow_threshold(None);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let promoted = reply
        .header("X-Orex-Promoted")
        .expect("slow unsampled trace reports its promotion");
    assert!(
        promoted
            .split(',')
            .any(|id| id.parse::<u64>() == Ok(0xBEEF_0003)),
        "promoted header {promoted:?} carries the trace id"
    );
    assert_eq!(
        get(server.addr, &format!("/trace/{}", 0xBEEF_0003u64)).status,
        200,
        "promoted trace is served from the archive"
    );
}

#[test]
fn keep_alive_connections_are_reused_across_requests() {
    let _guard = serial();
    let server = TestServer::spawn_default();
    let client = orex_server::HttpClient::new(server.addr.to_string());

    for _ in 0..20 {
        let reply = client.get("/healthz").expect("request");
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body_str(), Some("ok\n"));
    }
    assert_eq!(client.requests(), 20);
    assert_eq!(
        client.connects(),
        1,
        "sequential requests share one connection"
    );
    assert!(
        client.reuse_ratio() >= 0.9,
        "reuse ratio {} below the fleet target",
        client.reuse_ratio()
    );

    // The server counted the reuses too.
    let reply = client.get("/metrics").expect("metrics");
    let metrics = reply.body_str().unwrap();
    assert!(
        metric_value(metrics, "orex_server_keepalive_reuses").unwrap_or(0.0) >= 19.0,
        "server-side reuse counter:\n{metrics}"
    );
}

#[test]
fn pipelined_requests_are_answered_in_order_on_one_socket() {
    let _guard = serial();
    let server = TestServer::spawn_default();

    // Three requests in a single write; the last one closes.
    let batch = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /no/such/route HTTP/1.1\r\nHost: t\r\n\r\n\
                  GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(batch).expect("send batch");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8_lossy(&response);

    // Bodies carry no trailing newline, so split on the protocol marker
    // rather than on lines.
    let statuses: Vec<&str> = text
        .split("HTTP/1.1 ")
        .skip(1)
        .map(|seg| seg.split_whitespace().next().unwrap_or_default())
        .collect();
    assert_eq!(
        statuses,
        ["200", "404", "200"],
        "three in-order responses on one socket:\n{text}"
    );
    assert_eq!(text.matches("ok\n").count(), 2, "{text}");
}

#[test]
fn registry_serves_datasets_by_name_and_404s_unknown_ones() {
    let _guard = serial();
    let (_, keyword) = fixture();
    let specs = vec![
        orex_server::DatasetSpec::parse("dblp=dblp-top:0.02").expect("spec"),
        orex_server::DatasetSpec::parse("bio=ds7-cancer:0.02").expect("spec"),
    ];
    let registry = orex_server::SystemRegistry::new(specs, 64, false).expect("registry");
    let server = {
        let config = TestServer::config();
        let server = Server::bind_registry(registry, config).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread: Some(thread),
        }
    };

    // Lazy: nothing is built until first use.
    let listing = get(server.addr, "/datasets");
    assert_eq!(listing.status, 200, "{}", listing.body);
    let doc = listing.json();
    assert_eq!(doc.get("default").and_then(Value::as_str), Some("dblp"));
    let datasets = doc.get("datasets").and_then(Value::as_array).unwrap();
    assert_eq!(datasets.len(), 2);
    for d in datasets {
        assert_eq!(d.get("loaded").and_then(Value::as_bool), Some(false));
    }

    // Routing by name: the dblp dataset builds on first query and the
    // session it opens remembers its owning dataset.
    let reply = post(
        server.addr,
        "/query",
        &format!("{{\"query\": \"{keyword}\", \"dataset\": \"dblp\"}}"),
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let payload = reply.json();
    assert_eq!(payload.get("dataset").and_then(Value::as_str), Some("dblp"));
    let session = payload.get("session").and_then(Value::as_u64).unwrap();
    let nodes = result_nodes(&payload);
    assert_eq!(
        get(server.addr, &format!("/explain/{session}/{}", nodes[0])).status,
        200
    );

    // The listing now shows dblp loaded with memory accounting; bio is
    // still cold.
    let doc = get(server.addr, "/datasets").json();
    let datasets = doc.get("datasets").and_then(Value::as_array).unwrap();
    let dblp = datasets
        .iter()
        .find(|d| d.get("name").and_then(Value::as_str) == Some("dblp"))
        .unwrap();
    assert_eq!(dblp.get("loaded").and_then(Value::as_bool), Some(true));
    assert!(dblp.get("memory_bytes").and_then(Value::as_u64).unwrap() > 0);
    assert!(dblp.get("nodes").and_then(Value::as_u64).unwrap() > 0);
    let bio = datasets
        .iter()
        .find(|d| d.get("name").and_then(Value::as_str) == Some("bio"))
        .unwrap();
    assert_eq!(bio.get("loaded").and_then(Value::as_bool), Some(false));
    assert!(
        doc.get("total_memory_bytes")
            .and_then(Value::as_u64)
            .unwrap()
            > 0
    );

    // Unknown dataset: typed 404, not a 500, and the server stays up.
    let reply = post(
        server.addr,
        "/query",
        &format!("{{\"query\": \"{keyword}\", \"dataset\": \"nope\"}}"),
    );
    assert_eq!(reply.status, 404, "{}", reply.body);
    assert!(
        reply
            .json()
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("unknown dataset"),
        "{}",
        reply.body
    );
    // Non-string dataset field is a client error.
    assert_eq!(
        post(server.addr, "/query", "{\"query\": \"x\", \"dataset\": 3}").status,
        400
    );
    assert_eq!(get(server.addr, "/healthz").status, 200);

    // The unknown-dataset 404's access record carries the dataset name.
    let logs = get(server.addr, "/logs?level=info").body;
    assert!(
        logs.lines().any(|l| {
            serde_json::from_str(l)
                .ok()
                .map(|v: Value| {
                    v.get("fields")
                        .and_then(|f| f.get("dataset"))
                        .and_then(Value::as_str)
                        == Some("nope")
                        && v.get("fields")
                            .and_then(|f| f.get("status"))
                            .and_then(Value::as_u64)
                            == Some(404)
                })
                .unwrap_or(false)
        }),
        "404 access record carries the dataset field:\n{logs}"
    );
}

#[test]
fn saturated_server_refuses_with_503_and_retry_after() {
    let _guard = serial();
    let mut config = TestServer::config();
    config.max_connections = 0; // every connection is over the cap
    let server = TestServer::spawn(config);

    let reply = get(server.addr, "/healthz");
    assert_eq!(reply.status, 503);
    assert_eq!(reply.header("Retry-After"), Some("1"));
    let snapshot = orex_telemetry::global().snapshot();
    assert!(
        snapshot
            .counters
            .get("server.overload_503")
            .copied()
            .unwrap_or(0)
            >= 1,
        "overload counter increments"
    );
}

#[test]
fn graceful_shutdown_reports_clean_exit() {
    let _guard = serial();
    let server = TestServer::spawn_default();
    assert_eq!(get(server.addr, "/healthz").status, 200);
    drop(server); // Drop asserts run() returned Ok after drain.
    let snapshot = orex_telemetry::global().snapshot();
    assert!(
        snapshot
            .counters
            .get("server.clean_shutdowns")
            .copied()
            .unwrap_or(0)
            >= 1
    );
}
