//! The LRU result cache.
//!
//! Keyed on the *normalized* query vector — analyzed terms sorted with
//! their weights — so "Data  Mining" and "mining data" share an entry.
//! A hit returns the converged [`SessionSnapshot`] of the original
//! execution; the handler resumes it into a fresh session, skipping the
//! power iteration entirely. Hits and misses land in the telemetry
//! counters `server.cache_hits` / `server.cache_misses`.

use crate::error::ServerError;
use orex_core::SessionSnapshot;
use orex_ir::QueryVector;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

struct CacheEntry {
    snapshot: SessionSnapshot,
    /// Logical access clock for LRU eviction.
    used_at: u64,
}

/// Bounded LRU map from normalized query key to converged snapshot.
pub struct ResultCache {
    entries: Mutex<(HashMap<String, CacheEntry>, u64)>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` distinct queries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new((HashMap::new(), 0)),
            capacity: capacity.max(1),
        }
    }

    /// Canonical cache key of a query vector: terms sorted, weights
    /// rendered with full precision.
    pub fn key(query: &QueryVector) -> String {
        let mut terms: Vec<(&str, f64)> = query.iter().collect();
        terms.sort_by(|a, b| a.0.cmp(b.0));
        let mut key = String::new();
        for (term, weight) in terms {
            key.push_str(term);
            key.push('=');
            key.push_str(&format!("{weight:.17e};"));
        }
        key
    }

    /// The cache map and clock, or a typed error when poisoned.
    fn locked(&self) -> Result<MutexGuard<'_, (HashMap<String, CacheEntry>, u64)>, ServerError> {
        self.entries
            .lock()
            .map_err(ServerError::poisoned("result cache"))
    }

    /// Looks `key` up, bumping its recency and the hit/miss counters.
    pub fn get(&self, key: &str) -> Result<Option<SessionSnapshot>, ServerError> {
        let telemetry = orex_telemetry::global();
        let mut guard = self.locked()?;
        let (entries, clock) = &mut *guard;
        *clock += 1;
        Ok(match entries.get_mut(key) {
            Some(entry) => {
                entry.used_at = *clock;
                telemetry.counter("server.cache_hits").incr();
                Some(entry.snapshot.clone())
            }
            None => {
                telemetry.counter("server.cache_misses").incr();
                None
            }
        })
    }

    /// Stores the converged snapshot for `key`, evicting the least
    /// recently used entry when full.
    pub fn put(&self, key: String, snapshot: SessionSnapshot) -> Result<(), ServerError> {
        let mut guard = self.locked()?;
        let (entries, clock) = &mut *guard;
        *clock += 1;
        if !entries.contains_key(&key) {
            while entries.len() >= self.capacity {
                let Some(victim) = entries
                    .iter()
                    .min_by_key(|(_, e)| e.used_at)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                entries.remove(&victim);
                orex_telemetry::global()
                    .counter("server.cache_evictions")
                    .incr();
            }
        }
        entries.insert(
            key,
            CacheEntry {
                snapshot,
                used_at: *clock,
            },
        );
        Ok(())
    }

    /// Entries currently cached. Observability path: recovers from a
    /// poisoned lock instead of failing.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
    use orex_ir::Query;

    fn snapshot() -> (SessionSnapshot, QueryVector) {
        let d = orex_datagen::Preset::DblpTop.generate(0.01);
        let system = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());
        let keyword = d
            .suggested_keywords
            .iter()
            .find(|kw| QuerySession::start(&system, &Query::parse(kw)).is_ok())
            .expect("some keyword ranks");
        let session = QuerySession::start(&system, &Query::parse(keyword)).unwrap();
        (session.snapshot(), session.query_vector().clone())
    }

    #[test]
    fn keys_normalize_term_order() {
        let a = QueryVector::from_weights([("data", 1.0), ("mining", 0.5)]);
        let b = QueryVector::from_weights([("mining", 0.5), ("data", 1.0)]);
        assert_eq!(ResultCache::key(&a), ResultCache::key(&b));
        let c = QueryVector::from_weights([("mining", 0.25), ("data", 1.0)]);
        assert_ne!(ResultCache::key(&a), ResultCache::key(&c));
    }

    #[test]
    fn hit_after_put_miss_before() {
        let cache = ResultCache::new(4);
        let (snap, qv) = snapshot();
        let key = ResultCache::key(&qv);
        assert!(cache.get(&key).unwrap().is_none());
        cache.put(key.clone(), snap).unwrap();
        assert!(cache.get(&key).unwrap().is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_keeps_recent() {
        let cache = ResultCache::new(2);
        let (snap, _) = snapshot();
        cache.put("a".into(), snap.clone()).unwrap();
        cache.put("b".into(), snap.clone()).unwrap();
        assert!(cache.get("a").unwrap().is_some()); // refresh a; b is now LRU
        cache.put("c".into(), snap).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").unwrap().is_some());
        assert!(cache.get("b").unwrap().is_none(), "LRU entry evicted");
        assert!(cache.get("c").unwrap().is_some());
    }
}
