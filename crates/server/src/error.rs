//! Typed server errors.
//!
//! Handlers return `Result<Response, ServerError>` instead of panicking
//! (the ORX002 rule bans `unwrap()`/`expect()`/`panic!` in this crate's
//! request paths): a failure renders as a proper HTTP 4xx/5xx response
//! instead of killing the worker thread that hit it.

use crate::http::Response;

/// A request-path failure with a well-defined HTTP rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// A shared-state mutex was poisoned by a panicking thread — the
    /// state may be inconsistent, so the request fails as a 500 rather
    /// than serving garbage. The payload names the lock.
    LockPoisoned(&'static str),
    /// The client sent something unusable (malformed field, out-of-range
    /// id): 400.
    BadRequest(String),
    /// The referenced resource does not exist (expired session, evicted
    /// trace): 404.
    NotFound(String),
    /// The feature is switched off in this process (e.g. `/profile` with
    /// the sampler disabled): 503.
    Unavailable(String),
}

impl ServerError {
    /// The HTTP status this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            ServerError::LockPoisoned(_) => 500,
            ServerError::BadRequest(_) => 400,
            ServerError::NotFound(_) => 404,
            ServerError::Unavailable(_) => 503,
        }
    }

    /// Renders the error as an HTTP error response.
    pub fn into_response(self) -> Response {
        let status = self.status();
        match self {
            ServerError::LockPoisoned(what) => Response::error(
                status,
                &format!("internal error: {what} state is unavailable"),
            ),
            ServerError::BadRequest(msg)
            | ServerError::NotFound(msg)
            | ServerError::Unavailable(msg) => Response::error(status, &msg),
        }
    }

    /// Shorthand for the poisoned-lock case, used with `map_err`.
    pub fn poisoned<G>(what: &'static str) -> impl FnOnce(G) -> ServerError {
        move |_| ServerError::LockPoisoned(what)
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::LockPoisoned(what) => write!(f, "lock poisoned: {what}"),
            ServerError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServerError::NotFound(msg) => write!(f, "not found: {msg}"),
            ServerError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_variants() {
        assert_eq!(ServerError::LockPoisoned("sessions").status(), 500);
        assert_eq!(ServerError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServerError::NotFound("x".into()).status(), 404);
        assert_eq!(ServerError::Unavailable("x".into()).status(), 503);
    }

    #[test]
    fn responses_carry_status_and_message() {
        let r = ServerError::NotFound("no such session (expired?)".into()).into_response();
        assert_eq!(r.status, 404);
        assert!(String::from_utf8_lossy(&r.body).contains("no such session"));
        let r = ServerError::LockPoisoned("session table").into_response();
        assert_eq!(r.status, 500);
        assert!(String::from_utf8_lossy(&r.body).contains("session table"));
    }
}
