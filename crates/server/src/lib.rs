//! # orex-server — the HTTP query-serving front end
//!
//! The paper frames explanation and reformulation as an *interactive*
//! loop: a user issues an authority-flow query, inspects explaining
//! subgraphs, marks relevant objects, and the system reformulates and
//! re-ranks (Sections 5–6). This crate serves that loop over HTTP/1.1
//! from a shared [`ObjectRankSystem`](orex_core::ObjectRankSystem) —
//! dependency-free, on `std::net` with a fixed worker thread pool.
//!
//! Since PR 8 one process serves *many* datasets through a
//! [`SystemRegistry`] (`POST /query` takes a `dataset` field; sessions
//! remember their owning dataset), connections are persistent HTTP/1.1
//! keep-alive with pipelining support, and a pooled [`HttpClient`] is
//! shared by the `orex-router` proxy hop and the loadgen harness.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /query` | `{"query": "...", "dataset": "...", "k": 10}` → top-k + session id |
//! | `GET /datasets` | registered datasets with load state + memory accounting |
//! | `GET /explain/<session>/<node>` | explaining subgraph + meta-path summary |
//! | `POST /feedback/<session>` | `{"objects": [ids]}` → reformulated top-k (warm start) |
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus text exposition of the global recorder |
//! | `GET /trace/<id>` | Chrome trace-event JSON of an archived request trace |
//! | `GET /logs?level=&since=&limit=` | JSON-lines tail of captured log records |
//! | `GET /profile?seconds=&format=folded\|chrome` | continuous-profiler folded stacks / Chrome trace |
//! | `GET /debug/status` | operator dashboard (HTML, or `?format=json`) with RED rows, occupancy, SLO burn rates |
//!
//! Sessions are stored as [`SessionSnapshot`](orex_core::SessionSnapshot)s
//! (owned data) in a TTL + LRU table and resumed per request; results of
//! identical normalized queries come from an LRU cache that skips the
//! power iteration entirely. Requests carry read/write timeouts, a body
//! limit, `server.*` telemetry, and a per-request trace; SIGTERM/ctrl-c
//! (or a [`ShutdownHandle`]) drains in-flight requests before exit.
//! Every response — including parse failures and 5xx errors — emits one
//! structured access-log record (`server.access`) stamped with the
//! request's trace id, served back by `GET /logs`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod http;
pub mod logs;
pub mod pool;
pub mod ranks;
pub mod registry;
pub mod server;
pub mod sessions;
pub mod status;
pub mod traces;

pub use cache::ResultCache;
pub use client::{ClientResponse, HttpClient};
pub use error::ServerError;
pub use http::{Request, Response};
pub use logs::LogArchive;
pub use pool::{PoolHandle, ThreadPool};
pub use ranks::{rates_fingerprint, CombineOutcome, RankStore};
pub use registry::{DatasetService, DatasetSpec, SystemRegistry};
pub use server::{
    install_signal_handlers, signal_shutdown_requested, Server, ServerConfig, ShutdownHandle,
};
pub use sessions::SessionTable;
pub use status::{sparkline, Occupancy, StatusBoard};
pub use traces::TraceArchive;
