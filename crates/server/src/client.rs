//! A pooled keep-alive HTTP/1.1 client.
//!
//! The router's proxy hop and the loadgen traffic model both talk to
//! orex servers over many small requests; paying a TCP connect per
//! request would dominate their latency. This client keeps finished
//! connections in a per-target idle pool and reuses them for later
//! requests, counting connects vs. requests so callers can assert a
//! reuse ratio. A reused connection that fails mid-request (the server
//! closed it while idle) is retried once on a fresh connection — new
//! connections are never retried, so a request is attempted at most
//! twice and only when the first attempt died on provably stale state.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Response cap so a misbehaving server can't balloon client memory.
const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// One idle pooled connection.
struct PooledConn {
    reader: BufReader<TcpStream>,
}

/// Keep-alive client for one target address; see the module docs.
pub struct HttpClient {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
    idle: Mutex<VecDeque<PooledConn>>,
    max_idle: usize,
    requests: AtomicU64,
    connects: AtomicU64,
    reuses: AtomicU64,
}

impl HttpClient {
    /// A client for `addr` (`host:port`) with default timeouts (1s
    /// connect, 30s request) and up to 16 idle pooled connections.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_timeouts(addr, Duration::from_secs(1), Duration::from_secs(30))
    }

    /// A client with explicit connect and request timeouts.
    pub fn with_timeouts(
        addr: impl Into<String>,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Self {
        Self {
            addr: addr.into(),
            connect_timeout,
            io_timeout,
            idle: Mutex::new(VecDeque::new()),
            max_idle: 16,
            requests: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests attempted.
    pub fn requests(&self) -> u64 {
        // ORDERING: statistics counters, no synchronization role.
        self.requests.load(Ordering::Relaxed)
    }

    /// Fresh TCP connects performed.
    pub fn connects(&self) -> u64 {
        // ORDERING: statistics counter, no synchronization role.
        self.connects.load(Ordering::Relaxed)
    }

    /// Requests served on a reused pooled connection.
    pub fn reuses(&self) -> u64 {
        // ORDERING: statistics counter, no synchronization role.
        self.reuses.load(Ordering::Relaxed)
    }

    /// Fraction of requests that reused a pooled connection.
    pub fn reuse_ratio(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            return 0.0;
        }
        self.reuses() as f64 / requests as f64
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// Performs one request, preferring a pooled connection. See the
    /// module docs for the retry contract.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`HttpClient::request`] with extra request headers — how a
    /// traced hop injects `X-Orex-Trace` (both attempts of a
    /// stale-connection retry carry the same headers).
    pub fn request_with_headers(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        // ORDERING: statistics counters, no synchronization role.
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(conn) = self.pop_idle() {
            // On error the pooled connection was stale (server closed
            // it, or it died mid-exchange); state is gone, retry fresh.
            if let Ok(response) = self.attempt(conn, method, path, headers, body) {
                // ORDERING: statistics counter only.
                self.reuses.fetch_add(1, Ordering::Relaxed);
                return Ok(response);
            }
        }
        let conn = self.connect()?;
        self.attempt(conn, method, path, headers, body)
    }

    /// Drops every idle pooled connection (e.g. after the target
    /// restarted on the same address).
    pub fn clear_idle(&self) {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    fn pop_idle(&self) -> Option<PooledConn> {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    fn park(&self, conn: PooledConn) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.max_idle {
            idle.push_back(conn);
        }
    }

    fn connect(&self) -> io::Result<PooledConn> {
        // ORDERING: statistics counter, no synchronization role.
        self.connects.fetch_add(1, Ordering::Relaxed);
        let mut last_err = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    stream.set_write_timeout(Some(self.io_timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(PooledConn {
                        reader: BufReader::new(stream),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// One request/response exchange on `conn`; parks the connection
    /// for reuse when the server kept it open.
    fn attempt(
        &self,
        mut conn: PooledConn,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        use std::fmt::Write as _;
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        if let Some(body) = body {
            let _ = write!(
                head,
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            );
        }
        head.push_str("\r\n");
        {
            let stream = conn.reader.get_mut();
            stream.write_all(head.as_bytes())?;
            if let Some(body) = body {
                stream.write_all(body)?;
            }
            stream.flush()?;
        }
        let (response, keep_alive) = read_response(&mut conn.reader)?;
        if keep_alive {
            self.park(conn);
        }
        Ok(response)
    }
}

/// Reads one response off `reader`: status line, headers, and a body
/// framed by `Content-Length` (or by connection close when the server
/// omitted it). Returns the response and whether the connection is
/// reusable.
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(ClientResponse, bool)> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let mut parts = line.split_whitespace();
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an HTTP response",
        ));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let keep_alive = !headers
        .iter()
        .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));

    let body = match content_length {
        Some(len) if len > MAX_RESPONSE_BYTES => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response body exceeds client limit",
            ));
        }
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            // Legacy framing: the body ends when the server closes.
            let mut body = Vec::new();
            reader
                .by_ref()
                .take(MAX_RESPONSE_BYTES as u64)
                .read_to_end(&mut body)?;
            return Ok((
                ClientResponse {
                    status,
                    headers,
                    body,
                },
                false,
            ));
        }
    };
    Ok((
        ClientResponse {
            status,
            headers,
            body,
        },
        keep_alive,
    ))
}
