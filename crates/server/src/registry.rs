//! The multi-dataset system registry.
//!
//! One server process can serve many datasets: the registry maps a
//! dataset *name* to a generator preset, a scale, and an optional
//! precompute artifact, and builds the corresponding
//! [`ObjectRankSystem`] plus its per-dataset [`RankStore`] lazily on
//! first use (or eagerly at startup). Each loaded dataset accounts its
//! approximate resident memory, surfaced by `GET /datasets` and the
//! status document, so an operator can see what a process holds before
//! pointing more traffic at it.
//!
//! Lookup failures are *typed*: an unknown dataset name is a 404
//! ([`ServerError::NotFound`]), a failed build is a sticky 503 — never
//! a panic or a silent fallback to the wrong dataset.

use crate::error::ServerError;
use crate::ranks::RankStore;
use orex_core::{ObjectRankSystem, SystemConfig};
use orex_datagen::Preset;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// What to build for one named dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Registry key; the `dataset` field of `POST /query` bodies.
    pub name: String,
    /// Generator preset (Table 1 of the paper).
    pub preset: Preset,
    /// Generator scale factor.
    pub scale: f64,
    /// Optional precompute artifact (from `orex precompute`), validated
    /// against the generated dataset at build time.
    pub precompute: Option<PathBuf>,
}

impl DatasetSpec {
    /// Parses the CLI spec syntax `name=preset:scale[:precompute-path]`,
    /// e.g. `dblp=dblp-top:0.05` or `bio=ds7-cancer:0.02:ranks.bin`.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (name, rest) = raw
            .split_once('=')
            .ok_or_else(|| format!("dataset spec {raw:?} must be name=preset:scale[:path]"))?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(format!(
                "dataset name {name:?} must be nonempty [a-zA-Z0-9_-]"
            ));
        }
        let mut parts = rest.splitn(3, ':');
        let preset_name = parts.next().unwrap_or_default();
        let preset = Preset::parse(preset_name)
            .ok_or_else(|| format!("unknown preset {preset_name:?} in dataset spec {raw:?}"))?;
        let scale = parts
            .next()
            .ok_or_else(|| format!("dataset spec {raw:?} is missing a scale"))?
            .parse::<f64>()
            .map_err(|_| format!("bad scale in dataset spec {raw:?}"))?;
        if !scale.is_finite() || scale <= 0.0 {
            return Err(format!("scale must be positive in dataset spec {raw:?}"));
        }
        let precompute = parts.next().map(PathBuf::from);
        Ok(Self {
            name: name.to_string(),
            preset,
            scale,
            precompute,
        })
    }
}

/// One loaded dataset: the shared system, its rank store (result cache
/// + precomputed vectors), and bookkeeping for the datasets listing.
pub struct DatasetService {
    name: String,
    preset: Preset,
    scale: f64,
    system: Arc<ObjectRankSystem>,
    ranks: RankStore,
    memory_bytes: u64,
    build_ms: u64,
    queries: AtomicU64,
}

impl std::fmt::Debug for DatasetService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetService")
            .field("name", &self.name)
            .field("preset", &self.preset)
            .field("scale", &self.scale)
            .field("memory_bytes", &self.memory_bytes)
            .finish_non_exhaustive()
    }
}

impl DatasetService {
    /// The registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The served system.
    pub fn system(&self) -> &Arc<ObjectRankSystem> {
        &self.system
    }

    /// The per-dataset result cache + precomputed vector store.
    pub fn ranks(&self) -> &RankStore {
        &self.ranks
    }

    /// Approximate resident bytes of graph + index + precompute.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Counts one query against this dataset (feeds `/datasets` and the
    /// per-dataset `server.dataset_queries` metric).
    pub fn count_query(&self) {
        // ORDERING: pure statistics counter, nothing is published under it.
        self.queries.fetch_add(1, Ordering::Relaxed);
        orex_telemetry::global()
            .counter(&format!("server.dataset.{}.queries", self.name))
            .incr();
    }

    /// Wraps an already-built system (the single-dataset `Server::bind`
    /// path and in-process tests). The precompute artifact, when given,
    /// is loaded and validated exactly like the lazy build path.
    pub fn from_system(
        name: &str,
        preset: Preset,
        scale: f64,
        system: Arc<ObjectRankSystem>,
        cache_entries: usize,
        precompute: Option<&Path>,
    ) -> Result<Arc<Self>, String> {
        let start = Instant::now();
        let ranks = RankStore::new(cache_entries, system.initial_rates());
        if let Some(path) = precompute {
            let store = orex_store::PrecomputedRanks::load(path).map_err(|e| e.to_string())?;
            validate_precompute(&store, &system)?;
            orex_telemetry::logger()
                .info("server.precompute", "precomputed ranks loaded")
                .field_str("dataset", name)
                .field_str("path", path.to_string_lossy())
                .field_u64("terms", store.len() as u64)
                .field_u64("dataset_hash", store.dataset_hash())
                .emit();
            ranks.set_precomputed(store);
        }
        let memory_bytes = estimate_memory(&system, ranks.precomputed_terms());
        Ok(Arc::new(Self {
            name: name.to_string(),
            preset,
            scale,
            system,
            ranks,
            memory_bytes,
            build_ms: start.elapsed().as_millis() as u64,
            queries: AtomicU64::new(0),
        }))
    }

    /// Builds the dataset from its spec: generate, index, wrap, load
    /// precompute.
    fn build(spec: &DatasetSpec, cache_entries: usize) -> Result<Arc<Self>, String> {
        let start = Instant::now();
        // orex::allow(ORX008): preset generation runs once per dataset
        // registration on an operator request, against schemas the
        // datagen crate constructs itself — a panic there is a datagen
        // construction bug caught by its test suite, not a
        // request-path hazard.
        let dataset = spec.preset.generate(spec.scale);
        let (nodes, edges) = dataset.sizes();
        let system = Arc::new(ObjectRankSystem::new(
            dataset.graph,
            dataset.ground_truth,
            SystemConfig::default(),
        ));
        let service = Self::from_system(
            &spec.name,
            spec.preset,
            spec.scale,
            system,
            cache_entries,
            spec.precompute.as_deref(),
        )?;
        orex_telemetry::logger()
            .info("server.registry", "dataset built")
            .field_str("dataset", &spec.name)
            .field_str("preset", spec.preset.name())
            .field_u64("nodes", nodes as u64)
            .field_u64("edges", edges as u64)
            .field_u64("memory_bytes", service.memory_bytes)
            .field_u64("build_ms", start.elapsed().as_millis() as u64)
            .emit();
        Ok(service)
    }
}

/// Checks a precompute artifact against the served system: the graph
/// hash, node count, and convergence parameters must match — a
/// mismatched artifact is a build error, not a silent mis-ranking.
pub fn validate_precompute(
    store: &orex_store::PrecomputedRanks,
    system: &ObjectRankSystem,
) -> Result<(), String> {
    let graph_hash = orex_store::fnv1a(&orex_store::encode_graph(system.graph()));
    if store.dataset_hash() != graph_hash {
        return Err(format!(
            "precompute artifact was built for a different dataset \
             (artifact {:#x}, serving {:#x})",
            store.dataset_hash(),
            graph_hash
        ));
    }
    if store.node_count() != system.graph().node_count() {
        return Err(format!(
            "precompute artifact has {} nodes, graph has {}",
            store.node_count(),
            system.graph().node_count()
        ));
    }
    let rank = &system.config().rank;
    if store.damping() != rank.damping || store.epsilon() != rank.epsilon {
        return Err(format!(
            "precompute artifact converged under damping {} / epsilon {}, \
             system runs damping {} / epsilon {}",
            store.damping(),
            store.epsilon(),
            rank.damping,
            rank.epsilon
        ));
    }
    Ok(())
}

/// Rough resident-set estimate for one loaded dataset; the point is
/// relative magnitude on `/datasets`, not allocator-exact bytes.
fn estimate_memory(system: &ObjectRankSystem, precompute_terms: usize) -> u64 {
    let nodes = system.graph().node_count() as u64;
    let edges = system.graph().edge_count() as u64;
    let index = system.index();
    let mut postings = 0u64;
    for t in 0..index.vocabulary_size() {
        postings += u64::from(index.df(t as orex_ir::TermId));
    }
    // Graph adjacency + labels, transfer weights, index postings +
    // vocabulary, precomputed f64 vectors, and the global-scores vector.
    nodes * 64
        + edges * 24
        + postings * 12
        + index.vocabulary_size() as u64 * 48
        + precompute_terms as u64 * nodes * 8
        + nodes * 8
}

/// A slot holds the spec plus a once-built service. A failed build is
/// sticky (`Err` stays cached): the dataset was misconfigured at spawn
/// time and retrying per-request would turn one operator mistake into a
/// build storm.
struct Slot {
    spec: DatasetSpec,
    service: OnceLock<Result<Arc<DatasetService>, String>>,
}

/// Name → dataset map for one server process; see the module docs.
pub struct SystemRegistry {
    slots: Vec<Slot>,
    cache_entries: usize,
    /// Spawn a backfill builder for datasets with precompute artifacts.
    backfill: bool,
    backfill_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SystemRegistry {
    /// A registry over `specs` (first entry is the default dataset for
    /// requests that don't name one). Names must be unique.
    pub fn new(
        specs: Vec<DatasetSpec>,
        cache_entries: usize,
        backfill: bool,
    ) -> Result<Self, String> {
        if specs.is_empty() {
            return Err("registry needs at least one dataset spec".into());
        }
        for (i, spec) in specs.iter().enumerate() {
            if specs[..i].iter().any(|s| s.name == spec.name) {
                return Err(format!("duplicate dataset name {:?}", spec.name));
            }
        }
        Ok(Self {
            slots: specs
                .into_iter()
                .map(|spec| Slot {
                    spec,
                    service: OnceLock::new(),
                })
                .collect(),
            cache_entries,
            backfill,
            backfill_threads: Mutex::new(Vec::new()),
        })
    }

    /// A single-dataset registry around an already-built service (the
    /// `Server::bind` compatibility path).
    pub fn single(service: Arc<DatasetService>, backfill: bool) -> Self {
        let slot = Slot {
            spec: DatasetSpec {
                name: service.name().to_string(),
                preset: service.preset,
                scale: service.scale,
                precompute: None,
            },
            service: OnceLock::new(),
        };
        let registry = Self {
            slots: vec![slot],
            cache_entries: 0,
            backfill,
            backfill_threads: Mutex::new(Vec::new()),
        };
        let _ = registry.slots[0].service.set(Ok(Arc::clone(&service)));
        registry.spawn_backfill(&service);
        registry
    }

    /// The dataset used when `POST /query` does not name one.
    pub fn default_name(&self) -> &str {
        &self.slots[0].spec.name
    }

    /// All registered dataset names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.spec.name.as_str()).collect()
    }

    /// Resolves `name`, building the dataset on first use. Unknown
    /// names are a typed 404; a failed build answers 503 (sticky).
    pub fn get(&self, name: &str) -> Result<Arc<DatasetService>, ServerError> {
        let Some(slot) = self.slots.iter().find(|s| s.spec.name == name) else {
            return Err(ServerError::NotFound(format!(
                "unknown dataset {name:?} (serving: {})",
                self.names().join(", ")
            )));
        };
        let mut built_now = false;
        let result = slot.service.get_or_init(|| {
            built_now = true;
            DatasetService::build(&slot.spec, self.cache_entries)
        });
        match result {
            Ok(service) => {
                if built_now {
                    self.spawn_backfill(service);
                }
                Ok(Arc::clone(service))
            }
            Err(why) => Err(ServerError::Unavailable(format!(
                "dataset {name:?} failed to build: {why}"
            ))),
        }
    }

    /// The already-built service for `name`, if any; never builds.
    pub fn get_if_loaded(&self, name: &str) -> Option<Arc<DatasetService>> {
        self.slots
            .iter()
            .find(|s| s.spec.name == name)?
            .service
            .get()?
            .as_ref()
            .ok()
            .cloned()
    }

    /// Builds every registered dataset now; the first failure aborts.
    pub fn build_all(&self) -> Result<(), String> {
        for slot in &self.slots {
            self.get(&slot.spec.name)
                .map_err(|e| format!("{}: {e}", slot.spec.name))?;
        }
        Ok(())
    }

    /// Summed memory estimate across loaded datasets.
    pub fn total_memory_bytes(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| s.service.get())
            .filter_map(|r| r.as_ref().ok())
            .map(|svc| svc.memory_bytes)
            .sum()
    }

    /// The `GET /datasets` document: one row per registered dataset
    /// with load state and accounting.
    pub fn list_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .slots
            .iter()
            .map(|slot| {
                let base = serde_json::json!({
                    "name": slot.spec.name.clone(),
                    "preset": slot.spec.preset.name(),
                    "scale": slot.spec.scale,
                    "default": slot.spec.name == self.default_name(),
                });
                match slot.service.get() {
                    Some(Ok(svc)) => serde_json::json!({
                        "name": slot.spec.name.clone(),
                        "preset": slot.spec.preset.name(),
                        "scale": slot.spec.scale,
                        "default": slot.spec.name == self.default_name(),
                        "loaded": true,
                        "nodes": svc.system.graph().node_count() as u64,
                        "edges": svc.system.graph().edge_count() as u64,
                        "memory_bytes": svc.memory_bytes,
                        "build_ms": svc.build_ms,
                        "precompute_terms": svc.ranks.precomputed_terms() as u64,
                        "cached_results": svc.ranks.cached_results() as u64,
                        // ORDERING: statistics read, no synchronization role.
                        "queries": svc.queries.load(Ordering::Relaxed),
                    }),
                    Some(Err(why)) => serde_json::json!({
                        "name": slot.spec.name.clone(),
                        "preset": slot.spec.preset.name(),
                        "scale": slot.spec.scale,
                        "default": slot.spec.name == self.default_name(),
                        "loaded": false,
                        "error": why,
                    }),
                    None => {
                        let mut row = base;
                        if let Some(obj) = row.as_object_mut() {
                            obj.insert("loaded".into(), serde_json::Value::Bool(false));
                        }
                        row
                    }
                }
            })
            .collect();
        serde_json::json!({
            "default": self.default_name(),
            "total_memory_bytes": self.total_memory_bytes(),
            "datasets": rows,
        })
    }

    /// Spawns the backfill builder for `service` when it holds a
    /// precompute store and backfill is enabled.
    fn spawn_backfill(&self, service: &Arc<DatasetService>) {
        if !self.backfill || service.ranks.precomputed_terms() == 0 {
            return;
        }
        let (tx, rx) = std::sync::mpsc::channel::<crate::ranks::BackfillJob>();
        service.ranks.set_backfill_sender(tx);
        let service = Arc::clone(service);
        let spawned = std::thread::Builder::new()
            .name(format!("orex-backfill-{}", service.name))
            .spawn(move || backfill_loop(&service, rx));
        if let Ok(handle) = spawned {
            self.backfill_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(handle);
        }
    }

    /// Closes every backfill queue and joins the builders. Called once
    /// on server drain, after in-flight requests finished (they may
    /// still enqueue).
    pub fn shutdown(&self) {
        for slot in &self.slots {
            if let Some(Ok(svc)) = slot.service.get() {
                svc.ranks.close_backfill();
            }
        }
        let handles: Vec<_> = self
            .backfill_threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// The backfill builder: drains term batches from the queue, runs them
/// through the batched kernel (global warm start, same parameters as the
/// offline build) and installs the finished vectors. Exits when every
/// sender is dropped (server shutdown).
fn backfill_loop(
    service: &DatasetService,
    rx: std::sync::mpsc::Receiver<crate::ranks::BackfillJob>,
) {
    let system = service.system();
    let scorer = &system.config().okapi;
    let params = system.config().rank;
    while let Ok(job) = rx.recv() {
        let terms = job.terms;
        // The builder's work joins the trace of the request that queued
        // it (a remote-parent root on this thread), so a fleet trace
        // shows the deferred backfill a miss triggered, not just the
        // miss itself.
        let mut tspan = orex_telemetry::tracer().span_with_context("server.backfill", job.context);
        if tspan.is_recording() {
            tspan.attr_str("reason", "precompute_miss");
            tspan.attr_u64("terms", terms.len() as u64);
        }
        let _span = orex_telemetry::global().span("server.backfill_us");
        let matrix =
            orex_authority::TransitionMatrix::new(system.transfer(), system.initial_rates());
        let mut kept: Vec<(String, f64)> = Vec::with_capacity(terms.len());
        let mut bases = Vec::with_capacity(terms.len());
        let mut skipped: Vec<String> = Vec::new();
        for term in terms {
            match orex_store::term_base(system.index(), scorer, &term) {
                Some((mass, base)) => {
                    kept.push((term, mass));
                    bases.push(base);
                }
                None => skipped.push(term),
            }
        }
        // Terms without base sets can never combine; unmark them so a
        // rebuilt index could retry, and skip the kernel entirely.
        service.ranks().clear_in_flight(&skipped);
        if bases.is_empty() {
            continue;
        }
        let results =
            orex_authority::power_iteration_batch(&matrix, &bases, &params, system.global_scores());
        let built: Vec<(String, f64, Vec<f64>)> = kept
            .into_iter()
            .zip(results)
            .map(|((term, mass), result)| (term, mass, result.scores))
            .collect();
        orex_telemetry::logger()
            .info("server.backfill", "backfilled precomputed vectors")
            .field_str("dataset", service.name())
            .field_u64("terms", built.len() as u64)
            .field_bool("backfill", true)
            .emit();
        service.ranks().insert_backfilled(built);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_roundtrip() {
        let s = DatasetSpec::parse("dblp=dblp-top:0.05").unwrap();
        assert_eq!(s.name, "dblp");
        assert_eq!(s.preset, Preset::DblpTop);
        assert!((s.scale - 0.05).abs() < 1e-12);
        assert!(s.precompute.is_none());

        let s = DatasetSpec::parse("bio=ds7-cancer:0.02:/tmp/ranks.bin").unwrap();
        assert_eq!(s.preset, Preset::Ds7Cancer);
        assert_eq!(s.precompute.as_deref(), Some(Path::new("/tmp/ranks.bin")));
    }

    #[test]
    fn spec_parse_rejects_malformed() {
        for bad in [
            "no-equals",
            "=dblp-top:0.1",
            "x=nope:0.1",
            "x=dblp-top",
            "x=dblp-top:zero",
            "x=dblp-top:-1",
            "bad name=dblp-top:0.1",
        ] {
            assert!(DatasetSpec::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn unknown_dataset_is_typed_not_found() {
        let registry = SystemRegistry::new(
            vec![DatasetSpec::parse("a=dblp-top:0.01").unwrap()],
            16,
            false,
        )
        .unwrap();
        match registry.get("nope") {
            Err(ServerError::NotFound(msg)) => assert!(msg.contains("nope"), "{msg}"),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn lazy_build_and_listing() {
        let registry = SystemRegistry::new(
            vec![
                DatasetSpec::parse("a=dblp-top:0.01").unwrap(),
                DatasetSpec::parse("b=ds7:0.01").unwrap(),
            ],
            16,
            false,
        )
        .unwrap();
        assert_eq!(registry.default_name(), "a");
        let doc = registry.list_json();
        let rows = doc.get("datasets").and_then(|d| d.as_array()).unwrap();
        assert!(rows
            .iter()
            .all(|r| r.get("loaded") == Some(&serde_json::Value::Bool(false))));

        let a = registry.get("a").unwrap();
        assert_eq!(a.name(), "a");
        assert!(a.memory_bytes() > 0);
        assert!(registry.get_if_loaded("a").is_some());
        assert!(registry.get_if_loaded("b").is_none());

        a.count_query();
        let doc = registry.list_json();
        let rows = doc.get("datasets").and_then(|d| d.as_array()).unwrap();
        let row_a = rows
            .iter()
            .find(|r| r.get("name").and_then(|n| n.as_str()) == Some("a"))
            .unwrap();
        assert_eq!(row_a.get("loaded"), Some(&serde_json::Value::Bool(true)));
        assert_eq!(row_a.get("queries").and_then(|q| q.as_u64()), Some(1));
        assert!(registry.total_memory_bytes() >= a.memory_bytes());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = SystemRegistry::new(
            vec![
                DatasetSpec::parse("a=dblp-top:0.01").unwrap(),
                DatasetSpec::parse("a=ds7:0.01").unwrap(),
            ],
            16,
            false,
        );
        assert!(err.is_err());
    }
}
