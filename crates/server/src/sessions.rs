//! The in-memory session table.
//!
//! `QuerySession` borrows the system, so live sessions can't cross
//! request boundaries. Instead the table stores each session as a
//! [`SessionSnapshot`] — plain owned data — and handlers resume it
//! against the shared system via `QuerySession::resume`, which costs a
//! weight recomputation rather than a power iteration. Entries expire
//! after a TTL of disuse and the table holds at most `max_entries`
//! sessions, evicting least-recently-used first.

use orex_core::SessionSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Entry {
    snapshot: SessionSnapshot,
    last_used: Instant,
}

/// TTL + LRU bounded session store; see the module docs.
pub struct SessionTable {
    entries: Mutex<HashMap<u64, Entry>>,
    next_id: AtomicU64,
    ttl: Duration,
    max_entries: usize,
}

impl SessionTable {
    /// A table whose entries expire after `ttl` of disuse and which
    /// holds at most `max_entries` sessions (minimum 1).
    pub fn new(ttl: Duration, max_entries: usize) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            ttl,
            max_entries: max_entries.max(1),
        }
    }

    /// Stores a snapshot as a new session and returns its id.
    pub fn insert(&self, snapshot: SessionSnapshot) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let telemetry = orex_telemetry::global();
        let mut entries = self.entries.lock().unwrap();
        Self::sweep(&mut entries, now, self.ttl);
        while entries.len() >= self.max_entries {
            let Some((&victim, _)) = entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            entries.remove(&victim);
            telemetry.counter("server.sessions_evicted").incr();
        }
        entries.insert(
            id,
            Entry {
                snapshot,
                last_used: now,
            },
        );
        telemetry.counter("server.sessions_created").incr();
        telemetry
            .gauge("server.sessions_live")
            .set(entries.len() as f64);
        id
    }

    /// Clones the snapshot for `id` and refreshes its TTL clock, or
    /// `None` if the id is unknown or the entry has expired.
    pub fn get(&self, id: u64) -> Option<SessionSnapshot> {
        let now = Instant::now();
        let mut entries = self.entries.lock().unwrap();
        Self::sweep(&mut entries, now, self.ttl);
        let entry = entries.get_mut(&id)?;
        entry.last_used = now;
        Some(entry.snapshot.clone())
    }

    /// Replaces the snapshot for `id` (after a feedback round). Returns
    /// false if the session vanished (expired/evicted) in the meantime —
    /// the caller re-inserts in that case.
    pub fn update(&self, id: u64, snapshot: SessionSnapshot) -> bool {
        let mut entries = self.entries.lock().unwrap();
        match entries.get_mut(&id) {
            Some(entry) => {
                entry.snapshot = snapshot;
                entry.last_used = Instant::now();
                true
            }
            None => false,
        }
    }

    /// Live (unexpired) session count.
    pub fn len(&self) -> usize {
        let mut entries = self.entries.lock().unwrap();
        Self::sweep(&mut entries, Instant::now(), self.ttl);
        entries.len()
    }

    /// True when no live sessions remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sweep(entries: &mut HashMap<u64, Entry>, now: Instant, ttl: Duration) {
        let before = entries.len();
        entries.retain(|_, e| now.duration_since(e.last_used) < ttl);
        let expired = before - entries.len();
        if expired > 0 {
            let telemetry = orex_telemetry::global();
            telemetry
                .counter("server.sessions_expired")
                .add(expired as u64);
            telemetry
                .gauge("server.sessions_live")
                .set(entries.len() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
    use orex_ir::Query;

    fn snapshot() -> SessionSnapshot {
        let d = orex_datagen::Preset::DblpTop.generate(0.01);
        let system = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());
        let keyword = d
            .suggested_keywords
            .iter()
            .find(|kw| QuerySession::start(&system, &Query::parse(kw)).is_ok())
            .expect("some keyword ranks");
        QuerySession::start(&system, &Query::parse(keyword))
            .unwrap()
            .snapshot()
    }

    #[test]
    fn insert_get_update_roundtrip() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let snap = snapshot();
        let id = table.insert(snap.clone());
        assert!(table.get(id).is_some());
        assert!(table.update(id, snap));
        assert_eq!(table.len(), 1);
        assert!(table.get(id + 999).is_none());
        assert!(!table.update(id + 999, snapshot()));
    }

    #[test]
    fn entries_expire_after_ttl() {
        let table = SessionTable::new(Duration::from_millis(20), 8);
        let id = table.insert(snapshot());
        assert!(table.get(id).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(table.get(id).is_none(), "expired session must vanish");
        assert!(table.is_empty());
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let table = SessionTable::new(Duration::from_secs(60), 2);
        let snap = snapshot();
        let a = table.insert(snap.clone());
        std::thread::sleep(Duration::from_millis(5));
        let b = table.insert(snap.clone());
        std::thread::sleep(Duration::from_millis(5));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(table.get(a).is_some());
        let c = table.insert(snap);
        assert_eq!(table.len(), 2);
        assert!(table.get(a).is_some(), "recently used survives");
        assert!(table.get(b).is_none(), "LRU entry evicted");
        assert!(table.get(c).is_some());
    }
}
