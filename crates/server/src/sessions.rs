//! The in-memory session table.
//!
//! `QuerySession` borrows the system, so live sessions can't cross
//! request boundaries. Instead the table stores each session as a
//! [`SessionSnapshot`] — plain owned data — and handlers resume it
//! against the shared system via `QuerySession::resume`, which costs a
//! weight recomputation rather than a power iteration. Entries expire
//! after a TTL of disuse and the table holds at most `max_entries`
//! sessions, evicting least-recently-used first.

use crate::error::ServerError;
use orex_core::SessionSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

struct Entry {
    /// Name of the dataset the session ranks against — `/explain` and
    /// `/feedback` carry only a session id, so the table is what maps a
    /// session back to its owning dataset in a multi-dataset process.
    dataset: Arc<str>,
    snapshot: SessionSnapshot,
    last_used: Instant,
}

/// TTL + LRU bounded session store; see the module docs.
pub struct SessionTable {
    entries: Mutex<HashMap<u64, Entry>>,
    next_id: AtomicU64,
    ttl: Duration,
    max_entries: usize,
}

impl SessionTable {
    /// A table whose entries expire after `ttl` of disuse and which
    /// holds at most `max_entries` sessions (minimum 1).
    pub fn new(ttl: Duration, max_entries: usize) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            ttl,
            max_entries: max_entries.max(1),
        }
    }

    /// The table's entry map, or a typed error when a panicking thread
    /// poisoned it mid-update (the map may then be inconsistent, so
    /// request paths refuse it rather than serving garbage).
    fn locked(&self) -> Result<MutexGuard<'_, HashMap<u64, Entry>>, ServerError> {
        self.entries
            .lock()
            .map_err(ServerError::poisoned("session table"))
    }

    /// Stores a snapshot as a new session owned by `dataset` and
    /// returns its id.
    pub fn insert(&self, dataset: &str, snapshot: SessionSnapshot) -> Result<u64, ServerError> {
        // ORDERING: pure id allocation — nothing is published under this
        // counter, uniqueness is all that matters.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let telemetry = orex_telemetry::global();
        let mut entries = self.locked()?;
        Self::sweep(&mut entries, now, self.ttl);
        while entries.len() >= self.max_entries {
            let Some((&victim, _)) = entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            entries.remove(&victim);
            telemetry.counter("server.sessions_evicted").incr();
        }
        entries.insert(
            id,
            Entry {
                dataset: Arc::from(dataset),
                snapshot,
                last_used: now,
            },
        );
        telemetry.counter("server.sessions_created").incr();
        telemetry
            .gauge("server.sessions_live")
            .set(entries.len() as f64);
        Ok(id)
    }

    /// Clones the snapshot for `id` (with its owning dataset name) and
    /// refreshes its TTL clock; `Ok(None)` if the id is unknown or the
    /// entry has expired.
    pub fn get(&self, id: u64) -> Result<Option<(Arc<str>, SessionSnapshot)>, ServerError> {
        let now = Instant::now();
        let mut entries = self.locked()?;
        Self::sweep(&mut entries, now, self.ttl);
        Ok(entries.get_mut(&id).map(|entry| {
            entry.last_used = now;
            (Arc::clone(&entry.dataset), entry.snapshot.clone())
        }))
    }

    /// Replaces the snapshot for `id` (after a feedback round). Returns
    /// false if the session vanished (expired/evicted) in the meantime —
    /// the caller re-inserts in that case.
    pub fn update(&self, id: u64, snapshot: SessionSnapshot) -> Result<bool, ServerError> {
        let mut entries = self.locked()?;
        Ok(match entries.get_mut(&id) {
            Some(entry) => {
                entry.snapshot = snapshot;
                entry.last_used = Instant::now();
                true
            }
            None => false,
        })
    }

    /// Live (unexpired) session count. Observability path: recovers the
    /// map from a poisoned lock instead of failing, since a count can do
    /// no harm.
    pub fn len(&self) -> usize {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        Self::sweep(&mut entries, Instant::now(), self.ttl);
        entries.len()
    }

    /// True when no live sessions remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sweep(entries: &mut HashMap<u64, Entry>, now: Instant, ttl: Duration) {
        let before = entries.len();
        entries.retain(|_, e| now.duration_since(e.last_used) < ttl);
        let expired = before - entries.len();
        if expired > 0 {
            let telemetry = orex_telemetry::global();
            telemetry
                .counter("server.sessions_expired")
                .add(expired as u64);
            telemetry
                .gauge("server.sessions_live")
                .set(entries.len() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
    use orex_ir::Query;

    fn snapshot() -> SessionSnapshot {
        let d = orex_datagen::Preset::DblpTop.generate(0.01);
        let system = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());
        let keyword = d
            .suggested_keywords
            .iter()
            .find(|kw| QuerySession::start(&system, &Query::parse(kw)).is_ok())
            .expect("some keyword ranks");
        QuerySession::start(&system, &Query::parse(keyword))
            .unwrap()
            .snapshot()
    }

    #[test]
    fn insert_get_update_roundtrip() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let snap = snapshot();
        let id = table.insert("dblp", snap.clone()).unwrap();
        let (dataset, _) = table.get(id).unwrap().expect("session present");
        assert_eq!(&*dataset, "dblp", "entry remembers its owning dataset");
        assert!(table.update(id, snap).unwrap());
        assert_eq!(table.len(), 1);
        assert!(table.get(id + 999).unwrap().is_none());
        assert!(!table.update(id + 999, snapshot()).unwrap());
    }

    #[test]
    fn entries_expire_after_ttl() {
        let table = SessionTable::new(Duration::from_millis(20), 8);
        let id = table.insert("d", snapshot()).unwrap();
        assert!(table.get(id).unwrap().is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            table.get(id).unwrap().is_none(),
            "expired session must vanish"
        );
        assert!(table.is_empty());
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let table = SessionTable::new(Duration::from_secs(60), 2);
        let snap = snapshot();
        let a = table.insert("d", snap.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let b = table.insert("d", snap.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(table.get(a).unwrap().is_some());
        let c = table.insert("d", snap).unwrap();
        assert_eq!(table.len(), 2);
        assert!(table.get(a).unwrap().is_some(), "recently used survives");
        assert!(table.get(b).unwrap().is_none(), "LRU entry evicted");
        assert!(table.get(c).unwrap().is_some());
    }

    #[test]
    fn poisoned_lock_is_a_typed_error() {
        use std::sync::Arc;
        let table = Arc::new(SessionTable::new(Duration::from_secs(60), 8));
        let t2 = Arc::clone(&table);
        // Poison the entries mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = t2.entries.lock().unwrap();
            panic!("poison the session table");
        })
        .join();
        match table.get(1) {
            Err(ServerError::LockPoisoned(what)) => assert_eq!(what, "session table"),
            other => panic!("expected LockPoisoned, got {other:?}"),
        }
        // len() recovers instead of failing.
        assert_eq!(table.len(), 0);
    }
}
