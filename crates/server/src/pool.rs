//! A fixed worker thread pool over a shared job channel.
//!
//! `std`-only (vendored-deps policy): workers block on an
//! `mpsc::Receiver` behind a mutex; dropping the pool closes the channel
//! and joins every worker, so in-flight jobs always run to completion —
//! which is exactly the drain semantics graceful shutdown needs.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool; see the module docs.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// A clonable submission handle onto a pool's job queue, so running
/// jobs can re-queue follow-up work (the keep-alive connection loop
/// parks a connection and resubmits it, round-robining workers across
/// live connections). Holding a handle keeps the queue open: drop all
/// handles before expecting [`ThreadPool::join`] to finish.
#[derive(Clone)]
pub struct PoolHandle {
    sender: Sender<Job>,
}

impl PoolHandle {
    /// Queues `job`; returns false when the pool has shut down (the
    /// job is dropped).
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        self.sender.send(Box::new(job)).is_ok()
    }
}

impl ThreadPool {
    /// Spawns `threads` workers (minimum 1). Fails with the OS error if
    /// a worker thread cannot be spawned; already-spawned workers are
    /// joined cleanly on that path (dropping the sender closes the
    /// channel they block on).
    pub fn new(threads: usize) -> std::io::Result<Self> {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("orex-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self {
            sender: Some(sender),
            workers,
        })
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues `job`; some idle worker picks it up. Jobs submitted after
    /// shutdown began are silently dropped.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(Box::new(job));
        }
    }

    /// A clonable submission handle; `None` once `join` has begun.
    pub fn handle(&self) -> Option<PoolHandle> {
        self.sender.as_ref().map(|sender| PoolHandle {
            sender: sender.clone(),
        })
    }

    /// Closes the queue and joins every worker, running all queued and
    /// in-flight jobs to completion first.
    pub fn join(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.join();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while waiting for a job, never while
        // running one, so workers serve jobs concurrently. A poisoned
        // lock is recovered: the receiver itself is still sound (its
        // state lives in the channel, not the guard), and one panicking
        // job must not wedge every other worker.
        let job = match receiver
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            // orex::allow(ORX009): the mutex exists solely to share the
            // receiver between workers — blocking in recv() while
            // holding it is the intended serialization (only one idle
            // worker waits at a time), and the guard is released before
            // the job runs.
            .recv()
        {
            Ok(job) => job,
            Err(_) => return, // channel closed: shutdown
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs_across_workers() {
        let pool = ThreadPool::new(4).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // join waits for every job
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn join_drains_in_flight_jobs() {
        let mut pool = ThreadPool::new(2).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 8);
        // Jobs after join are dropped, not panicking.
        pool.execute(|| unreachable!("queued after shutdown"));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0).unwrap();
        assert_eq!(pool.threads(), 1);
    }
}
