//! The unified serving-path rank store.
//!
//! Before this module, the server had two disjoint caches that could
//! disagree: the LRU [`ResultCache`] of converged session snapshots, and
//! `orex-store`'s precomputed rank vectors — keyed but never consulted
//! on the result path. [`RankStore`] is the single lookup the query
//! handler goes through, with two invariants:
//!
//! 1. **Rates-stamped result keys.** Every snapshot is cached under the
//!    normalized query *and* an FNV-1a fingerprint of its transfer
//!    rates. A feedback round trains the rates, so a reformulated
//!    session's snapshot can never be served to a fresh initial query
//!    that normalizes to the same term/weight key — the contradictory
//!    entry the old scheme permitted.
//! 2. **Precompute-before-iterate.** On a result-cache miss, a query
//!    whose terms are covered by the precomputed store is answered by
//!    the exact linear combination (the paper's Linearity property, see
//!    [`PrecomputedRanks::combine`]) instead of a live power iteration;
//!    uncovered terms are queued for background backfill so the *next*
//!    occurrence combines.

use crate::cache::ResultCache;
use crate::error::ServerError;
use orex_core::SessionSnapshot;
use orex_graph::TransferRates;
use orex_ir::{InvertedIndex, QueryVector, Scorer};
use orex_store::{fnv1a, PrecomputedRanks};
use std::collections::HashSet;
use std::sync::mpsc::Sender;
use std::sync::{Mutex, PoisonError, RwLock};

/// One queued backfill batch: the uncovered terms plus the trace
/// context of the request that discovered them, so the builder thread's
/// work shows up as part of that request's (distributed) trace instead
/// of running untraced.
pub struct BackfillJob {
    /// Terms to build vectors for.
    pub terms: Vec<String>,
    /// Context of the originating request span, if one was open when
    /// the miss was queued.
    pub context: Option<orex_telemetry::TraceContext>,
}

/// Outcome of consulting the precomputed vectors for a query.
pub enum CombineOutcome {
    /// Covered: the exact combined score vector.
    Hit(Vec<f64>),
    /// Not covered: the index-matching terms that lack vectors (queued
    /// for backfill by the caller via [`RankStore::request_backfill`]).
    Miss(Vec<String>),
    /// No precomputed store is loaded (or the query has no usable terms).
    Unavailable,
}

/// One stop for every way the serving path can obtain scores without a
/// live power iteration.
pub struct RankStore {
    results: ResultCache,
    precomputed: RwLock<Option<PrecomputedRanks>>,
    /// Fingerprint of the system's initial rates — the rates every
    /// initial query runs under.
    initial_fingerprint: u64,
    /// Backfill queue to the builder thread; `None` until the server
    /// starts one (or after shutdown).
    backfill: Mutex<Option<Sender<BackfillJob>>>,
    /// Terms already queued, so repeated misses don't re-queue work the
    /// builder hasn't finished yet.
    in_flight: Mutex<HashSet<String>>,
}

/// Stable fingerprint of a rates vector (order is the schema's transfer
/// type order, so equal rates hash equal).
pub fn rates_fingerprint(rates: &TransferRates) -> u64 {
    let mut bytes = Vec::with_capacity(rates.as_slice().len() * 8);
    for &r in rates.as_slice() {
        bytes.extend_from_slice(&r.to_le_bytes());
    }
    fnv1a(&bytes)
}

impl RankStore {
    /// A store with an LRU result cache of `capacity` snapshots, keyed
    /// against `initial_rates`.
    pub fn new(capacity: usize, initial_rates: &TransferRates) -> Self {
        Self {
            results: ResultCache::new(capacity),
            precomputed: RwLock::new(None),
            initial_fingerprint: rates_fingerprint(initial_rates),
            backfill: Mutex::new(None),
            in_flight: Mutex::new(HashSet::new()),
        }
    }

    /// Cache key for a query under a specific rates fingerprint.
    fn key(fingerprint: u64, query: &QueryVector) -> String {
        format!("{fingerprint:016x}|{}", ResultCache::key(query))
    }

    /// Installs (or replaces) the precomputed vector store.
    pub fn set_precomputed(&self, store: PrecomputedRanks) {
        let telemetry = orex_telemetry::global();
        telemetry
            .gauge("server.precompute_terms")
            .set(store.len() as f64);
        *self
            .precomputed
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(store);
    }

    /// Number of precomputed term vectors currently loaded.
    pub fn precomputed_terms(&self) -> usize {
        self.precomputed
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map_or(0, PrecomputedRanks::len)
    }

    /// Looks up the cached snapshot of an *initial* query (initial-rates
    /// key). Feedback-trained snapshots live under their own fingerprint
    /// and cannot satisfy this lookup.
    pub fn lookup_initial(
        &self,
        query: &QueryVector,
    ) -> Result<Option<SessionSnapshot>, ServerError> {
        self.results
            .get(&Self::key(self.initial_fingerprint, query))
    }

    /// Caches a snapshot under the fingerprint of *its own* rates: an
    /// initial-query snapshot becomes visible to [`Self::lookup_initial`],
    /// a feedback-trained one is keyed apart and never conflated.
    pub fn store(
        &self,
        query: &QueryVector,
        snapshot: &SessionSnapshot,
    ) -> Result<(), ServerError> {
        let fingerprint = rates_fingerprint(snapshot.rates());
        self.results
            .put(Self::key(fingerprint, query), snapshot.clone())
    }

    /// Consults the precomputed vectors for an exact combined answer.
    pub fn combine(
        &self,
        query: &QueryVector,
        index: &InvertedIndex,
        scorer: &dyn Scorer,
    ) -> CombineOutcome {
        let telemetry = orex_telemetry::global();
        let guard = self
            .precomputed
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(store) = guard.as_ref() else {
            return CombineOutcome::Unavailable;
        };
        let missing = store.missing_terms(query, index);
        if missing.is_empty() {
            if let Some(scores) = store.combine(query, scorer) {
                telemetry.counter("server.precompute_hits").incr();
                return CombineOutcome::Hit(scores);
            }
            // Covered but nothing combinable: no query term occurs in
            // the corpus, which the live path reports as an empty base
            // set — let it.
            return CombineOutcome::Unavailable;
        }
        telemetry.counter("server.precompute_misses").incr();
        CombineOutcome::Miss(missing)
    }

    /// Hands the backfill queue to the store. The server calls this when
    /// it spawns the builder thread.
    pub fn set_backfill_sender(&self, sender: Sender<BackfillJob>) {
        *self.backfill.lock().unwrap_or_else(PoisonError::into_inner) = Some(sender);
    }

    /// Drops the backfill queue so the builder thread's `recv` ends —
    /// part of graceful shutdown.
    pub fn close_backfill(&self) {
        self.backfill
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }

    /// Queues uncovered terms for background building, capturing the
    /// calling thread's trace context so the builder's span joins the
    /// originating request's trace. Terms already in flight are
    /// skipped; returns how many were newly queued.
    pub fn request_backfill(&self, terms: Vec<String>) -> usize {
        let telemetry = orex_telemetry::global();
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let fresh: Vec<String> = terms
            .into_iter()
            .filter(|t| !in_flight.contains(t))
            .collect();
        if fresh.is_empty() {
            return 0;
        }
        let guard = self.backfill.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(sender) = guard.as_ref() else {
            return 0;
        };
        let count = fresh.len();
        for t in &fresh {
            in_flight.insert(t.clone());
        }
        let job = BackfillJob {
            terms: fresh,
            context: orex_telemetry::tracer().current_context(),
        };
        if sender.send(job).is_err() {
            // Builder already gone; nothing will be built.
            return 0;
        }
        telemetry
            .counter("server.backfill_requests")
            .add(count as u64);
        count
    }

    /// Installs vectors the builder thread finished, clearing their
    /// in-flight marks.
    pub fn insert_backfilled(&self, built: Vec<(String, f64, Vec<f64>)>) {
        let telemetry = orex_telemetry::global();
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut guard = self
            .precomputed
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(store) = guard.as_mut() else {
            return;
        };
        let count = built.len() as u64;
        for (term, mass, scores) in built {
            store.insert(term.clone(), mass, &scores);
            in_flight.remove(&term);
        }
        telemetry.counter("server.backfill_built").add(count);
        telemetry
            .gauge("server.precompute_terms")
            .set(store.len() as f64);
    }

    /// Clears in-flight marks for terms the builder skipped (e.g. empty
    /// base sets), so a later request may retry them.
    pub fn clear_in_flight(&self, terms: &[String]) {
        let mut in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for t in terms {
            in_flight.remove(t);
        }
    }

    /// Result-cache entry count (observability).
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
    use orex_ir::Query;
    use std::sync::Arc;

    fn system() -> Arc<ObjectRankSystem> {
        let d = orex_datagen::Preset::DblpTop.generate(0.02);
        Arc::new(ObjectRankSystem::new(
            d.graph,
            d.ground_truth,
            SystemConfig::default(),
        ))
    }

    fn rankable_keyword(system: &ObjectRankSystem) -> String {
        let index = system.index();
        (0..index.vocabulary_size() as u32)
            .map(|t| index.term_text(t).to_string())
            .find(|kw| QuerySession::start(system, &Query::parse(kw)).is_ok())
            .expect("some keyword ranks")
    }

    #[test]
    fn initial_snapshot_roundtrips_through_lookup() {
        let system = system();
        let store = RankStore::new(8, system.initial_rates());
        let kw = rankable_keyword(&system);
        let query = Query::parse(&kw);
        let qv = QueryVector::initial(&query, system.index().analyzer());
        assert!(store.lookup_initial(&qv).unwrap().is_none());
        let session = QuerySession::start(&system, &query).unwrap();
        store.store(&qv, &session.snapshot()).unwrap();
        let hit = store.lookup_initial(&qv).unwrap().expect("cached");
        assert_eq!(hit.scores(), session.scores());
    }

    /// The regression the unification exists for: a feedback round trains
    /// the rates, and its snapshot — even when the reformulated query
    /// normalizes to the *same* key — must not satisfy an initial-query
    /// lookup.
    #[test]
    fn feedback_trained_snapshot_does_not_shadow_initial_entry() {
        let system = system();
        let store = RankStore::new(8, system.initial_rates());
        let kw = rankable_keyword(&system);
        let query = Query::parse(&kw);
        let qv = QueryVector::initial(&query, system.index().analyzer());

        let mut session = QuerySession::start(&system, &query).unwrap();
        let initial_snapshot = session.snapshot();
        store.store(&qv, &initial_snapshot).unwrap();

        // One feedback round: rates are trained away from the initial
        // vector (structure-only reformulation keeps the query vector as
        // hostile as possible to the keying scheme).
        let top = session.top_k(3);
        let objects: Vec<_> = top.iter().map(|r| r.node).collect();
        session.feedback(&objects).unwrap();
        let trained_snapshot = session.snapshot();
        assert_ne!(
            rates_fingerprint(trained_snapshot.rates()),
            rates_fingerprint(initial_snapshot.rates()),
            "feedback must actually train the rates for this test to bite"
        );
        // Store it under the session's *current* query vector.
        store
            .store(session.query_vector(), &trained_snapshot)
            .unwrap();

        // A fresh initial query still gets the initial-rates snapshot.
        let hit = store.lookup_initial(&qv).unwrap().expect("still cached");
        assert_eq!(hit.scores(), initial_snapshot.scores());
        // And the trained snapshot is reachable only under its own rates.
        let trained_key = RankStore::key(
            rates_fingerprint(trained_snapshot.rates()),
            session.query_vector(),
        );
        assert_ne!(
            trained_key,
            RankStore::key(
                rates_fingerprint(initial_snapshot.rates()),
                session.query_vector()
            )
        );
    }

    #[test]
    fn combine_unavailable_without_precomputed_store() {
        let system = system();
        let store = RankStore::new(4, system.initial_rates());
        let qv = QueryVector::from_weights([("data", 1.0)]);
        assert!(matches!(
            store.combine(&qv, system.index(), &system.config().okapi),
            CombineOutcome::Unavailable
        ));
    }

    #[test]
    fn backfill_queue_dedups_in_flight_terms() {
        let system = system();
        let store = RankStore::new(4, system.initial_rates());
        let (tx, rx) = std::sync::mpsc::channel();
        store.set_backfill_sender(tx);
        assert_eq!(
            store.request_backfill(vec!["alpha".into(), "beta".into()]),
            2
        );
        assert_eq!(store.request_backfill(vec!["alpha".into()]), 0, "in flight");
        assert_eq!(rx.try_recv().unwrap().terms.len(), 2);
        store.clear_in_flight(&["alpha".to_string()]);
        assert_eq!(store.request_backfill(vec!["alpha".into()]), 1);
        store.close_backfill();
        assert_eq!(store.request_backfill(vec!["gamma".into()]), 0, "closed");
    }
}
