//! Minimal HTTP/1.1 request parsing and response rendering.
//!
//! Exactly the subset the server needs: a request line, headers,
//! an optional `Content-Length` body, and `Connection: keep-alive` /
//! `close` response framing. Because every response declares its
//! `Content-Length`, a client may pipeline requests: the server reads
//! them in order off one shared [`BufReader`] and writes responses in
//! the same order. Every limit is explicit — header section size,
//! header count, body size — so a hostile peer can at worst waste one
//! worker's read timeout, never its memory.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request line + header section, in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, without query string processing.
    pub path: String,
    /// Lower-cased header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True for `HTTP/1.1` requests (keep-alive by default); false for
    /// `HTTP/1.0` (close by default).
    pub http11: bool,
}

impl Request {
    /// First value of `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless the client sent
    /// `Connection: close`; HTTP/1.0 defaults to close unless the
    /// client sent `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed; maps onto a response status.
#[derive(Debug)]
pub enum ParseError {
    /// Peer closed the connection before sending a request line.
    ConnectionClosed,
    /// The read timed out before *any* byte of the next request line
    /// arrived — a quiet keep-alive connection, not a slow request. The
    /// stream is intact (nothing was consumed), so the caller may retry
    /// or park the connection.
    Idle,
    /// Malformed request line, header, or length field.
    Malformed(&'static str),
    /// Declared `Content-Length` exceeds the configured limit.
    BodyTooLarge(usize),
    /// I/O failure (including a timeout mid-request).
    Io(std::io::Error),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// True for the error kinds a socket read timeout surfaces as.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `reader`, rejecting bodies above
/// `max_body_bytes`. The caller owns the `BufReader` so buffered bytes
/// of pipelined requests survive between calls. A read timeout before
/// the first byte of the request line reports [`ParseError::Idle`]
/// (connection reusable); any later timeout reports `Io` (connection
/// state unknown, caller should close).
pub fn read_request<S: Read>(
    reader: &mut BufReader<S>,
    max_body_bytes: usize,
) -> Result<Request, ParseError> {
    let mut head_bytes = 0usize;

    let mut line = String::new();
    match reader.read_line(&mut line) {
        // `read_until` guarantees bytes read before an error are in the
        // buffer, so an empty line on timeout means nothing was consumed
        // and the connection is still cleanly reusable.
        Err(e) if is_timeout(&e) && line.is_empty() => return Err(ParseError::Idle),
        Err(e) => return Err(ParseError::Io(e)),
        Ok(0) => return Err(ParseError::ConnectionClosed),
        Ok(_) => {}
    }
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let http11 = version == "HTTP/1.1";
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("invalid method"));
    }

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ParseError::Malformed("connection closed mid-headers"));
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("header section too large"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header missing colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
        http11,
    })
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written after `Content-Type`.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given content type and no extra headers.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self::new(status, "application/json", body.into().into_bytes())
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// An HTML response.
    pub fn html(status: u16, body: impl Into<String>) -> Self {
        Self::new(status, "text/html; charset=utf-8", body.into().into_bytes())
    }

    /// Adds one extra response header. Values must not contain CR/LF —
    /// callers only pass values they format themselves.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// A JSON error `{"error": message}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let payload = serde_json::json!({ "error": message });
        Self::json(status, serde_json::to_string(&payload).unwrap_or_default())
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Writes the full response to `stream`. `keep_alive` selects the
    /// `Connection:` header; the `Content-Length` is always declared so
    /// a keep-alive peer knows where the body ends.
    pub fn write_to<S: Write>(&self, stream: &mut S, keep_alive: bool) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert!(r.http11);
        assert!(r.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length() {
        let r = parse("POST /query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.body_str(), Some("hello"));
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let r = parse("GET / HTTP/1.1\r\nX-Thing: v\r\n\r\n").unwrap();
        assert_eq!(r.header("x-thing"), Some("v"));
        assert_eq!(r.header("X-THING"), Some("v"));
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive());
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive(), "HTTP/1.0 defaults to close");
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive());
    }

    #[test]
    fn pipelined_requests_parse_in_order_from_one_reader() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let a = read_request(&mut reader, 1024).unwrap();
        let b = read_request(&mut reader, 1024).unwrap();
        let c = read_request(&mut reader, 1024).unwrap();
        assert_eq!(
            (a.path.as_str(), b.path.as_str(), c.path.as_str()),
            ("/a", "/b", "/c")
        );
        assert_eq!(b.body_str(), Some("hi"));
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(ParseError::ConnectionClosed)
        ));
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        let e = parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        assert!(matches!(e, Err(ParseError::BodyTooLarge(9999))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("NOT A REQUEST\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / FTP/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn empty_stream_reports_closed() {
        assert!(matches!(parse(""), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn response_renders_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok\n")
            .write_to(&mut out, false)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 3\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn response_renders_keep_alive() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_to(&mut out, true).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
        assert!(!s.contains("Connection: close"), "{s}");
    }

    #[test]
    fn extra_headers_render_before_connection_close() {
        let mut out = Vec::new();
        Response::text(200, "ok")
            .with_header("X-Orex-Log-Cursor", "17")
            .write_to(&mut out, false)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("X-Orex-Log-Cursor: 17\r\n"), "{s}");
        let head = s.split("\r\n\r\n").next().unwrap();
        assert!(head.ends_with("Connection: close"), "{head}");
    }

    #[test]
    fn html_response_sets_content_type() {
        let r = Response::html(200, "<html></html>");
        assert_eq!(r.content_type, "text/html; charset=utf-8");
    }

    #[test]
    fn error_response_is_json() {
        let r = Response::error(404, "no such session");
        assert_eq!(r.status, 404);
        let v = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.as_str()),
            Some("no such session")
        );
    }
}
