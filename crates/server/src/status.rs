//! The operator surface behind `GET /debug/status`.
//!
//! A [`StatusBoard`] keeps a bounded ring of metric snapshots (fed by
//! the server's background collector and topped up on demand by the
//! handler) and an [`SloTracker`] evaluated over the same history. From
//! those it renders two views of identical content: a zero-dependency
//! HTML page with per-endpoint RED rows (rate / errors / duration),
//! occupancy gauges, burn-rate SLO rows and unicode sparklines, and a
//! JSON document that `orex top` (and CI assertions) consume.

use orex_telemetry::{default_slos, SloTracker, SloWindows, Snapshot};
use serde_json::Value;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Snapshot history retained for sparklines (at the collector's default
/// 2s cadence this covers ~4 minutes).
const MAX_HISTORY: usize = 120;

/// The endpoints the RED table reports, with the metric names each row
/// reads: (label, request counter, 5xx counter, latency histogram).
const ENDPOINTS: [(&str, &str, &str, &str); 7] = [
    (
        "request",
        "server.requests",
        "server.responses_5xx",
        "server.request_us",
    ),
    (
        "query",
        "server.query_requests",
        "server.query_5xx",
        "server.query_us",
    ),
    (
        "explain",
        "server.explain_requests",
        "server.explain_5xx",
        "server.explain_us",
    ),
    (
        "feedback",
        "server.feedback_requests",
        "server.feedback_5xx",
        "server.feedback_us",
    ),
    (
        "trace",
        "server.trace_requests",
        "server.trace_5xx",
        "server.trace_us",
    ),
    (
        "logs",
        "server.logs_requests",
        "server.logs_5xx",
        "server.logs_us",
    ),
    (
        "metrics",
        "server.metrics_requests",
        "server.metrics_5xx",
        "server.metrics_us",
    ),
];

/// Storage occupancy figures the handler reads off the server state.
#[derive(Clone, Copy, Debug, Default)]
pub struct Occupancy {
    /// Live sessions.
    pub sessions: usize,
    /// Cached query results.
    pub cache: usize,
    /// Precomputed rank vectors loaded (0 when serving live-only).
    pub precompute_terms: usize,
    /// Traces retained for `GET /trace/<id>`.
    pub traces: usize,
    /// Log records retained for `GET /logs`.
    pub logs: usize,
    /// ERROR records currently in the log archive.
    pub recent_errors: usize,
}

/// One point of sparkline history.
struct Sample {
    at: Duration,
    snapshot: Snapshot,
}

struct Inner {
    history: Vec<Sample>,
    slo: SloTracker,
}

/// Bounded snapshot history + SLO evaluation; see the module docs.
pub struct StatusBoard {
    epoch: Instant,
    inner: Mutex<Inner>,
}

/// One endpoint's RED row.
struct RedRow {
    name: &'static str,
    requests: u64,
    rate_per_s: f64,
    errors_5xx: u64,
    p50_us: f64,
    p95_us: f64,
}

impl Default for StatusBoard {
    fn default() -> Self {
        Self::new()
    }
}

impl StatusBoard {
    /// A board tracking the default serving SLOs from an empty history.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                history: Vec::new(),
                slo: SloTracker::new(default_slos(), SloWindows::default()),
            }),
        }
    }

    /// Takes one snapshot of the global recorder into the history ring,
    /// advances the SLO tracker, and publishes `slo.*` gauges back into
    /// the recorder (surfacing as `orex_slo_*` on `/metrics`).
    pub fn collect(&self) {
        let recorder = orex_telemetry::global();
        let at = self.epoch.elapsed();
        let snapshot = recorder.snapshot();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.slo.observe(at, &snapshot);
        inner.slo.publish(recorder);
        inner.history.push(Sample { at, snapshot });
        if inner.history.len() > MAX_HISTORY {
            let excess = inner.history.len() - MAX_HISTORY;
            inner.history.drain(..excess);
        }
    }

    /// [`StatusBoard::collect`], but only when the newest sample is
    /// older than `max_age` — lets the request handler guarantee fresh
    /// data without flooding the history under polling.
    pub fn collect_if_stale(&self, max_age: Duration) {
        let stale = {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            match inner.history.last() {
                Some(s) => self.epoch.elapsed().saturating_sub(s.at) >= max_age,
                None => true,
            }
        };
        if stale {
            self.collect();
        }
    }

    /// RED rows for every endpoint that has seen traffic, newest
    /// snapshot against a baseline ~`window` earlier for rates.
    fn red_rows(inner: &Inner, window: Duration) -> Vec<RedRow> {
        let Some(latest) = inner.history.last() else {
            return Vec::new();
        };
        let from = latest.at.saturating_sub(window);
        let base = inner
            .history
            .iter()
            .find(|s| s.at >= from)
            .unwrap_or(latest);
        let dt = (latest.at.saturating_sub(base.at)).as_secs_f64();
        ENDPOINTS
            .iter()
            .filter_map(|&(name, req, bad, hist)| {
                let count = |snap: &Snapshot, key: &str| {
                    snap.counters
                        .get(key)
                        .copied()
                        .unwrap_or_else(|| snap.histograms.get(key).map_or(0, |h| h.count))
                };
                let requests = count(&latest.snapshot, req)
                    .max(latest.snapshot.histograms.get(hist).map_or(0, |h| h.count));
                if requests == 0 {
                    return None;
                }
                let delta = requests.saturating_sub(
                    count(&base.snapshot, req)
                        .max(base.snapshot.histograms.get(hist).map_or(0, |h| h.count)),
                );
                let summary = latest.snapshot.histograms.get(hist);
                Some(RedRow {
                    name,
                    requests,
                    rate_per_s: if dt > 0.0 { delta as f64 / dt } else { 0.0 },
                    errors_5xx: latest.snapshot.counters.get(bad).copied().unwrap_or(0),
                    p50_us: summary.map_or(0.0, |h| h.p50),
                    p95_us: summary.map_or(0.0, |h| h.p95),
                })
            })
            .collect()
    }

    /// Request-rate and request-p95 series across the history ring, for
    /// sparklines: `(requests_per_s, p95_us)` per retained sample.
    fn history_series(inner: &Inner) -> (Vec<f64>, Vec<f64>) {
        let mut rates = Vec::with_capacity(inner.history.len());
        let mut p95s = Vec::with_capacity(inner.history.len());
        let mut prev: Option<(&Sample, u64)> = None;
        for s in &inner.history {
            let total = s
                .snapshot
                .counters
                .get("server.requests")
                .copied()
                .unwrap_or(0);
            let rate = match prev {
                Some((p, ptotal)) => {
                    let dt = s.at.saturating_sub(p.at).as_secs_f64();
                    if dt > 0.0 {
                        total.saturating_sub(ptotal) as f64 / dt
                    } else {
                        0.0
                    }
                }
                None => 0.0,
            };
            rates.push(rate);
            p95s.push(
                s.snapshot
                    .histograms
                    .get("server.request_us")
                    .map_or(0.0, |h| h.p95),
            );
            prev = Some((s, total));
        }
        (rates, p95s)
    }

    /// The machine-readable status document (`?format=json`).
    pub fn render_json(&self, occupancy: Occupancy) -> String {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let rows = Self::red_rows(&inner, Duration::from_secs(60));
        let (rates, p95s) = Self::history_series(&inner);
        let endpoints: Vec<Value> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "name": r.name,
                    "requests": r.requests,
                    "rate_per_s": r.rate_per_s,
                    "errors_5xx": r.errors_5xx,
                    "p50_us": r.p50_us,
                    "p95_us": r.p95_us,
                })
            })
            .collect();
        let slos: Vec<Value> = inner
            .slo
            .statuses()
            .iter()
            .map(|s| {
                serde_json::json!({
                    "name": s.name,
                    "objective": s.objective,
                    "burn_short": s.burn_short,
                    "burn_long": s.burn_long,
                    "burning": s.burning,
                    "good": s.good,
                    "total": s.total,
                })
            })
            .collect();
        let doc = serde_json::json!({
            "uptime_s": self.epoch.elapsed().as_secs_f64(),
            "endpoints": endpoints,
            "occupancy": serde_json::json!({
                "sessions": occupancy.sessions,
                "cache": occupancy.cache,
                "precompute_terms": occupancy.precompute_terms,
                "traces": occupancy.traces,
                "logs": occupancy.logs,
            }),
            "recent_errors": occupancy.recent_errors,
            "slos": slos,
            "history": serde_json::json!({
                "samples": inner.history.len(),
                "requests_per_s": rates,
                "request_p95_us": p95s,
            }),
        });
        serde_json::to_string(&doc).unwrap_or_default()
    }

    /// The human-readable status page (default format).
    pub fn render_html(&self, occupancy: Occupancy) -> String {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let rows = Self::red_rows(&inner, Duration::from_secs(60));
        let (rates, p95s) = Self::history_series(&inner);
        let statuses = inner.slo.statuses();
        let mut out = String::with_capacity(4096);
        out.push_str(
            "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
             <meta http-equiv=\"refresh\" content=\"2\">\
             <title>orex status</title><style>\
             body{font-family:monospace;background:#111;color:#ddd;margin:2em}\
             table{border-collapse:collapse;margin:1em 0}\
             td,th{border:1px solid #444;padding:4px 10px;text-align:right}\
             th{background:#222}td:first-child,th:first-child{text-align:left}\
             .burn{color:#f55;font-weight:bold}.ok{color:#5c5}\
             .spark{font-size:1.2em;letter-spacing:1px}\
             h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.5em}\
             </style></head><body><h1>orex status</h1>",
        );
        let _ = write!(
            out,
            "<p>uptime {:.0}s &middot; {} history samples</p>",
            self.epoch.elapsed().as_secs_f64(),
            inner.history.len()
        );
        out.push_str("<h2>endpoints (RED, 60s window)</h2><table><tr><th>endpoint</th><th>req</th><th>rate/s</th><th>5xx</th><th>p50 &micro;s</th><th>p95 &micro;s</th></tr>");
        for r in &rows {
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{:.1}</td><td>{}</td><td>{:.0}</td><td>{:.0}</td></tr>",
                r.name, r.requests, r.rate_per_s, r.errors_5xx, r.p50_us, r.p95_us
            );
        }
        if rows.is_empty() {
            out.push_str("<tr><td colspan=\"6\">no traffic yet</td></tr>");
        }
        out.push_str("</table><h2>occupancy</h2><table><tr><th>sessions</th><th>cache</th><th>precompute terms</th><th>traces</th><th>logs</th><th>recent errors</th></tr>");
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr></table>",
            occupancy.sessions,
            occupancy.cache,
            occupancy.precompute_terms,
            occupancy.traces,
            occupancy.logs,
            occupancy.recent_errors
        );
        out.push_str("<h2>SLOs (burn rates, 1m/5m)</h2><table><tr><th>slo</th><th>objective</th><th>burn 1m</th><th>burn 5m</th><th>state</th></tr>");
        for s in &statuses {
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{:.2}</td><td>{:.2}</td><td class=\"{}\">{}</td></tr>",
                s.name,
                s.objective,
                s.burn_short,
                s.burn_long,
                if s.burning { "burn" } else { "ok" },
                if s.burning { "BURNING" } else { "ok" }
            );
        }
        out.push_str("</table><h2>history</h2>");
        let _ = write!(
            out,
            "<p>req/s <span class=\"spark\">{}</span></p>\
             <p>p95&nbsp;&nbsp; <span class=\"spark\">{}</span></p>",
            sparkline(&rates),
            sparkline(&p95s)
        );
        out.push_str("</body></html>");
        out
    }
}

/// Renders values as a fixed-height unicode sparkline, scaled to the
/// series max (all-zero series render as a flat baseline).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[1.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
    }

    #[test]
    fn board_collects_and_renders_both_formats() {
        let telemetry = orex_telemetry::global();
        telemetry.counter("server.requests").incr();
        telemetry.histogram("server.request_us").record(1000.0);
        let board = StatusBoard::new();
        board.collect();
        board.collect();
        let json = board.render_json(Occupancy::default());
        assert!(json.contains("\"endpoints\""), "{json}");
        assert!(json.contains("\"request\""), "{json}");
        assert!(json.contains("\"slos\""), "{json}");
        let html = board.render_html(Occupancy {
            sessions: 2,
            ..Occupancy::default()
        });
        assert!(html.contains("<td>request</td>"), "{html}");
        assert!(html.contains("orex status"), "{html}");
    }

    #[test]
    fn collect_if_stale_skips_fresh_history() {
        let board = StatusBoard::new();
        board.collect_if_stale(Duration::from_secs(60));
        board.collect_if_stale(Duration::from_secs(60));
        let inner = board.inner.lock().unwrap();
        assert_eq!(inner.history.len(), 1, "second collect was fresh-skipped");
    }

    #[test]
    fn history_stays_bounded() {
        let board = StatusBoard::new();
        for _ in 0..(MAX_HISTORY + 50) {
            board.collect();
        }
        let inner = board.inner.lock().unwrap();
        assert_eq!(inner.history.len(), MAX_HISTORY);
    }
}
