//! The HTTP server proper: accept loop, routing, and handlers.
//!
//! One fixed worker pool serves persistent HTTP/1.1 connections: a
//! worker reads requests off a connection (pipelined requests drain in
//! order from one shared buffer), writes responses, and after a burst —
//! or a quiet gap — *parks* the connection by resubmitting it to the
//! pool, so a handful of workers round-robin fairly across many more
//! keep-alive connections. Each request is wrapped in a
//! `server.request` trace span and a `server.request_us` histogram
//! sample. The accept loop polls a nonblocking listener so it can
//! observe the shutdown flag (set programmatically or by
//! SIGINT/SIGTERM); on shutdown it stops accepting, closes parked
//! connections, and joins the pool, draining in-flight requests.
//!
//! Connections above `max_connections` are refused immediately with
//! `503` + `Retry-After` instead of queueing unboundedly — the router
//! retries those on an alternate worker.

use crate::error::ServerError;
use crate::http::{read_request, ParseError, Request, Response};
use crate::logs::LogArchive;
use crate::pool::{PoolHandle, ThreadPool};
use crate::ranks::CombineOutcome;
use crate::registry::{DatasetService, SystemRegistry};
use crate::sessions::SessionTable;
use crate::status::{Occupancy, StatusBoard};
use crate::traces::TraceArchive;
use orex_core::{ObjectRankSystem, QuerySession, SessionError, SessionSnapshot};
use orex_graph::NodeId;
use orex_ir::{Query, QueryVector};
use orex_telemetry::Level;
use serde_json::Value;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Between-request poll window on a kept-alive connection: how long a
/// worker waits for the next request before parking the connection back
/// on the queue. Short enough that workers rotate across connections,
/// long enough to catch back-to-back requests without a reschedule.
const KEEPALIVE_POLL: Duration = Duration::from_millis(25);
/// Requests served on one connection in a single scheduling pass before
/// the worker parks it — bounds how long one chatty connection can
/// monopolize a worker while others wait.
const KEEPALIVE_BURST: u64 = 32;

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7474`. Port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads.
    pub threads: usize,
    /// LRU result-cache capacity (distinct normalized queries), per
    /// dataset.
    pub cache_entries: usize,
    /// Session idle TTL.
    pub session_ttl: Duration,
    /// Max live sessions before LRU eviction.
    pub max_sessions: usize,
    /// Per-request body limit in bytes.
    pub max_body_bytes: usize,
    /// Socket read/write timeout for the first request of a connection
    /// and for mid-request reads.
    pub io_timeout: Duration,
    /// Traces retained for `GET /trace/<id>`.
    pub max_traces: usize,
    /// Log records retained for `GET /logs` (the server-side archive on
    /// top of the logger's own ring).
    pub max_logs: usize,
    /// Requests at least this slow additionally log a `server.slow`
    /// WARN record.
    pub slow_request: Duration,
    /// Precomputed rank-vector artifact (from `orex precompute`) to
    /// answer covered queries by linear combination. Validated against
    /// the served dataset at bind time. Single-dataset
    /// ([`Server::bind`]) path only.
    pub precompute_path: Option<PathBuf>,
    /// Build vectors for uncovered query terms in a background thread so
    /// later occurrences combine. Only meaningful with a precompute
    /// artifact loaded.
    pub backfill: bool,
    /// Continuous-profiler sampling rate in Hz; 0 leaves the sampler
    /// off (`GET /profile` then answers 503). The first component to
    /// touch the global profiler fixes its rate, and `OREX_PROFILE_HZ`
    /// overrides both.
    pub profile_hz: u64,
    /// Cadence of the background status collector that feeds
    /// `/debug/status` history and evaluates SLO burn rates.
    pub status_interval: Duration,
    /// Live-connection cap: connections accepted past this limit are
    /// answered `503` + `Retry-After` immediately instead of queueing.
    pub max_connections: usize,
    /// Max requests served on one keep-alive connection before the
    /// server closes it (bounds per-connection state lifetime).
    pub keepalive_requests: u64,
    /// How long a kept-alive connection may sit idle before the server
    /// closes it.
    pub keepalive_idle: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7474".to_string(),
            threads: 8,
            cache_entries: 256,
            session_ttl: Duration::from_secs(600),
            max_sessions: 1024,
            max_body_bytes: 64 * 1024,
            io_timeout: Duration::from_secs(5),
            max_traces: 256,
            max_logs: 4096,
            slow_request: Duration::from_millis(500),
            precompute_path: None,
            backfill: true,
            profile_hz: orex_telemetry::profile::DEFAULT_HZ,
            status_interval: Duration::from_secs(2),
            max_connections: 1024,
            keepalive_requests: 1000,
            keepalive_idle: Duration::from_secs(5),
        }
    }
}

/// Everything a handler needs, shared across workers.
struct ServerState {
    registry: SystemRegistry,
    sessions: SessionTable,
    traces: TraceArchive,
    logs: LogArchive,
    status: StatusBoard,
    max_body_bytes: usize,
    slow_request: Duration,
    io_timeout: Duration,
    keepalive_requests: u64,
    keepalive_idle: Duration,
    /// Live accepted connections (queued or being served); the accept
    /// loop refuses connections past `max_connections`.
    live_connections: AtomicUsize,
    max_connections: usize,
    /// Set when the accept loop exits: parked connections close instead
    /// of waiting for more requests, so the pool can drain.
    draining: AtomicBool,
}

/// Per-request serving-path outcomes surfaced in the access log and the
/// query response.
#[derive(Default)]
struct QueryFlags {
    /// `Some(true)` when the result cache satisfied the query.
    cache_hit: Option<bool>,
    /// `Some(true)` when precomputed vectors were combined; `Some(false)`
    /// when a precomputed store was consulted but a live iteration ran.
    precompute_hit: Option<bool>,
    /// Dataset the request addressed (even when unknown — the access
    /// log carries what the client asked for).
    dataset: Option<String>,
}

/// Signals a running [`Server`] to stop accepting and drain.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown; `Server::run` returns after draining.
    pub fn shutdown(&self) {
        // Release pairs with the accept loop's Acquire load: everything
        // the requester did before asking for shutdown is visible to the
        // drain path. SeqCst would buy nothing — there is no multi-flag
        // total order to preserve here.
        self.stop.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Set by the process signal handler; observed by every running server.
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// True once a SIGINT/SIGTERM handler installed by
/// [`install_signal_handlers`] has fired. Non-server accept loops (the
/// router) poll this to join the same graceful-drain protocol.
pub fn signal_shutdown_requested() -> bool {
    // ORDERING: Acquire pairs with the handler's Release store; the
    // flag itself is the only communicated state.
    SIGNAL_STOP.load(Ordering::Acquire)
}

/// Installs SIGINT/SIGTERM handlers that request graceful shutdown of
/// every running server in the process. Safe to call more than once.
/// No-op on non-Unix platforms.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // Async-signal-safety: the handler only stores to an AtomicBool.
        extern "C" fn on_signal(_sig: i32) {
            // ORDERING: the flag is the only communication — nothing is
            // published under it, and a signal handler must not need a
            // full fence anyway; Release pairs with the accept loop's
            // Acquire for ordinary flag visibility.
            SIGNAL_STOP.store(true, Ordering::Release);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal(2)` is async-signal-safe to install at any
        // time; the handler is an `extern "C" fn` that only performs an
        // atomic store (itself async-signal-safe, no allocation, no
        // locks). Replacing a previously installed handler is the
        // documented idempotent behaviour this function promises.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// A bound, not-yet-running server; call [`Server::run`] to serve.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `config.addr` serving the single `system` as the dataset
    /// named `default`. When a precompute artifact is configured it is
    /// loaded and validated against the served dataset (graph hash,
    /// node count, damping, epsilon) — a mismatched artifact is a bind
    /// error, not a silent mis-ranking.
    pub fn bind(system: Arc<ObjectRankSystem>, config: ServerConfig) -> io::Result<Self> {
        let service = DatasetService::from_system(
            "default",
            orex_datagen::Preset::DblpTop,
            0.0,
            system,
            config.cache_entries,
            config.precompute_path.as_deref(),
        )
        .map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why))?;
        let registry = SystemRegistry::single(service, config.backfill);
        Self::bind_registry(registry, config)
    }

    /// Binds `config.addr` serving every dataset in `registry`. The
    /// first registered dataset answers requests that don't name one.
    pub fn bind_registry(registry: SystemRegistry, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            registry,
            sessions: SessionTable::new(config.session_ttl, config.max_sessions),
            traces: TraceArchive::new(config.max_traces),
            logs: LogArchive::new(config.max_logs),
            status: StatusBoard::new(),
            max_body_bytes: config.max_body_bytes,
            slow_request: config.slow_request,
            io_timeout: config.io_timeout,
            keepalive_requests: config.keepalive_requests.max(1),
            keepalive_idle: config.keepalive_idle,
            live_connections: AtomicUsize::new(0),
            max_connections: config.max_connections,
            draining: AtomicBool::new(false),
        });
        Ok(Self {
            listener,
            state,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Builds every registered dataset now instead of lazily on first
    /// use. Surfaces build errors before the server starts serving.
    pub fn build_all_datasets(&self) -> io::Result<()> {
        self.state
            .registry
            .build_all()
            .map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why))
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serves until shutdown is requested (via [`ShutdownHandle`] or an
    /// installed signal handler), then drains in-flight requests and
    /// returns.
    pub fn run(self) -> io::Result<()> {
        let mut pool = ThreadPool::new(self.config.threads)?;
        let telemetry = orex_telemetry::global();
        // Continuous profiling: sample every thread's span stack so
        // `GET /profile` always has recent history.
        if self.config.profile_hz > 0 {
            orex_telemetry::profiler_at(self.config.profile_hz).start();
        }
        // Background status collector: snapshots metrics into the status
        // board's history ring and keeps SLO burn rates (and the
        // `orex_slo_*` gauges on /metrics) current even when nobody polls
        // /debug/status. Paced by a condvar so shutdown can interrupt a
        // sleep (ORX005: no bare thread::sleep in this crate).
        let collector_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let collector_handle = {
            let state = Arc::clone(&self.state);
            let stop = Arc::clone(&collector_stop);
            let interval = self.config.status_interval;
            std::thread::Builder::new()
                .name("orex-status".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    loop {
                        state.status.collect();
                        let guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
                        let (guard, _timeout) = cv
                            .wait_timeout(guard, interval)
                            .unwrap_or_else(PoisonError::into_inner);
                        if *guard {
                            return;
                        }
                    }
                })
                .ok()
        };
        let handle = pool.handle();
        // Acquire pairs with the Release stores in `shutdown()` and the
        // signal handler; SeqCst's total order across the two flags is
        // unnecessary (either one stopping is sufficient and they never
        // coordinate with each other).
        while !self.stop.load(Ordering::Acquire) && !SIGNAL_STOP.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    telemetry.counter("server.connections").incr();
                    // ORDERING: occupancy gate, not a synchronization
                    // point — Relaxed suffices; an off-by-a-few race at
                    // the cap only shifts which connection sees the 503.
                    let live = self.state.live_connections.load(Ordering::Relaxed);
                    if live >= self.state.max_connections {
                        refuse_overloaded(stream, &self.state, self.config.io_timeout);
                        continue;
                    }
                    // ORDERING: same occupancy gate as the load
                    // above; Relaxed suffices.
                    self.state.live_connections.fetch_add(1, Ordering::Relaxed);
                    let state = Arc::clone(&self.state);
                    let guard = ConnGuard {
                        state: Arc::clone(&self.state),
                    };
                    let io_timeout = self.config.io_timeout;
                    // A failed try_clone or a closed pool drops `conn`
                    // (and its guard, undoing the count) right here.
                    if let Ok(conn) = Conn::new(stream, io_timeout, guard) {
                        if let Some(h) = handle.clone() {
                            let h2 = h.clone();
                            let _ = h.submit(move || connection_pass(conn, state, h2));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // orex::allow(ORX005): the listener is nonblocking so
                    // this accept loop must pace its own polling to keep
                    // observing the stop flags; 2ms bounds shutdown
                    // latency without burning a core.
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Stop accepting. Parked connections observe the drain flag and
        // close instead of resubmitting; drop our queue handle so the
        // pool's channel can actually close, then drain queued +
        // in-flight requests.
        self.state.draining.store(true, Ordering::Release);
        drop(handle);
        pool.join();
        // Close the backfill queues after the drain (drained requests
        // may still enqueue) and wait for the builders to finish.
        self.state.registry.shutdown();
        {
            let (lock, cv) = &*collector_stop;
            *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
            cv.notify_all();
        }
        if let Some(handle) = collector_handle {
            let _ = handle.join();
        }
        telemetry.counter("server.clean_shutdowns").incr();
        Ok(())
    }
}

/// Decrements the live-connection count when a connection ends, on
/// every exit path (including handler panics unwinding the worker).
struct ConnGuard {
    state: Arc<ServerState>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        // ORDERING: occupancy statistic, pairs with the accept loop's
        // Relaxed load; no data is published under this counter.
        self.state.live_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One live client connection with its buffered reader (which owns any
/// already-received pipelined requests) and serving statistics.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    served: u64,
    idle_since: Instant,
    /// Held for the connection's lifetime; dropping the `Conn` on any
    /// path releases its slot under the connection cap.
    _guard: ConnGuard,
}

impl Conn {
    fn new(stream: TcpStream, io_timeout: Duration, guard: ConnGuard) -> io::Result<Self> {
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_write_timeout(Some(io_timeout));
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            served: 0,
            idle_since: Instant::now(),
            _guard: guard,
        })
    }
}

/// Answers an over-cap connection with `503` + `Retry-After` without
/// occupying a worker. The write happens on the accept-loop thread but
/// is one small buffer under a write timeout.
fn refuse_overloaded(mut stream: TcpStream, state: &ServerState, io_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(io_timeout));
    orex_telemetry::global()
        .counter("server.overload_503")
        .incr();
    let response = Response::error(503, "server at connection capacity, retry shortly")
        .with_header("Retry-After", "1");
    access_log(
        state,
        None,
        &response,
        &QueryFlags::default(),
        Duration::ZERO,
    );
    let _ = response.write_to(&mut stream, false);
    // Unread request bytes at close time force an RST that can destroy
    // the 503 in flight; send our FIN, then drain what the client
    // already wrote (bounded, short timeout) so the close is graceful.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut sink = [0u8; 4096];
    for _ in 0..16 {
        match io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// One scheduling pass over a parked connection: serve the requests
/// that arrive promptly (pipelined requests drain back-to-back), then
/// either park the connection again (quiet gap, burst cap) or close it
/// (client close, protocol error, idle/lifetime limits, drain).
fn connection_pass(mut conn: Conn, state: Arc<ServerState>, handle: PoolHandle) {
    let telemetry = orex_telemetry::global();
    let mut served_this_pass = 0u64;
    loop {
        // Acquire pairs with the drain flag's Release store: parked
        // connections must stop resubmitting once the accept loop exits
        // or pool.join() would never observe an empty queue.
        if state.draining.load(Ordering::Acquire) {
            return; // drop closes the connection
        }
        let first = conn.served == 0;
        // The first request gets the full io timeout (a fresh client
        // may pause between connect and send, as before keep-alive);
        // later requests poll briefly so the worker can rotate to other
        // parked connections during quiet gaps.
        let _ = conn.writer.set_read_timeout(Some(if first {
            state.io_timeout
        } else {
            KEEPALIVE_POLL
        }));
        let start = Instant::now();
        let request = match read_request(&mut conn.reader, state.max_body_bytes) {
            Ok(request) => request,
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Idle) if !first => {
                if conn.idle_since.elapsed() >= state.keepalive_idle {
                    telemetry.counter("server.keepalive_idle_closed").incr();
                    return;
                }
                // Park: some other worker (or this one, later) resumes
                // the connection; buffered bytes travel with the reader.
                let state2 = Arc::clone(&state);
                let handle2 = handle.clone();
                if !handle.submit(move || connection_pass(conn, state2, handle2)) {
                    // Pool shut down while parking; the moved conn's
                    // guard decrements on drop.
                }
                return;
            }
            Err(ParseError::Idle) | Err(ParseError::Io(_)) => {
                telemetry.counter("server.request_timeouts").incr();
                let response = Response::error(408, "timed out reading request");
                access_log(
                    &state,
                    None,
                    &response,
                    &QueryFlags::default(),
                    start.elapsed(),
                );
                finish_response(&mut conn, &response, false, start, None);
                return;
            }
            Err(ParseError::BodyTooLarge(_)) => {
                telemetry.counter("server.requests").incr();
                let response = Response::error(413, "request body exceeds limit");
                access_log(
                    &state,
                    None,
                    &response,
                    &QueryFlags::default(),
                    start.elapsed(),
                );
                finish_response(&mut conn, &response, false, start, None);
                return;
            }
            Err(ParseError::Malformed(why)) => {
                telemetry.counter("server.requests").incr();
                let response = Response::error(400, why);
                access_log(
                    &state,
                    None,
                    &response,
                    &QueryFlags::default(),
                    start.elapsed(),
                );
                finish_response(&mut conn, &response, false, start, None);
                return;
            }
        };

        telemetry.counter("server.requests").incr();
        if conn.served > 0 {
            // A second (or later) request on one connection is the
            // keep-alive win the transport layer exists for.
            telemetry.counter("server.keepalive_reuses").incr();
        }
        let keep_alive = request.keep_alive() && conn.served + 1 < state.keepalive_requests;
        let (response, sampled_trace) = handle_request(&request, &state, start);
        finish_response(&mut conn, &response, keep_alive, start, sampled_trace);
        conn.served += 1;
        conn.idle_since = Instant::now();
        if !keep_alive {
            return;
        }
        served_this_pass += 1;
        if served_this_pass >= KEEPALIVE_BURST {
            // Burst cap: park so other connections get a worker.
            let state2 = Arc::clone(&state);
            let handle2 = handle.clone();
            let _ = handle.submit(move || connection_pass(conn, state2, handle2));
            return;
        }
    }
}

/// Routes one parsed request and produces its response plus the sampled
/// trace id (for histogram exemplars), emitting the access log inside
/// the request span.
///
/// A request carrying `X-Orex-Trace` joins the caller's trace instead
/// of minting one: the request span becomes a remote-parent root and
/// the propagated flags byte overrides the local sampling draw — the
/// ingress edge of the fleet decides, every hop behind it obeys.
fn handle_request(
    request: &Request,
    state: &Arc<ServerState>,
    start: Instant,
) -> (Response, Option<u64>) {
    let tracer = orex_telemetry::tracer();
    let context = request
        .header(orex_telemetry::TraceContext::HEADER)
        .and_then(orex_telemetry::TraceContext::parse);
    // Root span of this request's trace; handler spans nest under it.
    // Dropped before the ring is drained below so the archive sees the
    // complete trace.
    let (response, sampled_trace) = {
        let mut span = tracer.span_with_context("server.request", context);
        if span.is_recording() {
            span.attr_str("method", &request.method);
            span.attr_str("path", &request.path);
        }
        let trace_id = span.trace_id().map(|t| t.0);
        // Only sampled traces reach the archive, so only those make
        // honest exemplars — an unsampled id would 404 on
        // `GET /trace/<id>`.
        let sampled_trace = if span.is_sampled() { trace_id } else { None };
        let mut flags = QueryFlags::default();
        let response = route(request, state, trace_id, &mut flags);
        // Emitted while the span is still open, so the record is
        // stamped with this request's trace/span ids.
        access_log(state, Some(request), &response, &flags, start.elapsed());
        (response, sampled_trace)
    };
    state.traces.absorb(tracer.drain());
    // Slow-trace promotions ride back to the ingress edge on the
    // response so the router can retro-fetch sibling spans fleet-wide
    // before they evict.
    let promoted = tracer.take_promoted();
    let response = if promoted.is_empty() {
        response
    } else {
        let ids: Vec<String> = promoted.iter().map(u64::to_string).collect();
        response.with_header("X-Orex-Promoted", ids.join(","))
    };
    (response, sampled_trace)
}

/// Writes the response and records the request metrics.
fn finish_response(
    conn: &mut Conn,
    response: &Response,
    keep_alive: bool,
    start: Instant,
    sampled_trace: Option<u64>,
) {
    let telemetry = orex_telemetry::global();
    telemetry
        .histogram("server.request_us")
        .record_with_exemplar(start.elapsed().as_micros() as f64, sampled_trace);
    telemetry
        .counter(&format!("server.responses_{}xx", response.status / 100))
        .incr();
    let _ = response.write_to(&mut conn.writer, keep_alive);
}

/// Emits the one `server.access` record every response gets — method,
/// path, status, body bytes, latency, dataset, cache and precompute
/// hit/miss — plus a `server.slow` WARN when the request crossed the
/// slow threshold. Called inside the request span when one exists, so
/// the records carry the request's trace/span ids; unparseable requests
/// (4xx before routing) log with `-` placeholders and no trace.
fn access_log(
    state: &ServerState,
    request: Option<&Request>,
    response: &Response,
    flags: &QueryFlags,
    elapsed: Duration,
) {
    let log = orex_telemetry::logger();
    let method = request.map_or("-", |r| r.method.as_str());
    let path = request.map_or("-", |r| r.path.as_str());
    let latency_us = elapsed.as_micros() as u64;
    let mut record = log
        .info("server.access", "request")
        .field_str("method", method)
        .field_str("path", path)
        .field_u64("status", u64::from(response.status))
        .field_u64("bytes", response.body.len() as u64)
        .field_u64("latency_us", latency_us);
    if let Some(dataset) = &flags.dataset {
        record = record.field_str("dataset", dataset);
    }
    if let Some(hit) = flags.cache_hit {
        record = record.field_bool("cache_hit", hit);
    }
    if let Some(hit) = flags.precompute_hit {
        record = record.field_bool("precompute_hit", hit);
    }
    record.emit();
    if elapsed >= state.slow_request {
        log.warn("server.slow", "slow request")
            .field_str("method", method)
            .field_str("path", path)
            .field_u64("status", u64::from(response.status))
            .field_u64("latency_us", latency_us)
            .field_u64("threshold_us", state.slow_request.as_micros() as u64)
            .emit();
    }
}

/// Renders a handler result, logging every 5xx at ERROR — the request
/// span is still open here, so the record carries the trace id that
/// `GET /trace/<id>` serves. `endpoint` feeds the per-endpoint
/// `server.<endpoint>_5xx` counter the availability SLOs read.
fn respond(endpoint: &str, result: Result<Response, ServerError>) -> Response {
    result.unwrap_or_else(|e| {
        if e.status() >= 500 {
            orex_telemetry::global()
                .counter(&format!("server.{endpoint}_5xx"))
                .incr();
            orex_telemetry::logger()
                .error("server.error", format!("{e}"))
                .field_u64("status", u64::from(e.status()))
                .field_str("endpoint", endpoint)
                .emit();
        }
        e.into_response()
    })
}

fn route(
    request: &Request,
    state: &ServerState,
    trace_id: Option<u64>,
    flags: &mut QueryFlags,
) -> Response {
    let path = request.path.as_str();
    // Only /logs interprets the query string, but strip it before
    // segmenting so `/logs?level=...` routes like `/logs`.
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    let segments: Vec<&str> = path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        // The clock header carries this process's tracer time so an
        // ingress probe can estimate cross-process clock offsets for
        // stitched trace alignment.
        ("GET", ["healthz"]) => Response::text(200, "ok\n").with_header(
            "X-Orex-Clock",
            orex_telemetry::tracer().now_ns().to_string(),
        ),
        ("GET", ["metrics"]) => {
            let _span = orex_telemetry::global().span("server.metrics_us");
            Response::text(200, orex_telemetry::global().snapshot().to_prometheus())
        }
        ("POST", ["query"]) => respond("query", handle_query(request, state, trace_id, flags)),
        ("GET", ["datasets"]) => respond("datasets", handle_datasets(state)),
        ("GET", ["explain", sid, node]) => {
            respond("explain", handle_explain(state, sid, node, flags))
        }
        ("POST", ["feedback", sid]) => {
            respond("feedback", handle_feedback(request, state, sid, flags))
        }
        ("GET", ["trace", id]) => respond("trace", handle_trace(state, id, query)),
        ("GET", ["logs"]) => respond("logs", handle_logs(state, query)),
        ("GET", ["profile"]) => respond("profile", handle_profile(query)),
        ("GET", ["debug", "status"]) => respond("status", handle_status(state, query)),
        ("POST", ["query" | "feedback", ..])
        | ("GET", ["explain" | "trace" | "logs" | "profile" | "debug" | "datasets", ..]) => {
            Response::error(404, "no such route")
        }
        (
            _,
            ["healthz" | "metrics" | "query" | "explain" | "feedback" | "trace" | "logs" | "profile"
            | "debug" | "datasets", ..],
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such route"),
    }
}

/// Parses the request body as a JSON object.
fn body_object(request: &Request) -> Result<Value, ServerError> {
    let text = request
        .body_str()
        .ok_or_else(|| ServerError::BadRequest("body is not UTF-8".into()))?;
    let value = serde_json::from_str(text)
        .map_err(|_| ServerError::BadRequest("body is not valid JSON".into()))?;
    if value.as_object().is_none() {
        return Err(ServerError::BadRequest("body must be a JSON object".into()));
    }
    Ok(value)
}

fn ranked_json(session: &QuerySession<'_>, k: usize) -> Value {
    let results: Vec<Value> = session
        .top_k(k)
        .into_iter()
        .map(|r| {
            serde_json::json!({
                "node": r.node.raw(),
                "score": r.score,
                "label": r.label,
                "display": r.display,
            })
        })
        .collect();
    Value::Array(results)
}

fn session_error(e: &SessionError) -> ServerError {
    match e {
        SessionError::Ranking(_) | SessionError::Explain(_) => {
            ServerError::BadRequest(format!("{e}"))
        }
        SessionError::NoFeedbackObjects => {
            ServerError::BadRequest("no feedback objects given".into())
        }
    }
}

fn requested_k(body: &Value) -> usize {
    body.get("k")
        .and_then(Value::as_u64)
        .map_or(10, |k| (k as usize).clamp(1, 1000))
}

/// `GET /datasets`: every registered dataset with its load state and
/// per-dataset memory accounting.
fn handle_datasets(state: &ServerState) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.datasets_us");
    telemetry.counter("server.datasets_requests").incr();
    Ok(Response::json(
        200,
        serde_json::to_string(&state.registry.list_json()).unwrap_or_default(),
    ))
}

fn handle_query(
    request: &Request,
    state: &ServerState,
    trace_id: Option<u64>,
    flags: &mut QueryFlags,
) -> Result<Response, ServerError> {
    let body = body_object(request)?;
    let Some(query_text) = body.get("query").and_then(Value::as_str) else {
        return Err(ServerError::BadRequest("missing \"query\" field".into()));
    };
    let dataset_name = match body.get("dataset") {
        None => state.registry.default_name().to_string(),
        Some(Value::String(name)) => name.clone(),
        Some(_) => {
            return Err(ServerError::BadRequest(
                "\"dataset\" must be a string".into(),
            ))
        }
    };
    // Recorded before resolution so the access log carries the dataset
    // the client *asked for*, including unknown ones (their 404s are
    // exactly the records an operator greps for).
    flags.dataset = Some(dataset_name.clone());
    let service = state.registry.get(&dataset_name)?;
    service.count_query();
    let k = requested_k(&body);
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.query_us");
    telemetry.counter("server.query_requests").incr();

    let system = service.system();
    let ranks = service.ranks();
    // Normalize before consulting the cache, so equivalent spellings of
    // one query share an entry.
    let query = Query::parse(query_text);
    let qv = QueryVector::initial(&query, system.index().analyzer());

    let mut combined = false;
    let (snapshot, cached) = match ranks.lookup_initial(&qv)? {
        Some(snapshot) => (snapshot, true),
        // Result-cache miss: prefer the exact linear combination of
        // precomputed single-keyword vectors (Linearity, Section 6.2);
        // fall back to a live power iteration and queue the uncovered
        // terms for background backfill.
        None => match ranks.combine(&qv, system.index(), &system.config().okapi) {
            CombineOutcome::Hit(scores) => {
                combined = true;
                flags.precompute_hit = Some(true);
                let snapshot =
                    SessionSnapshot::from_parts(qv.clone(), system.initial_rates().clone(), scores);
                ranks.store(&qv, &snapshot)?;
                (snapshot, false)
            }
            outcome => {
                if let CombineOutcome::Miss(missing) = outcome {
                    flags.precompute_hit = Some(false);
                    ranks.request_backfill(missing);
                }
                let session = QuerySession::start(system, &query).map_err(|e| session_error(&e))?;
                let snapshot = session.snapshot();
                ranks.store(&qv, &snapshot)?;
                (snapshot, false)
            }
        },
    };
    flags.cache_hit = Some(cached);
    let session = QuerySession::resume(system, snapshot.clone());
    let session_id = state.sessions.insert(&dataset_name, snapshot)?;
    let payload = serde_json::json!({
        "session": session_id,
        "dataset": dataset_name,
        "cached": cached,
        "combined": combined,
        "trace": trace_id.map_or(Value::Null, Value::from),
        "results": ranked_json(&session, k),
    });
    Ok(Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_default(),
    ))
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

/// Resolves a session id to its snapshot and owning dataset service.
fn session_service(
    state: &ServerState,
    sid: u64,
    flags: &mut QueryFlags,
) -> Result<Option<(Arc<DatasetService>, SessionSnapshot)>, ServerError> {
    let Some((dataset, snapshot)) = state.sessions.get(sid)? else {
        return Ok(None);
    };
    flags.dataset = Some(dataset.to_string());
    let service = state.registry.get(&dataset)?;
    Ok(Some((service, snapshot)))
}

fn handle_explain(
    state: &ServerState,
    sid: &str,
    node: &str,
    flags: &mut QueryFlags,
) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.explain_us");
    telemetry.counter("server.explain_requests").incr();
    let Some(sid) = parse_id(sid) else {
        return Err(ServerError::BadRequest(
            "session id must be an integer".into(),
        ));
    };
    let Ok(node) = node.parse::<u32>() else {
        return Err(ServerError::BadRequest("node id must be an integer".into()));
    };
    let Some((service, snapshot)) = session_service(state, sid, flags)? else {
        return Err(ServerError::NotFound("no such session (expired?)".into()));
    };
    let system = service.system();
    let session = QuerySession::resume(system, snapshot);
    let target = NodeId::new(node);
    if node as usize >= system.graph().node_count() {
        return Err(ServerError::BadRequest("node id out of range".into()));
    }
    let explanation = session.explain(target).map_err(|e| session_error(&e))?;
    let summary = session
        .explain_summary(target, 8)
        .map_err(|e| session_error(&e))?;
    let meta_paths: Vec<Value> = summary
        .iter()
        .map(|m| {
            serde_json::json!({
                "signature": m.signature.clone(),
                "count": m.count as u64,
                "total_flow": m.total_flow,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "session": sid,
        "target": node,
        "display": system.display(target),
        "target_inflow": explanation.target_inflow(),
        "nodes": explanation.node_count() as u64,
        "edges": explanation.edge_count() as u64,
        "fixpoint_iterations": explanation.iterations() as u64,
        "converged": explanation.converged(),
        "meta_paths": Value::Array(meta_paths),
    });
    Ok(Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_default(),
    ))
}

fn handle_feedback(
    request: &Request,
    state: &ServerState,
    sid: &str,
    flags: &mut QueryFlags,
) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.feedback_us");
    telemetry.counter("server.feedback_requests").incr();
    let Some(sid) = parse_id(sid) else {
        return Err(ServerError::BadRequest(
            "session id must be an integer".into(),
        ));
    };
    let body = body_object(request)?;
    let Some(raw_objects) = body.get("objects").and_then(Value::as_array) else {
        return Err(ServerError::BadRequest("missing \"objects\" array".into()));
    };
    let Some((service, snapshot)) = session_service(state, sid, flags)? else {
        return Err(ServerError::NotFound("no such session (expired?)".into()));
    };
    let system = service.system();
    let node_count = system.graph().node_count();
    let mut objects = Vec::with_capacity(raw_objects.len());
    for v in raw_objects {
        match v.as_u64() {
            Some(raw) if (raw as usize) < node_count => objects.push(NodeId::new(raw as u32)),
            _ => {
                return Err(ServerError::BadRequest(
                    "objects must be in-range node ids".into(),
                ))
            }
        }
    }
    let k = requested_k(&body);
    // Warm-start reformulation: resume the stored state, run one
    // feedback round, store the advanced state back.
    let mut session = QuerySession::resume(system, snapshot);
    let stats = session.feedback(&objects).map_err(|e| session_error(&e))?;
    let advanced = session.snapshot();
    if !state.sessions.update(sid, advanced.clone())? {
        // Session expired mid-round; re-insert so the client's id error
        // on the *next* call, not this one, stays consistent.
        state.sessions.insert(service.name(), advanced)?;
    }
    let payload = serde_json::json!({
        "session": sid,
        "round": session.round() as u64,
        "rank_iterations": stats.rank_iterations as u64,
        "converged": stats.rank_converged,
        "results": ranked_json(&session, k),
    });
    Ok(Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_default(),
    ))
}

/// `GET /trace/<id>[?format=chrome|wire]`: one archived trace, as a
/// Chrome trace-event JSON document (the default, for humans) or in the
/// line-oriented wire format (for a stitching ingress edge assembling a
/// fleet-wide view).
fn handle_trace(state: &ServerState, id: &str, query: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.trace_us");
    telemetry.counter("server.trace_requests").incr();
    let Some(id) = parse_id(id) else {
        return Err(ServerError::BadRequest(
            "trace id must be an integer".into(),
        ));
    };
    let mut wire = false;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "format" => match value {
                "chrome" => wire = false,
                "wire" => wire = true,
                _ => {
                    return Err(ServerError::BadRequest(
                        "format must be chrome or wire".into(),
                    ));
                }
            },
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown query parameter {other:?} (expected format)"
                )));
            }
        }
    }
    // The requested trace may still sit in the ring (e.g. traced by
    // another worker that hasn't drained yet): absorb before lookup.
    state.traces.absorb(orex_telemetry::tracer().drain());
    match state.traces.get(id) {
        Some(spans) if wire => Ok(Response::text(200, orex_telemetry::export::to_wire(&spans))),
        Some(spans) => Ok(Response::json(
            200,
            orex_telemetry::export::to_chrome_trace(&spans),
        )),
        None => Err(ServerError::NotFound("no such trace (evicted?)".into())),
    }
}

/// `GET /logs?level=&since=&limit=&trace=`: tails the captured log ring
/// as JSON-lines. `level` keeps records at that severity or worse,
/// `since` keeps records with a capture sequence strictly greater (the
/// `seq` field of each served line, for polling), `limit` keeps the
/// newest N, `trace` keeps records stamped with that trace id — the
/// logs leg of metrics → trace → logs correlation.
fn handle_logs(state: &ServerState, query: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.logs_us");
    telemetry.counter("server.logs_requests").incr();
    let mut level = None;
    let mut since = None;
    let mut limit = None;
    let mut trace = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "level" => level = Some(value.parse::<Level>().map_err(ServerError::BadRequest)?),
            "since" => {
                since = Some(value.parse::<u64>().map_err(|_| {
                    ServerError::BadRequest("since must be an unsigned integer".into())
                })?);
            }
            "limit" => {
                limit = Some(value.parse::<usize>().map_err(|_| {
                    ServerError::BadRequest("limit must be an unsigned integer".into())
                })?);
            }
            "trace" => {
                trace = Some(value.parse::<u64>().map_err(|_| {
                    ServerError::BadRequest("trace must be an unsigned integer".into())
                })?);
            }
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown query parameter {other:?} (expected level|since|limit|trace)"
                )));
            }
        }
    }
    // Records may still sit in the logger's ring (emitted by workers
    // that haven't been drained): absorb before serving. The archive
    // keeps them for subsequent (and `since=`-cursored) reads.
    state.logs.absorb(orex_telemetry::logger().drain());
    // Every response advertises the newest capture sequence so pollers
    // always hold a valid cursor. A `since` beyond that cursor (stale
    // cursor from before a ring reset / server restart) serves an empty
    // page rather than stalling forever or replaying from the start —
    // the client resets its cursor from the header.
    let newest = state.logs.newest_seq().unwrap_or(0);
    let records = match since {
        Some(s) if s > newest => Vec::new(),
        _ => state.logs.query(level, since, limit, trace),
    };
    Ok(Response::new(
        200,
        "application/x-ndjson",
        orex_telemetry::export::log_json_lines(&records).into_bytes(),
    )
    .with_header("X-Orex-Log-Cursor", newest.to_string()))
}

/// `GET /profile?seconds=&format=folded|chrome`: folded span stacks (or
/// a Chrome trace-event view) aggregated from the continuous profiler's
/// rolling windows. `seconds=0` (the default) covers all retained
/// history. 503 when the sampler is off (`profile_hz = 0` and no
/// `OREX_PROFILE_HZ`).
fn handle_profile(query: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.profile_us");
    telemetry.counter("server.profile_requests").incr();
    let mut seconds = 0u64;
    let mut format = "folded";
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "seconds" => {
                seconds = value.parse::<u64>().map_err(|_| {
                    ServerError::BadRequest("seconds must be an unsigned integer".into())
                })?;
            }
            "format" => match value {
                "folded" => format = "folded",
                "chrome" => format = "chrome",
                _ => {
                    return Err(ServerError::BadRequest(
                        "format must be folded or chrome".into(),
                    ));
                }
            },
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown query parameter {other:?} (expected seconds|format)"
                )));
            }
        }
    }
    let profiler = orex_telemetry::profiler();
    if !profiler.is_running() {
        return Err(ServerError::Unavailable(
            "profiler is not running (start the server with a nonzero profile rate)".into(),
        ));
    }
    let snapshot = profiler.snapshot(seconds);
    Ok(match format {
        "chrome" => Response::json(200, snapshot.to_chrome()),
        _ => Response::text(200, snapshot.to_folded()),
    })
}

/// `GET /debug/status[?format=json]`: the operator dashboard. HTML by
/// default (self-refreshing, zero scripts); `format=json` serves the
/// machine-readable document `orex top` and CI consume.
fn handle_status(state: &ServerState, query: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.status_us");
    telemetry.counter("server.status_requests").incr();
    let mut json = false;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "format" => match value {
                "json" => json = true,
                "html" => json = false,
                _ => {
                    return Err(ServerError::BadRequest(
                        "format must be html or json".into(),
                    ));
                }
            },
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown query parameter {other:?} (expected format)"
                )));
            }
        }
    }
    // Top up history so the page is fresh even between collector ticks
    // (and deterministic in tests, which poll faster than the cadence).
    state.status.collect_if_stale(Duration::from_millis(250));
    state.logs.absorb(orex_telemetry::logger().drain());
    let mut cache = 0usize;
    let mut precompute_terms = 0usize;
    for name in state.registry.names() {
        if let Some(svc) = state.registry.get_if_loaded(name) {
            cache += svc.ranks().cached_results();
            precompute_terms += svc.ranks().precomputed_terms();
        }
    }
    let occupancy = Occupancy {
        sessions: state.sessions.len(),
        cache,
        precompute_terms,
        traces: state.traces.len(),
        logs: state.logs.len(),
        recent_errors: state.logs.query(Some(Level::Error), None, None, None).len(),
    };
    Ok(if json {
        Response::json(200, state.status.render_json(occupancy))
    } else {
        Response::html(200, state.status.render_html(occupancy))
    })
}
