//! The HTTP server proper: accept loop, routing, and handlers.
//!
//! One fixed worker pool serves one connection per request
//! (`Connection: close`), each request wrapped in a `server.request`
//! trace span and a `server.request_us` histogram sample. The accept
//! loop polls a nonblocking listener so it can observe the shutdown
//! flag (set programmatically or by SIGINT/SIGTERM); on shutdown it
//! stops accepting and joins the pool, draining in-flight requests.

use crate::error::ServerError;
use crate::http::{read_request, ParseError, Request, Response};
use crate::logs::LogArchive;
use crate::pool::ThreadPool;
use crate::ranks::{CombineOutcome, RankStore};
use crate::sessions::SessionTable;
use crate::status::{Occupancy, StatusBoard};
use crate::traces::TraceArchive;
use orex_core::{ObjectRankSystem, QuerySession, SessionError, SessionSnapshot};
use orex_graph::NodeId;
use orex_ir::{Query, QueryVector};
use orex_telemetry::Level;
use serde_json::Value;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7474`. Port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads.
    pub threads: usize,
    /// LRU result-cache capacity (distinct normalized queries).
    pub cache_entries: usize,
    /// Session idle TTL.
    pub session_ttl: Duration,
    /// Max live sessions before LRU eviction.
    pub max_sessions: usize,
    /// Per-request body limit in bytes.
    pub max_body_bytes: usize,
    /// Per-request socket read/write timeout.
    pub io_timeout: Duration,
    /// Traces retained for `GET /trace/<id>`.
    pub max_traces: usize,
    /// Log records retained for `GET /logs` (the server-side archive on
    /// top of the logger's own ring).
    pub max_logs: usize,
    /// Requests at least this slow additionally log a `server.slow`
    /// WARN record.
    pub slow_request: Duration,
    /// Precomputed rank-vector artifact (from `orex precompute`) to
    /// answer covered queries by linear combination. Validated against
    /// the served dataset at bind time.
    pub precompute_path: Option<PathBuf>,
    /// Build vectors for uncovered query terms in a background thread so
    /// later occurrences combine. Only meaningful with a precompute
    /// artifact loaded.
    pub backfill: bool,
    /// Continuous-profiler sampling rate in Hz; 0 leaves the sampler
    /// off (`GET /profile` then answers 503). The first component to
    /// touch the global profiler fixes its rate, and `OREX_PROFILE_HZ`
    /// overrides both.
    pub profile_hz: u64,
    /// Cadence of the background status collector that feeds
    /// `/debug/status` history and evaluates SLO burn rates.
    pub status_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7474".to_string(),
            threads: 8,
            cache_entries: 256,
            session_ttl: Duration::from_secs(600),
            max_sessions: 1024,
            max_body_bytes: 64 * 1024,
            io_timeout: Duration::from_secs(5),
            max_traces: 256,
            max_logs: 4096,
            slow_request: Duration::from_millis(500),
            precompute_path: None,
            backfill: true,
            profile_hz: orex_telemetry::profile::DEFAULT_HZ,
            status_interval: Duration::from_secs(2),
        }
    }
}

/// Everything a handler needs, shared across workers.
struct ServerState {
    system: Arc<ObjectRankSystem>,
    sessions: SessionTable,
    ranks: RankStore,
    traces: TraceArchive,
    logs: LogArchive,
    status: StatusBoard,
    max_body_bytes: usize,
    slow_request: Duration,
}

/// Per-request serving-path outcomes surfaced in the access log and the
/// query response.
#[derive(Default)]
struct QueryFlags {
    /// `Some(true)` when the result cache satisfied the query.
    cache_hit: Option<bool>,
    /// `Some(true)` when precomputed vectors were combined; `Some(false)`
    /// when a precomputed store was consulted but a live iteration ran.
    precompute_hit: Option<bool>,
}

/// Signals a running [`Server`] to stop accepting and drain.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown; `Server::run` returns after draining.
    pub fn shutdown(&self) {
        // Release pairs with the accept loop's Acquire load: everything
        // the requester did before asking for shutdown is visible to the
        // drain path. SeqCst would buy nothing — there is no multi-flag
        // total order to preserve here.
        self.stop.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Set by the process signal handler; observed by every running server.
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT/SIGTERM handlers that request graceful shutdown of
/// every running server in the process. Safe to call more than once.
/// No-op on non-Unix platforms.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        // Async-signal-safety: the handler only stores to an AtomicBool.
        extern "C" fn on_signal(_sig: i32) {
            // ORDERING: the flag is the only communication — nothing is
            // published under it, and a signal handler must not need a
            // full fence anyway; Release pairs with the accept loop's
            // Acquire for ordinary flag visibility.
            SIGNAL_STOP.store(true, Ordering::Release);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal(2)` is async-signal-safe to install at any
        // time; the handler is an `extern "C" fn` that only performs an
        // atomic store (itself async-signal-safe, no allocation, no
        // locks). Replacing a previously installed handler is the
        // documented idempotent behaviour this function promises.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// A bound, not-yet-running server; call [`Server::run`] to serve.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `config.addr` and prepares the shared state. When a
    /// precompute artifact is configured it is loaded and validated
    /// against the served dataset (graph hash, node count, damping,
    /// epsilon) — a mismatched artifact is a bind error, not a silent
    /// mis-ranking.
    pub fn bind(system: Arc<ObjectRankSystem>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let ranks = RankStore::new(config.cache_entries, system.initial_rates());
        if let Some(path) = &config.precompute_path {
            let store = orex_store::PrecomputedRanks::load(path)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            validate_precompute(&store, &system)
                .map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why))?;
            orex_telemetry::logger()
                .info("server.precompute", "precomputed ranks loaded")
                .field_str("path", path.to_string_lossy())
                .field_u64("terms", store.len() as u64)
                .field_u64("dataset_hash", store.dataset_hash())
                .emit();
            ranks.set_precomputed(store);
        }
        let state = Arc::new(ServerState {
            system,
            sessions: SessionTable::new(config.session_ttl, config.max_sessions),
            ranks,
            traces: TraceArchive::new(config.max_traces),
            logs: LogArchive::new(config.max_logs),
            status: StatusBoard::new(),
            max_body_bytes: config.max_body_bytes,
            slow_request: config.slow_request,
        });
        Ok(Self {
            listener,
            state,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serves until shutdown is requested (via [`ShutdownHandle`] or an
    /// installed signal handler), then drains in-flight requests and
    /// returns.
    pub fn run(self) -> io::Result<()> {
        let mut pool = ThreadPool::new(self.config.threads)?;
        let telemetry = orex_telemetry::global();
        // Continuous profiling: sample every thread's span stack so
        // `GET /profile` always has recent history.
        if self.config.profile_hz > 0 {
            orex_telemetry::profiler_at(self.config.profile_hz).start();
        }
        // Background status collector: snapshots metrics into the status
        // board's history ring and keeps SLO burn rates (and the
        // `orex_slo_*` gauges on /metrics) current even when nobody polls
        // /debug/status. Paced by a condvar so shutdown can interrupt a
        // sleep (ORX005: no bare thread::sleep in this crate).
        let collector_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let collector_handle = {
            let state = Arc::clone(&self.state);
            let stop = Arc::clone(&collector_stop);
            let interval = self.config.status_interval;
            std::thread::Builder::new()
                .name("orex-status".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    loop {
                        state.status.collect();
                        let guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
                        let (guard, _timeout) = cv
                            .wait_timeout(guard, interval)
                            .unwrap_or_else(PoisonError::into_inner);
                        if *guard {
                            return;
                        }
                    }
                })
                .ok()
        };
        // Background backfill: build vectors for uncovered query terms so
        // later occurrences of the same terms combine instead of iterate.
        let backfill_handle = if self.config.backfill && self.state.ranks.precomputed_terms() > 0 {
            let (tx, rx) = std::sync::mpsc::channel::<Vec<String>>();
            self.state.ranks.set_backfill_sender(tx);
            let state = Arc::clone(&self.state);
            Some(std::thread::spawn(move || backfill_loop(&state, rx)))
        } else {
            None
        };
        // Acquire pairs with the Release stores in `shutdown()` and the
        // signal handler; SeqCst's total order across the two flags is
        // unnecessary (either one stopping is sufficient and they never
        // coordinate with each other).
        while !self.stop.load(Ordering::Acquire) && !SIGNAL_STOP.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    telemetry.counter("server.connections").incr();
                    let state = Arc::clone(&self.state);
                    let io_timeout = self.config.io_timeout;
                    pool.execute(move || handle_connection(stream, &state, io_timeout));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // orex::allow(ORX005): the listener is nonblocking so
                    // this accept loop must pace its own polling to keep
                    // observing the stop flags; 2ms bounds shutdown
                    // latency without burning a core.
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Stop accepting; drain queued + in-flight requests.
        pool.join();
        // Close the backfill queue after the drain (drained requests may
        // still enqueue) and wait for the builder to finish its batch.
        self.state.ranks.close_backfill();
        if let Some(handle) = backfill_handle {
            let _ = handle.join();
        }
        {
            let (lock, cv) = &*collector_stop;
            *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
            cv.notify_all();
        }
        if let Some(handle) = collector_handle {
            let _ = handle.join();
        }
        telemetry.counter("server.clean_shutdowns").incr();
        Ok(())
    }
}

/// Checks a precompute artifact against the served system.
fn validate_precompute(
    store: &orex_store::PrecomputedRanks,
    system: &ObjectRankSystem,
) -> Result<(), String> {
    let graph_hash = orex_store::fnv1a(&orex_store::encode_graph(system.graph()));
    if store.dataset_hash() != graph_hash {
        return Err(format!(
            "precompute artifact was built for a different dataset \
             (artifact {:#x}, serving {:#x})",
            store.dataset_hash(),
            graph_hash
        ));
    }
    if store.node_count() != system.graph().node_count() {
        return Err(format!(
            "precompute artifact has {} nodes, graph has {}",
            store.node_count(),
            system.graph().node_count()
        ));
    }
    let rank = &system.config().rank;
    if store.damping() != rank.damping || store.epsilon() != rank.epsilon {
        return Err(format!(
            "precompute artifact converged under damping {} / epsilon {}, \
             system runs damping {} / epsilon {}",
            store.damping(),
            store.epsilon(),
            rank.damping,
            rank.epsilon
        ));
    }
    Ok(())
}

/// The backfill builder: drains term batches from the queue, runs them
/// through the batched kernel (global warm start, same parameters as the
/// offline build) and installs the finished vectors. Exits when every
/// sender is dropped (server shutdown).
fn backfill_loop(state: &ServerState, rx: std::sync::mpsc::Receiver<Vec<String>>) {
    let system = &state.system;
    let scorer = &system.config().okapi;
    let params = system.config().rank;
    while let Ok(terms) = rx.recv() {
        let _span = orex_telemetry::global().span("server.backfill_us");
        let matrix =
            orex_authority::TransitionMatrix::new(system.transfer(), system.initial_rates());
        let mut kept: Vec<(String, f64)> = Vec::with_capacity(terms.len());
        let mut bases = Vec::with_capacity(terms.len());
        let mut skipped: Vec<String> = Vec::new();
        for term in terms {
            match orex_store::term_base(system.index(), scorer, &term) {
                Some((mass, base)) => {
                    kept.push((term, mass));
                    bases.push(base);
                }
                None => skipped.push(term),
            }
        }
        // Terms without base sets can never combine; unmark them so a
        // rebuilt index could retry, and skip the kernel entirely.
        state.ranks.clear_in_flight(&skipped);
        if bases.is_empty() {
            continue;
        }
        let results =
            orex_authority::power_iteration_batch(&matrix, &bases, &params, system.global_scores());
        let built: Vec<(String, f64, Vec<f64>)> = kept
            .into_iter()
            .zip(results)
            .map(|((term, mass), result)| (term, mass, result.scores))
            .collect();
        orex_telemetry::logger()
            .info("server.backfill", "backfilled precomputed vectors")
            .field_u64("terms", built.len() as u64)
            .emit();
        state.ranks.insert_backfilled(built);
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let telemetry = orex_telemetry::global();
    let tracer = orex_telemetry::tracer();
    let start = Instant::now();

    let (response, sampled_trace) = match read_request(&stream, state.max_body_bytes) {
        Ok(request) => {
            telemetry.counter("server.requests").incr();
            // Root span of this request's trace; handler spans nest
            // under it. Dropped before the ring is drained below so the
            // archive sees the complete trace.
            let (response, sampled_trace) = {
                let mut span = tracer.span("server.request");
                if span.is_recording() {
                    span.attr_str("method", &request.method);
                    span.attr_str("path", &request.path);
                }
                let trace_id = span.trace_id().map(|t| t.0);
                // Only sampled traces reach the archive, so only those
                // make honest exemplars — an unsampled id would 404 on
                // `GET /trace/<id>`.
                let sampled_trace = if span.is_sampled() { trace_id } else { None };
                let mut flags = QueryFlags::default();
                let response = route(&request, state, trace_id, &mut flags);
                // Emitted while the span is still open, so the record is
                // stamped with this request's trace/span ids.
                access_log(state, Some(&request), &response, &flags, start.elapsed());
                (response, sampled_trace)
            };
            state.traces.absorb(tracer.drain());
            (response, sampled_trace)
        }
        Err(ParseError::ConnectionClosed) => return,
        Err(ParseError::BodyTooLarge(_)) => {
            telemetry.counter("server.requests").incr();
            let response = Response::error(413, "request body exceeds limit");
            access_log(
                state,
                None,
                &response,
                &QueryFlags::default(),
                start.elapsed(),
            );
            (response, None)
        }
        Err(ParseError::Malformed(why)) => {
            telemetry.counter("server.requests").incr();
            let response = Response::error(400, why);
            access_log(
                state,
                None,
                &response,
                &QueryFlags::default(),
                start.elapsed(),
            );
            (response, None)
        }
        Err(ParseError::Io(_)) => {
            telemetry.counter("server.request_timeouts").incr();
            let response = Response::error(408, "timed out reading request");
            access_log(
                state,
                None,
                &response,
                &QueryFlags::default(),
                start.elapsed(),
            );
            (response, None)
        }
    };

    telemetry
        .histogram("server.request_us")
        .record_with_exemplar(start.elapsed().as_micros() as f64, sampled_trace);
    telemetry
        .counter(&format!("server.responses_{}xx", response.status / 100))
        .incr();
    let _ = response.write_to(&mut stream);
}

/// Emits the one `server.access` record every response gets — method,
/// path, status, body bytes, latency, cache and precompute hit/miss —
/// plus a `server.slow` WARN when the request crossed the slow
/// threshold. Called inside the request span when one exists, so the
/// records carry the request's trace/span ids; unparseable requests
/// (4xx before routing) log with `-` placeholders and no trace.
fn access_log(
    state: &ServerState,
    request: Option<&Request>,
    response: &Response,
    flags: &QueryFlags,
    elapsed: Duration,
) {
    let log = orex_telemetry::logger();
    let method = request.map_or("-", |r| r.method.as_str());
    let path = request.map_or("-", |r| r.path.as_str());
    let latency_us = elapsed.as_micros() as u64;
    let mut record = log
        .info("server.access", "request")
        .field_str("method", method)
        .field_str("path", path)
        .field_u64("status", u64::from(response.status))
        .field_u64("bytes", response.body.len() as u64)
        .field_u64("latency_us", latency_us);
    if let Some(hit) = flags.cache_hit {
        record = record.field_bool("cache_hit", hit);
    }
    if let Some(hit) = flags.precompute_hit {
        record = record.field_bool("precompute_hit", hit);
    }
    record.emit();
    if elapsed >= state.slow_request {
        log.warn("server.slow", "slow request")
            .field_str("method", method)
            .field_str("path", path)
            .field_u64("status", u64::from(response.status))
            .field_u64("latency_us", latency_us)
            .field_u64("threshold_us", state.slow_request.as_micros() as u64)
            .emit();
    }
}

/// Renders a handler result, logging every 5xx at ERROR — the request
/// span is still open here, so the record carries the trace id that
/// `GET /trace/<id>` serves. `endpoint` feeds the per-endpoint
/// `server.<endpoint>_5xx` counter the availability SLOs read.
fn respond(endpoint: &str, result: Result<Response, ServerError>) -> Response {
    result.unwrap_or_else(|e| {
        if e.status() >= 500 {
            orex_telemetry::global()
                .counter(&format!("server.{endpoint}_5xx"))
                .incr();
            orex_telemetry::logger()
                .error("server.error", format!("{e}"))
                .field_u64("status", u64::from(e.status()))
                .field_str("endpoint", endpoint)
                .emit();
        }
        e.into_response()
    })
}

fn route(
    request: &Request,
    state: &ServerState,
    trace_id: Option<u64>,
    flags: &mut QueryFlags,
) -> Response {
    let path = request.path.as_str();
    // Only /logs interprets the query string, but strip it before
    // segmenting so `/logs?level=...` routes like `/logs`.
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    let segments: Vec<&str> = path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => {
            let _span = orex_telemetry::global().span("server.metrics_us");
            Response::text(200, orex_telemetry::global().snapshot().to_prometheus())
        }
        ("POST", ["query"]) => respond("query", handle_query(request, state, trace_id, flags)),
        ("GET", ["explain", sid, node]) => respond("explain", handle_explain(state, sid, node)),
        ("POST", ["feedback", sid]) => respond("feedback", handle_feedback(request, state, sid)),
        ("GET", ["trace", id]) => respond("trace", handle_trace(state, id)),
        ("GET", ["logs"]) => respond("logs", handle_logs(state, query)),
        ("GET", ["profile"]) => respond("profile", handle_profile(query)),
        ("GET", ["debug", "status"]) => respond("status", handle_status(state, query)),
        ("POST", ["query" | "feedback", ..])
        | ("GET", ["explain" | "trace" | "logs" | "profile" | "debug", ..]) => {
            Response::error(404, "no such route")
        }
        (
            _,
            ["healthz" | "metrics" | "query" | "explain" | "feedback" | "trace" | "logs" | "profile"
            | "debug", ..],
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such route"),
    }
}

/// Parses the request body as a JSON object.
fn body_object(request: &Request) -> Result<Value, ServerError> {
    let text = request
        .body_str()
        .ok_or_else(|| ServerError::BadRequest("body is not UTF-8".into()))?;
    let value = serde_json::from_str(text)
        .map_err(|_| ServerError::BadRequest("body is not valid JSON".into()))?;
    if value.as_object().is_none() {
        return Err(ServerError::BadRequest("body must be a JSON object".into()));
    }
    Ok(value)
}

fn ranked_json(session: &QuerySession<'_>, k: usize) -> Value {
    let results: Vec<Value> = session
        .top_k(k)
        .into_iter()
        .map(|r| {
            serde_json::json!({
                "node": r.node.raw(),
                "score": r.score,
                "label": r.label,
                "display": r.display,
            })
        })
        .collect();
    Value::Array(results)
}

fn session_error(e: &SessionError) -> ServerError {
    match e {
        SessionError::Ranking(_) | SessionError::Explain(_) => {
            ServerError::BadRequest(format!("{e}"))
        }
        SessionError::NoFeedbackObjects => {
            ServerError::BadRequest("no feedback objects given".into())
        }
    }
}

fn requested_k(body: &Value) -> usize {
    body.get("k")
        .and_then(Value::as_u64)
        .map_or(10, |k| (k as usize).clamp(1, 1000))
}

fn handle_query(
    request: &Request,
    state: &ServerState,
    trace_id: Option<u64>,
    flags: &mut QueryFlags,
) -> Result<Response, ServerError> {
    let body = body_object(request)?;
    let Some(query_text) = body.get("query").and_then(Value::as_str) else {
        return Err(ServerError::BadRequest("missing \"query\" field".into()));
    };
    let k = requested_k(&body);
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.query_us");
    telemetry.counter("server.query_requests").incr();

    // Normalize before consulting the cache, so equivalent spellings of
    // one query share an entry.
    let query = Query::parse(query_text);
    let qv = QueryVector::initial(&query, state.system.index().analyzer());

    let mut combined = false;
    let (snapshot, cached) = match state.ranks.lookup_initial(&qv)? {
        Some(snapshot) => (snapshot, true),
        // Result-cache miss: prefer the exact linear combination of
        // precomputed single-keyword vectors (Linearity, Section 6.2);
        // fall back to a live power iteration and queue the uncovered
        // terms for background backfill.
        None => match state
            .ranks
            .combine(&qv, state.system.index(), &state.system.config().okapi)
        {
            CombineOutcome::Hit(scores) => {
                combined = true;
                flags.precompute_hit = Some(true);
                let snapshot = SessionSnapshot::from_parts(
                    qv.clone(),
                    state.system.initial_rates().clone(),
                    scores,
                );
                state.ranks.store(&qv, &snapshot)?;
                (snapshot, false)
            }
            outcome => {
                if let CombineOutcome::Miss(missing) = outcome {
                    flags.precompute_hit = Some(false);
                    state.ranks.request_backfill(missing);
                }
                let session =
                    QuerySession::start(&state.system, &query).map_err(|e| session_error(&e))?;
                let snapshot = session.snapshot();
                state.ranks.store(&qv, &snapshot)?;
                (snapshot, false)
            }
        },
    };
    flags.cache_hit = Some(cached);
    let session = QuerySession::resume(&state.system, snapshot.clone());
    let session_id = state.sessions.insert(snapshot)?;
    let payload = serde_json::json!({
        "session": session_id,
        "cached": cached,
        "combined": combined,
        "trace": trace_id.map_or(Value::Null, Value::from),
        "results": ranked_json(&session, k),
    });
    Ok(Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_default(),
    ))
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn handle_explain(state: &ServerState, sid: &str, node: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.explain_us");
    telemetry.counter("server.explain_requests").incr();
    let Some(sid) = parse_id(sid) else {
        return Err(ServerError::BadRequest(
            "session id must be an integer".into(),
        ));
    };
    let Ok(node) = node.parse::<u32>() else {
        return Err(ServerError::BadRequest("node id must be an integer".into()));
    };
    let Some(snapshot) = state.sessions.get(sid)? else {
        return Err(ServerError::NotFound("no such session (expired?)".into()));
    };
    let session = QuerySession::resume(&state.system, snapshot);
    let target = NodeId::new(node);
    if node as usize >= state.system.graph().node_count() {
        return Err(ServerError::BadRequest("node id out of range".into()));
    }
    let explanation = session.explain(target).map_err(|e| session_error(&e))?;
    let summary = session
        .explain_summary(target, 8)
        .map_err(|e| session_error(&e))?;
    let meta_paths: Vec<Value> = summary
        .iter()
        .map(|m| {
            serde_json::json!({
                "signature": m.signature.clone(),
                "count": m.count as u64,
                "total_flow": m.total_flow,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "session": sid,
        "target": node,
        "display": state.system.display(target),
        "target_inflow": explanation.target_inflow(),
        "nodes": explanation.node_count() as u64,
        "edges": explanation.edge_count() as u64,
        "fixpoint_iterations": explanation.iterations() as u64,
        "converged": explanation.converged(),
        "meta_paths": Value::Array(meta_paths),
    });
    Ok(Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_default(),
    ))
}

fn handle_feedback(
    request: &Request,
    state: &ServerState,
    sid: &str,
) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.feedback_us");
    telemetry.counter("server.feedback_requests").incr();
    let Some(sid) = parse_id(sid) else {
        return Err(ServerError::BadRequest(
            "session id must be an integer".into(),
        ));
    };
    let body = body_object(request)?;
    let Some(raw_objects) = body.get("objects").and_then(Value::as_array) else {
        return Err(ServerError::BadRequest("missing \"objects\" array".into()));
    };
    let node_count = state.system.graph().node_count();
    let mut objects = Vec::with_capacity(raw_objects.len());
    for v in raw_objects {
        match v.as_u64() {
            Some(raw) if (raw as usize) < node_count => objects.push(NodeId::new(raw as u32)),
            _ => {
                return Err(ServerError::BadRequest(
                    "objects must be in-range node ids".into(),
                ))
            }
        }
    }
    let k = requested_k(&body);
    let Some(snapshot) = state.sessions.get(sid)? else {
        return Err(ServerError::NotFound("no such session (expired?)".into()));
    };
    // Warm-start reformulation: resume the stored state, run one
    // feedback round, store the advanced state back.
    let mut session = QuerySession::resume(&state.system, snapshot);
    let stats = session.feedback(&objects).map_err(|e| session_error(&e))?;
    let advanced = session.snapshot();
    if !state.sessions.update(sid, advanced.clone())? {
        // Session expired mid-round; re-insert so the client's id error
        // on the *next* call, not this one, stays consistent.
        state.sessions.insert(advanced)?;
    }
    let payload = serde_json::json!({
        "session": sid,
        "round": session.round() as u64,
        "rank_iterations": stats.rank_iterations as u64,
        "converged": stats.rank_converged,
        "results": ranked_json(&session, k),
    });
    Ok(Response::json(
        200,
        serde_json::to_string(&payload).unwrap_or_default(),
    ))
}

fn handle_trace(state: &ServerState, id: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.trace_us");
    telemetry.counter("server.trace_requests").incr();
    let Some(id) = parse_id(id) else {
        return Err(ServerError::BadRequest(
            "trace id must be an integer".into(),
        ));
    };
    // The requested trace may still sit in the ring (e.g. traced by
    // another worker that hasn't drained yet): absorb before lookup.
    state.traces.absorb(orex_telemetry::tracer().drain());
    match state.traces.get(id) {
        Some(spans) => Ok(Response::json(
            200,
            orex_telemetry::export::to_chrome_trace(&spans),
        )),
        None => Err(ServerError::NotFound("no such trace (evicted?)".into())),
    }
}

/// `GET /logs?level=&since=&limit=`: tails the captured log ring as
/// JSON-lines. `level` keeps records at that severity or worse, `since`
/// keeps records with a capture sequence strictly greater (the `seq`
/// field of each served line, for polling), `limit` keeps the newest N.
fn handle_logs(state: &ServerState, query: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.logs_us");
    telemetry.counter("server.logs_requests").incr();
    let mut level = None;
    let mut since = None;
    let mut limit = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "level" => level = Some(value.parse::<Level>().map_err(ServerError::BadRequest)?),
            "since" => {
                since = Some(value.parse::<u64>().map_err(|_| {
                    ServerError::BadRequest("since must be an unsigned integer".into())
                })?);
            }
            "limit" => {
                limit = Some(value.parse::<usize>().map_err(|_| {
                    ServerError::BadRequest("limit must be an unsigned integer".into())
                })?);
            }
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown query parameter {other:?} (expected level|since|limit)"
                )));
            }
        }
    }
    // Records may still sit in the logger's ring (emitted by workers
    // that haven't been drained): absorb before serving. The archive
    // keeps them for subsequent (and `since=`-cursored) reads.
    state.logs.absorb(orex_telemetry::logger().drain());
    // Every response advertises the newest capture sequence so pollers
    // always hold a valid cursor. A `since` beyond that cursor (stale
    // cursor from before a ring reset / server restart) serves an empty
    // page rather than stalling forever or replaying from the start —
    // the client resets its cursor from the header.
    let newest = state.logs.newest_seq().unwrap_or(0);
    let records = match since {
        Some(s) if s > newest => Vec::new(),
        _ => state.logs.query(level, since, limit),
    };
    Ok(Response::new(
        200,
        "application/x-ndjson",
        orex_telemetry::export::log_json_lines(&records).into_bytes(),
    )
    .with_header("X-Orex-Log-Cursor", newest.to_string()))
}

/// `GET /profile?seconds=&format=folded|chrome`: folded span stacks (or
/// a Chrome trace-event view) aggregated from the continuous profiler's
/// rolling windows. `seconds=0` (the default) covers all retained
/// history. 503 when the sampler is off (`profile_hz = 0` and no
/// `OREX_PROFILE_HZ`).
fn handle_profile(query: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.profile_us");
    telemetry.counter("server.profile_requests").incr();
    let mut seconds = 0u64;
    let mut format = "folded";
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "seconds" => {
                seconds = value.parse::<u64>().map_err(|_| {
                    ServerError::BadRequest("seconds must be an unsigned integer".into())
                })?;
            }
            "format" => match value {
                "folded" => format = "folded",
                "chrome" => format = "chrome",
                _ => {
                    return Err(ServerError::BadRequest(
                        "format must be folded or chrome".into(),
                    ));
                }
            },
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown query parameter {other:?} (expected seconds|format)"
                )));
            }
        }
    }
    let profiler = orex_telemetry::profiler();
    if !profiler.is_running() {
        return Err(ServerError::Unavailable(
            "profiler is not running (start the server with a nonzero profile rate)".into(),
        ));
    }
    let snapshot = profiler.snapshot(seconds);
    Ok(match format {
        "chrome" => Response::json(200, snapshot.to_chrome()),
        _ => Response::text(200, snapshot.to_folded()),
    })
}

/// `GET /debug/status[?format=json]`: the operator dashboard. HTML by
/// default (self-refreshing, zero scripts); `format=json` serves the
/// machine-readable document `orex top` and CI consume.
fn handle_status(state: &ServerState, query: &str) -> Result<Response, ServerError> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("server.status_us");
    telemetry.counter("server.status_requests").incr();
    let mut json = false;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "format" => match value {
                "json" => json = true,
                "html" => json = false,
                _ => {
                    return Err(ServerError::BadRequest(
                        "format must be html or json".into(),
                    ));
                }
            },
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown query parameter {other:?} (expected format)"
                )));
            }
        }
    }
    // Top up history so the page is fresh even between collector ticks
    // (and deterministic in tests, which poll faster than the cadence).
    state.status.collect_if_stale(Duration::from_millis(250));
    state.logs.absorb(orex_telemetry::logger().drain());
    let occupancy = Occupancy {
        sessions: state.sessions.len(),
        cache: state.ranks.cached_results(),
        precompute_terms: state.ranks.precomputed_terms(),
        traces: state.traces.len(),
        logs: state.logs.len(),
        recent_errors: state.logs.query(Some(Level::Error), None, None).len(),
    };
    Ok(if json {
        Response::json(200, state.status.render_json(occupancy))
    } else {
        Response::html(200, state.status.render_html(occupancy))
    })
}
