//! Server-side archive of completed traces.
//!
//! The tracer ring is a shared drain-once buffer: whichever worker
//! drains it takes everything, including spans of requests other workers
//! just finished. So after each traced request the handler drains the
//! global ring into this archive, which merges partial drains by trace
//! id and serves `GET /trace/<id>` from the merged view. Bounded by
//! trace count, oldest evicted first.

use orex_telemetry::trace::SpanRecord;
use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, PoisonError};

struct Inner {
    traces: HashMap<u64, Vec<SpanRecord>>,
    /// Trace ids in first-seen order, driving oldest-first eviction.
    order: VecDeque<u64>,
}

/// Bounded id-keyed store of drained spans; see the module docs.
pub struct TraceArchive {
    inner: Mutex<Inner>,
    max_traces: usize,
}

impl TraceArchive {
    /// An archive retaining at most `max_traces` traces (minimum 1).
    pub fn new(max_traces: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                traces: HashMap::new(),
                order: VecDeque::new(),
            }),
            max_traces: max_traces.max(1),
        }
    }

    /// Merges drained span records into the archive.
    ///
    /// Best-effort telemetry: a poisoned lock is recovered rather than
    /// surfaced — the maps stay structurally valid (every mutation here
    /// completes or never starts), and dropping drained spans on the
    /// floor would lose another request's trace.
    pub fn absorb(&self, records: Vec<SpanRecord>) {
        if records.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        for record in records {
            let id = record.trace.0;
            let entry = inner.traces.entry(id).or_default();
            if entry.is_empty() {
                inner.order.push_back(id);
            }
            inner.traces.entry(id).or_default().push(record);
        }
        while inner.order.len() > self.max_traces {
            if let Some(victim) = inner.order.pop_front() {
                inner.traces.remove(&victim);
            }
        }
    }

    /// All spans of `trace_id`, in completion order, if archived.
    pub fn get(&self, trace_id: u64) -> Option<Vec<SpanRecord>> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut spans = inner.traces.get(&trace_id)?.clone();
        spans.sort_by_key(|r| r.ticket);
        Some(spans)
    }

    /// Number of archived traces.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .traces
            .len()
    }

    /// True when nothing has been archived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_telemetry::trace::Tracer;

    fn spans_for(tracer: &Tracer, name: &'static str) -> Vec<SpanRecord> {
        {
            let _root = tracer.span(name);
            drop(tracer.span("child"));
        }
        tracer.drain()
    }

    #[test]
    fn absorb_merges_partial_drains_by_trace() {
        let tracer = Tracer::new(64);
        let archive = TraceArchive::new(8);
        // Simulate two partial drains of one trace.
        let trace_id;
        {
            let root = tracer.span("request");
            trace_id = root.trace_id().unwrap().0;
            drop(tracer.span("rank"));
            archive.absorb(tracer.drain()); // child only: root still open
        }
        archive.absorb(tracer.drain()); // root
        let spans = archive.get(trace_id).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "rank");
        assert_eq!(spans[1].name, "request");
    }

    #[test]
    fn eviction_drops_oldest_trace() {
        let tracer = Tracer::new(64);
        let archive = TraceArchive::new(2);
        let mut ids = Vec::new();
        for name in ["a", "b", "c"] {
            let records = spans_for(&tracer, name);
            ids.push(records[0].trace.0);
            archive.absorb(records);
        }
        assert_eq!(archive.len(), 2);
        assert!(archive.get(ids[0]).is_none(), "oldest trace evicted");
        assert!(archive.get(ids[1]).is_some());
        assert!(archive.get(ids[2]).is_some());
    }

    #[test]
    fn unknown_trace_is_none() {
        let archive = TraceArchive::new(2);
        assert!(archive.get(42).is_none());
        assert!(archive.is_empty());
    }
}
