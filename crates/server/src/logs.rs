//! Server-side archive of captured log records.
//!
//! Like the trace ring, the global logger's ring is a shared drain-once
//! buffer: whichever worker drains it takes every record, including the
//! access logs other workers just emitted. So `GET /logs` drains the
//! global logger into this archive and serves (and re-serves) from the
//! merged view, which also gives `since=` cursors something stable to
//! page over. Bounded by record count, oldest evicted first.

use orex_telemetry::{Level, LogRecord};
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Bounded sequence-ordered store of drained log records; see the
/// module docs.
pub struct LogArchive {
    inner: Mutex<VecDeque<LogRecord>>,
    max_records: usize,
}

impl LogArchive {
    /// An archive retaining at most `max_records` records (minimum 1).
    pub fn new(max_records: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
            max_records: max_records.max(1),
        }
    }

    /// Appends drained records (already in capture order; drains are
    /// themselves monotone in `seq`), evicting oldest records over
    /// capacity.
    ///
    /// Best-effort observability: a poisoned lock is recovered rather
    /// than surfaced — the deque stays structurally valid (every
    /// mutation completes or never starts), and dropping the drain on
    /// the floor would lose other requests' access logs.
    pub fn absorb(&self, records: Vec<LogRecord>) {
        if records.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.extend(records);
        while inner.len() > self.max_records {
            inner.pop_front();
        }
    }

    /// Archived records passing the filters, oldest first: at most
    /// `level` severity rank (e.g. `Level::Warn` selects WARN and
    /// ERROR), capture sequence strictly greater than `since`, records
    /// stamped with trace id `trace` (records without a trace never
    /// match), and when `limit` is given only the *newest* `limit`
    /// survivors.
    pub fn query(
        &self,
        level: Option<Level>,
        since: Option<u64>,
        limit: Option<usize>,
        trace: Option<u64>,
    ) -> Vec<LogRecord> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<LogRecord> = inner
            .iter()
            .filter(|r| level.is_none_or(|max| r.level <= max))
            .filter(|r| since.is_none_or(|s| r.seq > s))
            .filter(|r| trace.is_none_or(|t| r.trace.map(|id| id.0) == Some(t)))
            .cloned()
            .collect();
        if let Some(limit) = limit {
            if out.len() > limit {
                out.drain(..out.len() - limit);
            }
        }
        out
    }

    /// Capture sequence of the newest archived record — the cursor a
    /// poller should resume from. `None` when nothing is archived.
    pub fn newest_seq(&self) -> Option<u64> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .back()
            .map(|r| r.seq)
    }

    /// Number of archived records.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been archived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_telemetry::{LogFilter, Logger};

    fn records(logger: &Logger, base: usize, n: usize) -> Vec<LogRecord> {
        for i in base..base + n {
            logger
                .info("t", format!("m{i}"))
                .field_u64("i", i as u64)
                .emit();
        }
        logger.drain()
    }

    #[test]
    fn absorb_preserves_order_and_evicts_oldest() {
        let logger = Logger::new(64);
        let archive = LogArchive::new(3);
        archive.absorb(records(&logger, 0, 2));
        archive.absorb(records(&logger, 2, 3));
        assert_eq!(archive.len(), 3);
        let all = archive.query(None, None, None, None);
        let messages: Vec<_> = all.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(messages, ["m2", "m3", "m4"], "last three survive");
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn query_filters_by_level_since_and_limit() {
        let logger = Logger::new(64);
        logger.set_filter(LogFilter::at(Level::Debug));
        logger.error("t", "boom").emit();
        logger.warn("t", "odd").emit();
        logger.info("t", "fine").emit();
        logger.debug("t", "detail").emit();
        let archive = LogArchive::new(16);
        archive.absorb(logger.drain());

        assert_eq!(archive.query(None, None, None, None).len(), 4);
        let severe = archive.query(Some(Level::Warn), None, None, None);
        assert_eq!(severe.len(), 2);
        assert!(severe.iter().all(|r| r.level <= Level::Warn));

        let first_seq = archive.query(None, None, None, None)[0].seq;
        let after = archive.query(None, Some(first_seq), None, None);
        assert_eq!(after.len(), 3, "since is exclusive");

        let newest = archive.query(None, None, Some(2), None);
        assert_eq!(newest.len(), 2);
        assert_eq!(newest[1].message, "detail", "limit keeps the newest");
    }

    #[test]
    fn query_filters_by_trace_id() {
        let logger = Logger::new(64);
        let tracer = orex_telemetry::tracer();
        let traced_id;
        {
            let span = tracer.span("t.request");
            traced_id = span.trace_id().map(|t| t.0);
            logger.info("t", "inside").emit();
        }
        logger.info("t", "outside").emit();
        tracer.drain();
        let archive = LogArchive::new(16);
        archive.absorb(logger.drain());

        if let Some(id) = traced_id {
            let matched = archive.query(None, None, None, Some(id));
            assert_eq!(matched.len(), 1);
            assert_eq!(matched[0].message, "inside");
        }
        // A trace id nothing was stamped with matches no records —
        // including the untraced "outside" record.
        assert!(archive.query(None, None, None, Some(u64::MAX)).is_empty());
    }

    #[test]
    fn empty_archive_is_empty() {
        let archive = LogArchive::new(4);
        assert!(archive.is_empty());
        assert!(archive
            .query(Some(Level::Error), Some(7), Some(1), None)
            .is_empty());
    }

    #[test]
    fn newest_seq_tracks_the_latest_record() {
        let logger = Logger::new(64);
        let archive = LogArchive::new(4);
        assert_eq!(archive.newest_seq(), None);
        archive.absorb(records(&logger, 0, 3));
        let newest = archive.newest_seq().unwrap();
        let all = archive.query(None, None, None, None);
        assert_eq!(newest, all.last().unwrap().seq);
        // A cursor past the newest seq matches nothing.
        assert!(archive
            .query(None, Some(newest + 100), None, None)
            .is_empty());
    }
}
