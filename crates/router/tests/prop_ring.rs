//! Property tests for the consistent-hash ring: balance, minimal remap
//! on ejection, and exact restoration on readmission — the properties
//! the fleet's cache-affinity story rests on.

use orex_router::HashRing;
use proptest::prelude::*;

/// Enough keys that per-worker shares concentrate near their mean.
const KEYS: usize = 2000;

fn keys() -> Vec<Vec<u8>> {
    (0..KEYS)
        .map(|i| format!("query-key-{i}").into_bytes())
        .collect()
}

fn owners(ring: &HashRing, keys: &[Vec<u8>]) -> Vec<Option<usize>> {
    keys.iter().map(|k| ring.route(k)).collect()
}

proptest! {
    /// Every worker owns a nonzero share, and no worker owns more than
    /// ~2.5x its fair share — the usual vnode concentration bound.
    #[test]
    fn shares_are_balanced(workers in 2usize..9) {
        let ring = HashRing::new(workers);
        let keys = keys();
        let mut counts = vec![0usize; workers];
        for owner in owners(&ring, &keys).into_iter().flatten() {
            counts[owner] += 1;
        }
        let fair = KEYS as f64 / workers as f64;
        for (worker, count) in counts.iter().enumerate() {
            prop_assert!(*count > 0, "worker {worker} owns nothing");
            prop_assert!(
                (*count as f64) < fair * 2.5,
                "worker {worker} owns {count} of {KEYS} keys (fair share {fair:.0})"
            );
        }
    }

    /// Ejecting one worker moves only the keys it owned (≤ ~2.5/N of
    /// the keyspace); every other key keeps its owner.
    #[test]
    fn eject_remaps_only_the_ejected_workers_keys(
        workers in 2usize..9,
        victim_raw in 0usize..8,
    ) {
        let victim = victim_raw % workers;
        let mut ring = HashRing::new(workers);
        let keys = keys();
        let before = owners(&ring, &keys);
        ring.eject(victim);
        let after = owners(&ring, &keys);
        let mut moved = 0usize;
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if *b == Some(victim) {
                moved += 1;
                prop_assert!(*a != Some(victim), "key {i} still routes to the ejected worker");
                prop_assert!(a.is_some(), "key {i} routes nowhere with workers remaining");
            } else {
                prop_assert_eq!(*a, *b, "key {i} moved although its owner survives");
            }
        }
        let bound = (KEYS as f64 * 2.5 / workers as f64).ceil() as usize;
        prop_assert!(
            moved <= bound,
            "ejection remapped {moved} keys, over the ~2.5/N bound {bound}"
        );
    }

    /// Eject + readmit restores exactly the original assignment — the
    /// returning worker gets its cache-warm keys back, nothing else
    /// shifts.
    #[test]
    fn readmit_restores_the_exact_assignment(
        workers in 2usize..9,
        victim_raw in 0usize..8,
    ) {
        let victim = victim_raw % workers;
        let mut ring = HashRing::new(workers);
        let keys = keys();
        let before = owners(&ring, &keys);
        ring.eject(victim);
        ring.readmit(victim);
        prop_assert_eq!(owners(&ring, &keys), before);
    }

    /// The retry target is always a distinct admitted worker, and with
    /// only one admitted worker there is no retry target at all.
    #[test]
    fn retry_target_is_distinct(workers in 2usize..9, key_index in 0usize..KEYS) {
        let ring = HashRing::new(workers);
        let key = format!("query-key-{key_index}").into_bytes();
        let owner = ring.route(&key).expect("all admitted");
        let alternate = ring.route_excluding(&key, owner).expect("n >= 2");
        prop_assert!(alternate != owner);

        let mut lone = HashRing::new(workers);
        for w in 0..workers {
            if w != owner {
                lone.eject(w);
            }
        }
        prop_assert_eq!(lone.route_excluding(&key, owner), None);
    }
}
